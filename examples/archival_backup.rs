//! Archival backup: a group of small nodes jointly stores an archive that
//! exceeds any single node's capacity, then survives node failures.
//!
//! This is the paper's motivating scenario: "a global storage utility also
//! facilitates the sharing of storage and bandwidth, thus permitting a
//! group of nodes to jointly store or publish content that exceeds the
//! capacity of any individual node", with persistence coming from k-fold
//! replication and automatic replica restoration.
//!
//! Run: `cargo run --release --example archival_backup`

use past::core::{BuildMode, ContentRef, PastConfig, PastNetwork, PastOut};
use past::crypto::rng::Rng;
use past::netsim::Sphere;
use past::pastry::{random_ids, Config};

const MB: u64 = 1 << 20;

fn main() {
    let n = 80;
    let seed = 77;
    let per_node_capacity = 8 * MB;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let mut net = PastNetwork::build(
        Sphere::new(n, seed),
        Config {
            leaf_len: 16,
            neighborhood_len: 16,
            ..Config::default()
        },
        PastConfig {
            default_k: 3,
            t_pri: 0.8,
            t_div: 0.4,
            ..PastConfig::default()
        },
        seed,
        &ids,
        &vec![per_node_capacity; n],
        &vec![1 << 40; n],
        BuildMode::ProtocolJoins,
    );

    // A 40 MiB archive in 1 MiB chunks: 5x any single node's disk, 120 MiB
    // counting the 3-fold replication.
    let chunks = 40;
    let chunk_size = MB;
    println!(
        "archiving {} MiB across {n} nodes of {} MiB each (k = 3)",
        chunks,
        per_node_capacity / MB
    );
    let mut chunk_fids = Vec::new();
    for i in 0..chunks {
        let name = format!("archive/chunk-{i:04}");
        let content = ContentRef::synthetic(0, &name, chunk_size);
        net.insert(0, &name, content, 3).expect("quota");
        for (_, _, e) in net.run() {
            match e {
                PastOut::InsertOk { file_id, .. } => chunk_fids.push(file_id),
                PastOut::InsertFailed { .. } => panic!("chunk {i} rejected"),
                _ => {}
            }
        }
    }
    let (used, cap, util) = net.utilization();
    println!(
        "archive stored: {} chunks, {:.1} MiB used of {:.1} MiB ({:.1}%)",
        chunk_fids.len(),
        used as f64 / MB as f64,
        cap as f64 / MB as f64,
        util * 100.0
    );
    assert_eq!(chunk_fids.len(), chunks);

    // Kill 10 random nodes (12.5% of the network) without warning.
    let mut killed = std::collections::BTreeSet::new();
    while killed.len() < 10 {
        let v = rng.random_range(1..n);
        if killed.insert(v) {
            net.sim.engine.kill(v);
        }
    }
    println!("killed nodes {killed:?} silently");

    // Heartbeats detect the failures; replica maintenance restores k.
    net.sim.stabilize();
    net.sim.stabilize();
    net.run();

    // Every chunk must still be retrievable from a surviving reader.
    let reader = (0..n)
        .find(|a| !killed.contains(a) && *a != 0)
        .expect("alive");
    let mut recovered = 0;
    for &fid in &chunk_fids {
        net.lookup(reader, fid);
        for (_, _, e) in net.run() {
            if matches!(e, PastOut::LookupOk { .. }) {
                recovered += 1;
            }
        }
    }
    println!("recovered {recovered}/{chunks} chunks after the failures");
    assert_eq!(recovered, chunks, "the archive must survive");

    // Replication is back to k for every chunk.
    let fully_replicated = chunk_fids
        .iter()
        .filter(|fid| net.replica_holders(fid).len() >= 3)
        .count();
    println!("chunks back at full k=3 replication: {fully_replicated}/{chunks}");
}
