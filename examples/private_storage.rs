//! Private storage: client-side encryption and pseudonymity.
//!
//! The paper: "Users may use encryption to protect the privacy of their
//! data, using a cryptosystem of their choice. Data encryption does not
//! involve the smartcards." And on sharing: "Files can be shared at the
//! owner's discretion by distributing the fileId (potentially anonymously)
//! and, if necessary, a decryption key."
//!
//! Run: `cargo run --release --example private_storage`

use past::core::{BuildMode, ContentRef, PastConfig, PastNetwork, PastOut};
use past::crypto::rng::Rng;
use past::crypto::StreamCipher;
use past::netsim::Sphere;
use past::pastry::{random_ids, Config};

fn main() {
    let n = 50;
    let seed = 404;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let mut net = PastNetwork::build(
        Sphere::new(n, seed),
        Config {
            leaf_len: 8,
            neighborhood_len: 8,
            ..Config::default()
        },
        PastConfig::default(),
        seed,
        &ids,
        &vec![64 << 20; n],
        &vec![1 << 30; n],
        BuildMode::ProtocolJoins,
    );

    // Alice encrypts her diary before it ever leaves her node. The storage
    // nodes (and anyone auditing them) see only ciphertext; the fileId is
    // derived from her card's pseudonymous public key, not her identity.
    let diary = b"Dear diary, the broker still knows nothing about me.".to_vec();
    let cipher = StreamCipher::from_passphrase("alice's secret", 1);
    let ciphertext = cipher.transform(&diary);
    assert_ne!(ciphertext, diary);
    println!("plaintext bytes : {}", diary.len());
    println!(
        "ciphertext      : {} bytes, unreadable without the key",
        ciphertext.len()
    );

    let content = ContentRef::from_bytes(&ciphertext);
    net.insert(4, "diary.enc", content, 3).expect("quota");
    let mut fid = None;
    for (_, _, e) in net.run() {
        if let PastOut::InsertOk { file_id, .. } = e {
            fid = Some(file_id);
        }
    }
    let fid = fid.expect("stored");
    println!("stored as       : {fid}");
    println!("  (the fileId reveals only H(name, pseudonym, salt) — not Alice)");

    // Alice shares the fileId and the decryption key with Bob (node 30),
    // out of band. Bob retrieves and decrypts.
    net.lookup(30, fid);
    let mut fetched = false;
    for (_, _, e) in net.run() {
        if let PastOut::LookupOk { server, .. } = e {
            println!("Bob fetched the ciphertext from node {server}");
            fetched = true;
        }
    }
    assert!(fetched);
    // The simulator transfers content by reference; Bob decrypts the
    // ciphertext Alice shared the key for.
    let decrypted = cipher.transform(&ciphertext);
    assert_eq!(decrypted, diary);
    println!(
        "Bob decrypted   : \"{}\"",
        String::from_utf8_lossy(&decrypted)
    );

    // Carol has the fileId but not the key: she can fetch, not read.
    let wrong = StreamCipher::from_passphrase("carol guesses", 1).transform(&ciphertext);
    assert_ne!(wrong, diary);
    println!("Carol without the key sees only noise. Privacy needs no smartcard help.");
}
