//! Churn resilience: nodes continuously join and fail while stored files
//! stay available — "nodes may join the system at any time and may
//! silently leave the system without warning. Yet, the system is able to
//! provide strong assurances."
//!
//! Run: `cargo run --release --example churn_resilience`

use past::core::{BuildMode, ContentRef, PastApp, PastConfig, PastNetwork, PastOut};
use past::crypto::rng::Rng;
use past::netsim::{Sphere, Topology};
use past::pastry::{random_ids, Config};

fn main() {
    let initial = 60;
    let slots = 160; // topology slots reserved for later joiners
    let seed = 31;
    let mut rng = Rng::seed_from_u64(seed);
    let all_ids = random_ids(slots, &mut rng);
    let past_cfg = PastConfig {
        default_k: 4,
        t_pri: 1.0,
        t_div: 0.5,
        ..PastConfig::default()
    };
    let mut net = PastNetwork::build(
        Sphere::new(slots, seed),
        Config {
            leaf_len: 16,
            neighborhood_len: 16,
            ..Config::default()
        },
        past_cfg,
        seed,
        &all_ids[..initial],
        &vec![256 << 20; initial],
        &vec![1 << 40; initial],
        BuildMode::ProtocolJoins,
    );

    // Store 30 files with k = 4.
    let mut fids = Vec::new();
    for i in 0..30 {
        let name = format!("churn/file-{i}");
        let content = ContentRef::synthetic(1, &name, 512 << 10);
        net.insert(1, &name, content, 4).expect("quota");
        for (_, _, e) in net.run() {
            if let PastOut::InsertOk { file_id, .. } = e {
                fids.push(file_id);
            }
        }
    }
    println!(
        "stored {} files with k=4 on the initial {initial} nodes",
        fids.len()
    );

    // Churn: alternate failures and joins for 40 steps.
    let mut next_id = initial;
    let mut card_seq = 10_000u64;
    for step in 0..40 {
        if rng.random_bool(0.5) {
            // Fail a random live node (never the reader/owner node 1).
            let live: Vec<usize> = net
                .sim
                .engine
                .live_addrs()
                .into_iter()
                .filter(|&a| a != 1)
                .collect();
            let victim = live[rng.random_range(0..live.len())];
            net.sim.engine.kill(victim);
        } else if next_id < slots && net.sim.engine.len() < net.sim.engine.topology().len() {
            // Join a brand-new node with a fresh card from the broker.
            let card =
                net.broker
                    .issue_card(format!("churn-{card_seq}").as_bytes(), 1 << 40, 256 << 20);
            card_seq += 1;
            let app = PastApp::new(past_cfg, card, 256 << 20, &net.broker);
            net.sim.join_node_nearby(all_ids[next_id], app, 8);
            next_id += 1;
        }
        // Periodic heartbeats detect failures and trigger replica repair.
        if step % 4 == 3 {
            net.sim.stabilize();
            net.run();
        }
    }
    net.sim.stabilize();
    net.sim.stabilize();
    net.run();
    let live_now = net.sim.engine.live_addrs().len();
    println!(
        "after churn: {live_now} live nodes (joined {} new)",
        next_id - initial
    );

    // All files must still be retrievable and fully replicated.
    let mut available = 0;
    let mut fully_replicated = 0;
    for &fid in &fids {
        net.lookup(1, fid);
        if net
            .run()
            .iter()
            .any(|(_, _, e)| matches!(e, PastOut::LookupOk { .. }))
        {
            available += 1;
        }
        if net.replica_holders(&fid).len() >= 4 {
            fully_replicated += 1;
        }
    }
    println!("available after churn: {available}/{}", fids.len());
    println!("fully re-replicated:   {fully_replicated}/{}", fids.len());
    assert_eq!(available, fids.len(), "churn must not lose files");
}
