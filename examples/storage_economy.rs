//! The storage economy: brokers, smartcards and quotas (§2.1).
//!
//! A broker issues smartcards that balance storage supply and demand; a
//! client can spend exactly the quota it paid for, reclaiming storage
//! restores quota, and the broker's knowledge stays limited to the cards
//! it circulated.
//!
//! Run: `cargo run --release --example storage_economy`

use past::core::{BuildMode, CardError, ContentRef, PastConfig, PastNetwork, PastOut};
use past::crypto::rng::Rng;
use past::netsim::Sphere;
use past::pastry::{random_ids, Config};

const MB: u64 = 1 << 20;

fn main() {
    let n = 40;
    let seed = 9;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    // Every node contributes 64 MiB; every card carries a 20 MiB quota.
    // Supply (n * 64 MiB) comfortably exceeds demand (n * 20 MiB): the
    // broker's ledger is balanced.
    let mut net = PastNetwork::build(
        Sphere::new(n, seed),
        Config {
            leaf_len: 8,
            neighborhood_len: 8,
            ..Config::default()
        },
        PastConfig {
            default_k: 2,
            t_pri: 1.0,
            t_div: 0.5,
            ..PastConfig::default()
        },
        seed,
        &ids,
        &vec![64 * MB; n],
        &vec![20 * MB; n],
        BuildMode::ProtocolJoins,
    );

    println!("broker ledger:");
    println!("  cards issued : {}", net.broker.cards_issued());
    println!(
        "  demand       : {} MiB (sum of quotas)",
        net.broker.demand() / MB
    );
    println!(
        "  supply       : {} MiB (contributed)",
        net.broker.supply() / MB
    );
    println!("  balanced     : {}", net.broker.balanced());
    assert!(net.broker.balanced());

    // The client spends its quota: each insert debits size x k = 8 MiB.
    let client = 3;
    let mut stored = Vec::new();
    println!("\nclient {client} has a 20 MiB quota; each insert debits 4 MiB x k=2:");
    for i in 0..4 {
        let name = format!("ledger/file-{i}");
        let content = ContentRef::synthetic(client, &name, 4 * MB);
        match net.insert(client, &name, content, 2) {
            Ok(_) => {
                for (_, _, e) in net.run() {
                    if let PastOut::InsertOk { file_id, .. } = e {
                        stored.push(file_id);
                        let left = net.sim.engine.node(client).app.card.quota_remaining();
                        println!("  insert {i}: ok, quota left {} MiB", left / MB);
                    }
                }
            }
            Err(CardError::QuotaExceeded { needed, remaining }) => {
                println!(
                    "  insert {i}: REFUSED by the smartcard (needs {} MiB, has {} MiB)",
                    needed / MB,
                    remaining / MB
                );
            }
            Err(e) => panic!("unexpected card error: {e}"),
        }
    }
    assert_eq!(stored.len(), 2, "20 MiB buys exactly two 8 MiB inserts");

    // Reclaim one file: each storing node's receipt credits the quota.
    println!("\nreclaiming {}...", stored[0]);
    net.reclaim(client, stored[0]);
    let mut credited = 0u64;
    for (_, _, e) in net.run() {
        if let PastOut::ReclaimCredited { freed, .. } = e {
            credited += freed;
        }
    }
    let left = net.sim.engine.node(client).app.card.quota_remaining();
    println!(
        "  receipts credited {} MiB; quota now {} MiB",
        credited / MB,
        left / MB
    );

    // The freed quota pays for a new insert.
    let content = ContentRef::synthetic(client, "ledger/after", 4 * MB);
    net.insert(client, "ledger/after", content, 2)
        .expect("freed quota suffices");
    let ok = net
        .run()
        .iter()
        .any(|(_, _, e)| matches!(e, PastOut::InsertOk { .. }));
    println!(
        "  re-insert with freed quota: {}",
        if ok { "ok" } else { "failed" }
    );
    assert!(ok);

    // A double-credit (receipt replay) is rejected by the card.
    println!("\nthe card rejects receipt replays and keeps the ledger sound.");
}
