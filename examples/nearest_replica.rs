//! Nearest-replica retrieval: with k = 5 replicas, Pastry's locality
//! steers each lookup to a replica near the client — the paper's
//! "76% nearest / 92% one-of-two-nearest" behavior, shown per lookup.
//!
//! Run: `cargo run --release --example nearest_replica`

use past::core::{BuildMode, ContentRef, PastConfig, PastNetwork, PastOut};
use past::crypto::rng::Rng;
use past::netsim::{Sphere, Topology};
use past::pastry::{random_ids, Config};

fn main() {
    let n = 400;
    let seed = 5;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let mut net = PastNetwork::build(
        Sphere::new(n, seed),
        // The paper's typical leaf set (l = 32): wide coverage lets the
        // covering node redirect to a proximity-near replica.
        Config {
            leaf_len: 32,
            neighborhood_len: 32,
            ..Config::default()
        },
        PastConfig {
            default_k: 5,
            cache_enabled: false, // isolate pure replica locality
            cache_on_insert_path: false,
            t_pri: 1.0,
            t_div: 0.5,
            ..PastConfig::default()
        },
        seed,
        &ids,
        &vec![1 << 30; n],
        &vec![1 << 40; n],
        BuildMode::ProtocolJoins,
    );

    // One popular file, five replicas.
    let content = ContentRef::synthetic(0, "popular.iso", 4 << 20);
    net.insert(0, "popular.iso", content, 5).expect("quota");
    let mut fid = None;
    for (_, _, e) in net.run() {
        if let PastOut::InsertOk { file_id, .. } = e {
            fid = Some(file_id);
        }
    }
    let fid = fid.expect("insert succeeded");
    let holders = net.replica_holders(&fid);
    println!("file {fid}");
    println!("replicas on nodes {holders:?}\n");

    // Sample clients; show which replica served and its proximity rank.
    let mut nearest = 0;
    let mut top_two = 0;
    let trials = 200;
    println!(
        "{:>6} {:>8} {:>14} {:>6}",
        "client", "server", "delay (ms)", "rank"
    );
    for t in 0..trials {
        let client = rng.random_range(0..n);
        net.lookup(client, fid);
        for (_, _, e) in net.run() {
            if let PastOut::LookupOk { server, .. } = e {
                let mut ranked: Vec<(u64, usize)> = holders
                    .iter()
                    .map(|&h| (net.sim.engine.topology().delay_us(client, h), h))
                    .collect();
                ranked.sort();
                let rank = ranked.iter().position(|&(_, h)| h == server).unwrap_or(9);
                if rank == 0 {
                    nearest += 1;
                }
                if rank <= 1 {
                    top_two += 1;
                }
                if t < 10 {
                    let d = net.sim.engine.topology().delay_us(client, server);
                    println!(
                        "{client:>6} {server:>8} {:>14.1} {:>6}",
                        d as f64 / 1000.0,
                        rank + 1
                    );
                }
            }
        }
    }
    println!("\nover {trials} lookups:");
    println!(
        "  served by the nearest replica      : {:.0}%  (paper: 76%)",
        100.0 * nearest as f64 / trials as f64
    );
    println!(
        "  served by one of the two nearest   : {:.0}%  (paper: 92%)",
        100.0 * top_two as f64 / trials as f64
    );
}
