//! Quickstart: build a PAST network, insert a file, look it up from
//! another node, then reclaim its storage.
//!
//! Run: `cargo run --release --example quickstart`

use past::core::{BuildMode, ContentRef, PastConfig, PastNetwork, PastOut};
use past::crypto::rng::Rng;
use past::netsim::Sphere;
use past::pastry::{random_ids, Config};

fn main() {
    // 1. Build a 64-node PAST network on a simulated sphere topology.
    //    Every node gets a broker-issued smartcard: a 1 GiB usage quota
    //    and 64 MiB of contributed storage.
    let n = 64;
    let seed = 2001;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let mut net = PastNetwork::build(
        Sphere::new(n, seed),
        Config {
            leaf_len: 16,
            neighborhood_len: 16,
            ..Config::default()
        },
        PastConfig::default(),
        seed,
        &ids,
        &vec![64 << 20; n],
        &vec![1 << 30; n],
        BuildMode::ProtocolJoins,
    );
    println!("built a {n}-node PAST network by sequential protocol joins");
    println!(
        "  overlay traffic so far: {} messages",
        net.sim.engine.stats.total_msgs
    );

    // 2. Insert a file with k = 3 replicas from node 5.
    let data = b"The quick brown fox archives itself for posterity.".repeat(1000);
    let content = ContentRef::from_bytes(&data);
    let request = net
        .insert(5, "fox/archive.txt", content, 3)
        .expect("within quota");
    for (at, _, e) in net.run() {
        if let PastOut::InsertOk {
            request_id,
            file_id,
            attempts,
            receipts,
        } = e
        {
            assert_eq!(request_id, request);
            println!("insert complete at t={at}:");
            println!("  fileId      = {file_id}");
            println!("  receipts    = {receipts} (k copies verified by the client)");
            println!("  attempts    = {attempts}");
            // Remember the fileId for the rest of the demo.
            demo_rest(&mut net, file_id);
            return;
        }
    }
    panic!("insert did not complete");
}

fn demo_rest(net: &mut PastNetwork<Sphere>, file_id: past::core::FileId) {
    // 3. Any node can retrieve the file given its fileId; the route stops
    //    at the first replica (or cache) it meets.
    net.lookup(40, file_id);
    for (at, _, e) in net.run() {
        if let PastOut::LookupOk {
            server, from_cache, ..
        } = e
        {
            println!("lookup from node 40 served by node {server} at t={at} (cache: {from_cache})");
        }
    }
    println!(
        "  replicas live on nodes {:?}",
        net.replica_holders(&file_id)
    );

    // 4. Only the owner can reclaim; receipts credit the quota.
    let before = net.sim.engine.node(5).app.card.quota_remaining();
    net.reclaim(5, file_id);
    let mut credited = 0u64;
    for (_, _, e) in net.run() {
        if let PastOut::ReclaimCredited { freed, .. } = e {
            credited += freed;
        }
    }
    let after = net.sim.engine.node(5).app.card.quota_remaining();
    println!("reclaim credited {credited} bytes back to the owner's smartcard");
    println!("  quota: {before} -> {after}");
    assert!(net.replica_holders(&file_id).is_empty());
    println!("done: the storage is free again (the fileId is never reused).");
}
