//! PAST — a large-scale, persistent peer-to-peer storage utility.
//!
//! Reproduction of Druschel & Rowstron, *PAST: A large-scale, persistent
//! peer-to-peer storage utility* (HotOS-VIII, 2001), as a Rust workspace.
//! This facade crate re-exports the workspace so examples and downstream
//! users need a single dependency:
//!
//! - [`core`] — the PAST storage layer (certificates, smartcards, quotas,
//!   replication, diversion, caching, audits).
//! - [`pastry`] — the Pastry overlay (prefix routing, leaf sets, joins,
//!   failure recovery, randomized routing).
//! - [`netsim`] — the deterministic discrete-event network simulator.
//! - [`crypto`] — from-scratch SHA-1/SHA-256 and Schnorr signatures.
//! - [`baselines`] — Chord and CAN comparators.
//! - [`workload`] — trace-like synthetic workload generators.
//! - [`sim`] — the experiment harness reproducing the paper's numbers.
//!
//! # Examples
//!
//! ```
//! use past::core::{BuildMode, ContentRef, PastConfig, PastNetwork, PastOut};
//! use past::netsim::Sphere;
//! use past::crypto::rng::Rng;
//! use past::pastry::{random_ids, Config};
//!
//! let n = 24;
//! let mut rng = Rng::seed_from_u64(1);
//! let ids = random_ids(n, &mut rng);
//! let mut net = PastNetwork::build(
//!     Sphere::new(n, 1),
//!     Config { leaf_len: 8, neighborhood_len: 8, ..Config::default() },
//!     PastConfig::default(),
//!     1,
//!     &ids,
//!     &vec![64 << 20; n],
//!     &vec![1 << 30; n],
//!     BuildMode::ProtocolJoins,
//! );
//! let content = ContentRef::from_bytes(b"hello, PAST");
//! net.insert(0, "greeting.txt", content, 3).unwrap();
//! let stored = net
//!     .run()
//!     .iter()
//!     .any(|(_, _, e)| matches!(e, PastOut::InsertOk { .. }));
//! assert!(stored);
//! ```

pub use past_baselines as baselines;
pub use past_core as core;
pub use past_crypto as crypto;
pub use past_netsim as netsim;
pub use past_pastry as pastry;
pub use past_sim as sim;
pub use past_wire as wire;
pub use past_workload as workload;
