//! Deterministic event queue.
//!
//! [`EventQueue`] is the engine's time-ordered queue: events pop in
//! ascending `(time, seq)` order, where `seq` is a per-queue push
//! counter, so ties resolve in insertion order and runs reproduce bit
//! for bit. Since the million-node rework it is backed by the
//! hierarchical timer wheel ([`crate::wheel`]) — O(1) push/pop under
//! the heartbeat timer storm instead of the binary heap's O(log n) —
//! with the original heap kept as [`Backend::Heap`], a reference
//! implementation for differential tests.
//!
//! ## Sequence-number wrap
//!
//! `seq` is a `u64`. It increments once per push; at one push per
//! simulated microsecond that is ~584 000 years of simulated time, so
//! wrap cannot happen in a legitimate run — but a silent wrap would
//! *reorder ties* rather than crash, the worst failure mode for a
//! deterministic simulator. The counter is therefore advanced with a
//! checked add and panics on overflow instead of wrapping.

use crate::time::SimTime;
use crate::wheel::TimerWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: ordered by `(time, seq)` so ties resolve in insertion
/// order and runs are reproducible.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

enum Backend<E> {
    Wheel(TimerWheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (timer-wheel backed).
    pub fn new() -> EventQueue<E> {
        EventQueue {
            backend: Backend::Wheel(TimerWheel::new()),
            next_seq: 0,
        }
    }

    /// Creates an empty queue backed by the original binary heap.
    ///
    /// The heap is the reference implementation the wheel must match
    /// bit for bit; differential tests drive both through identical
    /// schedules. Production code uses [`EventQueue::new`].
    pub fn new_reference_heap() -> EventQueue<E> {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::new()),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        // Explicit wrap policy: a wrapped counter would silently
        // reorder ties; fail loudly instead (see module docs).
        self.next_seq = seq
            .checked_add(1)
            .unwrap_or_else(|| panic!("event sequence counter wrapped u64"));
        match &mut self.backend {
            Backend::Wheel(w) => w.push(time.as_micros(), u128::from(seq), payload),
            Backend::Heap(h) => h.push(Entry { time, seq, payload }),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Wheel(w) => w.pop().map(|(t, _, e)| (SimTime::from_micros(t), e)),
            Backend::Heap(h) => h.pop().map(|e| (e.time, e.payload)),
        }
    }

    /// Returns the time of the earliest event without removing it.
    ///
    /// `&mut self`: the wheel may cascade coarse slots to answer
    /// exactly (bookkeeping only — order and results are unchanged).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Wheel(w) => w.peek_time().map(SimTime::from_micros),
            Backend::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Wheel(w) => w.len(),
            Backend::Heap(h) => h.len(),
        }
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    /// Differential test: wheel vs. reference heap through an identical
    /// seeded schedule of interleaved pushes and pops, including ties
    /// and cascade-boundary times. Any order divergence fails.
    #[test]
    fn wheel_matches_reference_heap() {
        for round in 0..20u64 {
            let mut rng_a = Rng::seed_from_u64(0xd1ff + round);
            let mut rng_b = Rng::seed_from_u64(0xd1ff + round);
            let mut wheel = EventQueue::new();
            let mut heap = EventQueue::new_reference_heap();
            let drive = |q: &mut EventQueue<u64>, rng: &mut Rng| -> Vec<(u64, u64)> {
                let mut now = 0u64;
                let mut n = 0u64;
                let mut popped = Vec::new();
                for step in 0..600u32 {
                    if step % 3 != 2 {
                        // Mix ties, near times, and boundary-straddling
                        // far jumps.
                        let t = match rng.random_range(0..4u32) {
                            0 => now,
                            1 => now + rng.random_range(0..10u64),
                            2 => (now / 64 + 1) * 64 + rng.random_range(0..2u64),
                            _ => now + rng.random_range(0..100_000u64),
                        };
                        q.push(SimTime::from_micros(t), n);
                        n += 1;
                    } else if let Some((t, v)) = q.pop() {
                        now = t.as_micros();
                        popped.push((now, v));
                    }
                }
                while let Some((t, v)) = q.pop() {
                    popped.push((t.as_micros(), v));
                }
                popped
            };
            let a = drive(&mut wheel, &mut rng_a);
            let b = drive(&mut heap, &mut rng_b);
            assert_eq!(a, b, "wheel diverged from reference heap");
        }
    }
}
