//! Deterministic event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: ordered by `(time, seq)` so ties resolve in insertion
/// order and runs are reproducible.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Returns the time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
