//! Deterministic discrete-event network simulator.
//!
//! This crate is the substrate the PAST reproduction runs on: the paper's
//! own evaluation numbers are simulation results (the companion Pastry and
//! SOSP'01 papers simulate networks of up to 100 000 nodes), so a faithful
//! reproduction needs a simulator with:
//!
//! - pluggable [`topology`] models supplying the *proximity metric* the
//!   paper defines ("a scalar metric, such as the number of IP hops,
//!   geographic distance, or a combination of these"),
//! - a message [`engine`] with per-link latency, silent node failure and
//!   timeout notifications, per-kind traffic accounting, and
//! - full determinism (seeded RNG, totally ordered event queue), so every
//!   experiment in EXPERIMENTS.md reproduces bit-for-bit.

pub mod arena;
pub mod backend;
pub mod engine;
pub mod event;
pub mod shard;
pub mod soa;
pub mod stats;
pub mod time;
pub mod topology;
pub mod wheel;

pub use backend::{Backend, SimBackend, WindowTooWide};
pub use engine::{Ctx, Engine, FaultConfig, Message, NetStats, NodeLogic};
pub use shard::{ShardConfig, ShardedEngine};
pub use soa::NodeIo;
pub use stats::{summarize, Histogram, Summary};
pub use time::SimTime;
pub use topology::{Addr, Plane, Sphere, Topology, TransitStub, UniformRandom};
// The trace layer's core handles, re-exported so node logic written
// against this engine can name them without a separate dependency.
// (`past_trace::Histogram` is *not* re-exported: `stats::Histogram`
// already owns that name here.)
pub use past_trace::{OpId, SeriesConfig, TimeSeries, TraceConfig, Tracer};
