//! Opt-in sharded engine: deterministic parallel simulation.
//!
//! [`ShardedEngine`] partitions nodes contiguously across worker
//! threads and advances them in conservative time windows: within a
//! window every shard executes its own events independently, and every
//! inter-node message — even between nodes of the same shard — travels
//! through *sealed batches* that are exchanged at window barriers. The
//! safety condition is that no inter-node message can arrive inside
//! the window it was sent in, which holds whenever the minimum
//! inter-node topology delay is at least [`ShardConfig::window_us`]
//! (validated against [`Topology::min_delay_us`] at construction and
//! re-asserted at runtime).
//!
//! ## Determinism model
//!
//! The sequential [`Engine`](crate::Engine) orders tied events by a
//! *global* push counter and draws faults from one shared RNG — an
//! order that cannot be reproduced by parallel workers. The sharded
//! engine therefore defines its own deterministic domain:
//!
//! - every event carries a key `(time, source node, per-node seq)`;
//!   keys are totally ordered and unique,
//! - each node owns a private protocol RNG and a private fault RNG,
//!   seeded from the run seed and the node address,
//! - batches merge into destination queues keyed by `(time, key)`, so
//!   arrival order on the wire is irrelevant.
//!
//! Per-node decision streams depend only on the sequence of events each
//! node observes, which the key order fixes globally — so a run with
//! one shard and a run with N shards produce bit-identical per-node
//! state, merged [`NetStats`], outputs, and [`fingerprint`]. That claim
//! is what the tests at the bottom of this file pin.
//!
//! [`fingerprint`]: ShardedEngine::fingerprint

use crate::arena::Arena;
use crate::backend::{SimBackend, WindowTooWide};
use crate::engine::{Ctx, Effect, FaultConfig, Message, NetStats, NodeLogic};
use crate::soa::{NodeIo, NodeSlots};
use crate::time::SimTime;
use crate::topology::{mix64, Addr, Topology};
use crate::wheel::TimerWheel;
use past_crypto::rng::Rng;
use past_trace::{SeriesConfig, TraceConfig, Tracer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Sharded-engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Worker shard count. The engine may use fewer shards than asked
    /// for if there are not enough nodes to fill them.
    pub shards: usize,
    /// Conservative window width in microseconds. Must not exceed the
    /// minimum inter-node delay of the topology; larger windows mean
    /// fewer barriers.
    pub window_us: u64,
}

/// Event key tie-break: `(source node, per-node sequence)` packed into
/// the wheel's 128-bit tie. Unique per event, identical under any
/// shard count.
fn tie_key(src: Addr, seq: u64) -> u128 {
    ((src as u128) << 64) | seq as u128
}

/// Commutative event digest: folded with wrapping addition so the
/// shard-local accumulation order cannot matter.
fn digest(time: u64, tie: u128, salt: u64) -> u64 {
    mix64(time ^ mix64(tie as u64) ^ mix64((tie >> 64) as u64) ^ salt)
}

/// Shard-local event record; payloads park in the shard's arena.
#[derive(Clone, Copy)]
enum ShardEvent {
    Deliver { from: u32, to: u32, msg: u32 },
    SendFailed { at: u32, dest: u32, msg: u32 },
    Timer { at: u32, kind: u64 },
}

/// A message crossing a shard boundary (payload travels by value; it
/// parks in the destination shard's arena on receipt).
enum WireEvent<M> {
    Deliver { from: u32, to: u32, msg: M },
    SendFailed { at: u32, dest: u32, msg: M },
}

struct Wire<M> {
    time: u64,
    tie: u128,
    ev: WireEvent<M>,
}

struct Shard<N: NodeLogic, T> {
    id: usize,
    /// First global address owned by this shard.
    base: Addr,
    topo: T,
    /// Local node state; local index = global address - `base`.
    nodes: NodeSlots<N>,
    /// Per-node protocol RNGs (global address order).
    rngs: Vec<Rng>,
    /// Per-node fault RNGs, independent of the protocol streams.
    fault_rngs: Vec<Rng>,
    /// Per-node event sequence counters (the key tie-break).
    seqs: Vec<u64>,
    queue: TimerWheel<ShardEvent>,
    arena: Arena<N::Msg>,
    stats: NetStats,
    /// Shard-local trace sink: message-plane events recorded here and
    /// protocol records written by node logic through [`Ctx`] both land
    /// shard-locally; [`ShardedEngine::take_tracer`] merges every
    /// shard's records in canonical order. Off by default.
    tracer: Tracer,
    /// Emissions tagged `(time, event key, per-event index)` so a
    /// global merge is order-deterministic.
    outputs: Vec<(u64, u128, u32, Addr, N::Out)>,
    /// Outbound wires accumulated during the current window.
    wire_buf: Vec<Wire<N::Msg>>,
    now: u64,
    faults: FaultConfig,
    fp: u64,
    events: u64,
    scratch_effects: Vec<Effect<N::Msg>>,
    scratch_emitted: Vec<N::Out>,
}

impl<N: NodeLogic, T: Topology> Shard<N, T> {
    fn next_seq(&mut self, local: usize) -> u64 {
        let s = self.seqs[local];
        self.seqs[local] = s
            .checked_add(1)
            .unwrap_or_else(|| panic!("per-node event sequence wrapped u64"));
        s
    }

    /// Enqueues an already-keyed event whose payload is in hand.
    fn receive_wire(&mut self, w: Wire<N::Msg>) {
        let ev = match w.ev {
            WireEvent::Deliver { from, to, msg } => {
                let msg = self.arena.insert(msg);
                ShardEvent::Deliver { from, to, msg }
            }
            WireEvent::SendFailed { at, dest, msg } => {
                let msg = self.arena.insert(msg);
                ShardEvent::SendFailed { at, dest, msg }
            }
        };
        self.queue.push(w.time, w.tie, ev);
    }

    /// Sender-side half of a message send: accounting, fault draws and
    /// scheduling. Self-sends go straight into the local queue;
    /// anything inter-node lands in `wire_buf` for the caller to route.
    /// Mirrors `Engine::dispatch`, with the shared RNG replaced by the
    /// sender's private fault stream.
    fn dispatch(&mut self, from: Addr, to: Addr, msg: N::Msg, extra_us: u64) {
        let li = from - self.base;
        self.stats.total_msgs += 1;
        self.stats.total_bytes += msg.wire_size();
        self.stats.by_kind_mut()[msg.kind_id()] += 1;
        self.nodes.note_sent(li);
        if self.tracer.enabled() {
            self.tracer.msg_send(
                self.now,
                msg.op_id(),
                from,
                to,
                msg.kind_id(),
                msg.wire_size(),
            );
        }
        let base_t = self.now + self.topo.delay_us(from, to) + extra_us;
        if from == to {
            let seq = self.next_seq(li);
            let h = self.arena.insert(msg);
            self.queue.push(
                base_t,
                tie_key(from, seq),
                ShardEvent::Deliver {
                    from: from as u32,
                    to: to as u32,
                    msg: h,
                },
            );
            return;
        }
        let (f32b, t32b) = (from as u32, to as u32);
        if !self.faults.is_active() {
            let seq = self.next_seq(li);
            self.wire_buf.push(Wire {
                time: base_t,
                tie: tie_key(from, seq),
                ev: WireEvent::Deliver {
                    from: f32b,
                    to: t32b,
                    msg,
                },
            });
            return;
        }
        // Per-field gating, like the sequential engine: an inactive
        // fault class draws nothing from the node's fault stream.
        if self.faults.loss > 0.0 && self.fault_rngs[li].random::<f64>() < self.faults.loss {
            self.stats.dropped += 1;
            if self.tracer.enabled() {
                self.tracer
                    .msg_drop(self.now, msg.op_id(), from, to, msg.kind_id());
            }
            return;
        }
        let duplicate = self.faults.duplicate > 0.0
            && self.fault_rngs[li].random::<f64>() < self.faults.duplicate;
        let at = base_t + self.draw_jitter(li);
        if duplicate {
            self.stats.duplicated += 1;
            if self.tracer.enabled() {
                self.tracer
                    .msg_dup(self.now, msg.op_id(), from, to, msg.kind_id());
            }
            let echo = base_t + self.draw_jitter(li);
            let seq = self.next_seq(li);
            self.wire_buf.push(Wire {
                time: echo,
                tie: tie_key(from, seq),
                ev: WireEvent::Deliver {
                    from: f32b,
                    to: t32b,
                    msg: msg.clone(),
                },
            });
        }
        let seq = self.next_seq(li);
        self.wire_buf.push(Wire {
            time: at,
            tie: tie_key(from, seq),
            ev: WireEvent::Deliver {
                from: f32b,
                to: t32b,
                msg,
            },
        });
    }

    fn draw_jitter(&mut self, local: usize) -> u64 {
        if self.faults.jitter_us > 0 {
            self.fault_rngs[local].random_range(0..=self.faults.jitter_us)
        } else {
            0
        }
    }

    fn invoke<F>(&mut self, at: Addr, cur_tie: u128, f: F)
    where
        F: FnOnce(&mut N, &mut Ctx<'_, N::Msg, N::Out>),
    {
        let li = at - self.base;
        let mut effects = std::mem::take(&mut self.scratch_effects);
        let mut emitted = std::mem::take(&mut self.scratch_emitted);
        debug_assert!(effects.is_empty() && emitted.is_empty());
        let mut ctx = Ctx {
            now: SimTime::from_micros(self.now),
            me: at,
            rng: &mut self.rngs[li],
            tracer: &mut self.tracer,
            topo: &self.topo,
            effects: &mut effects,
            emitted: &mut emitted,
        };
        f(self.nodes.logic_mut(li), &mut ctx);
        for (k, out) in emitted.drain(..).enumerate() {
            self.outputs.push((self.now, cur_tie, k as u32, at, out));
        }
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, msg, extra_us } => self.dispatch(at, to, msg, extra_us),
                Effect::Timer { delay_us, kind } => {
                    let seq = self.next_seq(li);
                    self.queue.push(
                        self.now + delay_us,
                        tie_key(at, seq),
                        ShardEvent::Timer {
                            at: at as u32,
                            kind,
                        },
                    );
                }
            }
        }
        self.scratch_effects = effects;
        self.scratch_emitted = emitted;
    }

    /// Executes every local event strictly before `window_end`;
    /// returns the number executed. Outbound wires accumulate in
    /// `wire_buf`.
    fn run_window(&mut self, window_end: u64) -> u64 {
        let mut count = 0u64;
        loop {
            match self.queue.peek_time() {
                Some(t) if t < window_end => {}
                _ => break,
            }
            let Some((t, tie, ev)) = self.queue.pop() else {
                break;
            };
            self.now = t;
            self.events += 1;
            count += 1;
            // Flight-recorder progress counter, keyed on event time:
            // the merged per-window totals depend only on the event
            // multiset, never on the shard layout.
            if let Some(s) = self.tracer.series_mut() {
                s.note_event(t);
            }
            match ev {
                ShardEvent::Deliver { from, to, msg } => {
                    self.fp = self.fp.wrapping_add(digest(t, tie, 1));
                    let (from, to) = (from as Addr, to as Addr);
                    let li = to - self.base;
                    let m = self.arena.take(msg);
                    if !self.nodes.is_alive(li) {
                        self.stats.failed_sends += 1;
                        if self.tracer.enabled() {
                            self.tracer.msg_fail(t, m.op_id(), from, to, m.kind_id());
                        }
                        // Timeout model: bounce a failure notice to the
                        // sender one further delay later. Unlike the
                        // sequential engine we cannot consult the
                        // (possibly remote) sender's liveness here; the
                        // notice is dropped on arrival if the sender is
                        // dead, which leaves every counter identical.
                        if from != to {
                            let back = self.topo.delay_us(to, from);
                            let seq = self.next_seq(li);
                            self.wire_buf.push(Wire {
                                time: self.now + back,
                                tie: tie_key(to, seq),
                                ev: WireEvent::SendFailed {
                                    at: from as u32,
                                    dest: to as u32,
                                    msg: m,
                                },
                            });
                        }
                        continue;
                    }
                    if self.tracer.enabled() {
                        self.tracer.msg_recv(t, m.op_id(), from, to, m.kind_id());
                    }
                    self.nodes.note_recv(li);
                    self.invoke(to, tie, |node, ctx| node.on_message(from, m, ctx));
                }
                ShardEvent::SendFailed { at, dest, msg } => {
                    self.fp = self.fp.wrapping_add(digest(t, tie, 2));
                    let (at, dest) = (at as Addr, dest as Addr);
                    let m = self.arena.take(msg);
                    if self.nodes.is_alive(at - self.base) {
                        self.invoke(at, tie, |node, ctx| node.on_send_failed(dest, m, ctx));
                    }
                }
                ShardEvent::Timer { at, kind } => {
                    self.fp = self.fp.wrapping_add(digest(t, tie, 3 ^ mix64(kind)));
                    let at = at as Addr;
                    if self.nodes.is_alive(at - self.base) {
                        self.invoke(at, tie, |node, ctx| node.on_timer(kind, ctx));
                    }
                }
            }
        }
        count
    }
}

/// The sharded parallel engine. See the module docs for the model.
pub struct ShardedEngine<N: NodeLogic, T: Topology + Clone> {
    shards: Vec<Shard<N, T>>,
    /// Topology slots per shard (the last shard may own fewer).
    chunk: usize,
    window_us: u64,
    n: usize,
    /// Topology capacity: shards are laid out over the full address
    /// space up front, so node growth never re-partitions.
    cap: usize,
    /// Construction seed: per-node protocol RNG streams derive from it.
    seed: u64,
    /// Current fault seed: per-node fault streams derive from it, both
    /// at push time and on [`set_faults`](ShardedEngine::set_faults).
    fault_seed: u64,
    faults: FaultConfig,
    epoch: u64,
    /// Harness-side RNG, separate from every node's protocol stream but
    /// seeded like the sequential engine's shared RNG, so harness draw
    /// sequences match across backends between runs.
    rng: Rng,
    /// Harness-side trace sink (op lifecycle records); merged with the
    /// shard-local sinks by [`take_tracer`](ShardedEngine::take_tracer).
    harness_tracer: Tracer,
    /// Reused by [`stats`](ShardedEngine::stats): the per-round merge
    /// writes into this cache instead of allocating a fresh block.
    stats_cache: NetStats,
    /// Reused by [`drain_outputs_into`](ShardedEngine::drain_outputs_into)
    /// as the merge-and-sort staging buffer.
    out_scratch: Vec<(u64, u128, u32, Addr, N::Out)>,
}

impl<N, T> ShardedEngine<N, T>
where
    N: NodeLogic + Send,
    N::Msg: Send,
    N::Out: Send,
    T: Topology + Clone + Send,
{
    /// Builds an empty sharded engine over the topology's full address
    /// space, partitioned contiguously into (up to) `cfg.shards`
    /// shards. Nodes are added with [`push_node`](ShardedEngine::push_node).
    ///
    /// Rejects a window wider than the topology's minimum inter-node
    /// delay: such a window could deliver a message inside the window
    /// it was sent in, which the sealed-batch exchange cannot express.
    ///
    /// # Panics
    ///
    /// Panics if the topology is empty, exceeds the `u32` address
    /// space, or the window is zero.
    pub fn try_new(
        topo: T,
        seed: u64,
        cfg: ShardConfig,
    ) -> Result<ShardedEngine<N, T>, WindowTooWide> {
        let cap = topo.len();
        assert!(cap > 0, "sharded engine needs a topology with slots");
        assert!(
            cap < u32::MAX as usize,
            "node address space (u32) exhausted"
        );
        assert!(cfg.window_us > 0, "shard window must be positive");
        let min_delay_us = topo.min_delay_us();
        if cfg.window_us > min_delay_us {
            return Err(WindowTooWide {
                window_us: cfg.window_us,
                min_delay_us,
            });
        }
        let want = cfg.shards.clamp(1, cap);
        let chunk = cap.div_ceil(want);
        let count = cap.div_ceil(chunk);
        let shards = (0..count)
            .map(|id| Shard {
                id,
                base: id * chunk,
                topo: topo.clone(),
                nodes: NodeSlots::new(),
                rngs: Vec::new(),
                fault_rngs: Vec::new(),
                seqs: Vec::new(),
                queue: TimerWheel::new(),
                arena: Arena::new(),
                stats: NetStats::for_kinds(N::Msg::KINDS),
                tracer: Tracer::for_kinds(N::Msg::KINDS),
                outputs: Vec::new(),
                wire_buf: Vec::new(),
                now: 0,
                faults: FaultConfig::default(),
                fp: 0,
                events: 0,
                scratch_effects: Vec::new(),
                scratch_emitted: Vec::new(),
            })
            .collect();
        Ok(ShardedEngine {
            shards,
            chunk,
            window_us: cfg.window_us,
            n: 0,
            cap,
            seed,
            fault_seed: seed,
            faults: FaultConfig::default(),
            epoch: 0,
            rng: Rng::seed_from_u64(seed),
            harness_tracer: Tracer::for_kinds(N::Msg::KINDS),
            stats_cache: NetStats::for_kinds(N::Msg::KINDS),
            out_scratch: Vec::new(),
        })
    }

    /// Builds a sharded engine over `nodes`, partitioned contiguously.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, exceeds the topology, the window is
    /// zero, or the window is wider than the topology's minimum delay
    /// (use [`try_new`](ShardedEngine::try_new) to handle that case).
    pub fn new(topo: T, nodes: Vec<N>, seed: u64, cfg: ShardConfig) -> ShardedEngine<N, T> {
        assert!(!nodes.is_empty(), "sharded engine needs at least one node");
        assert!(nodes.len() <= topo.len(), "more nodes than topology slots");
        // Shard layout is capacity-based (`topo.len()`), not
        // node-count-based: when the node set fills the topology the
        // chunking is identical to the historical node-count layout,
        // and when it doesn't, growth via `push_node` never needs to
        // re-partition.
        let mut e = Self::try_new(topo, seed, cfg).unwrap_or_else(|err| panic!("{err}"));
        for node in nodes {
            e.push_node(node);
        }
        e.epoch = 0;
        e
    }

    fn shard_of(&self, a: Addr) -> usize {
        a / self.chunk
    }

    /// Adds a node (returns its address). Addresses are dense in push
    /// order; the owning shard is fixed by the contiguous layout. The
    /// node's protocol stream derives from the construction seed and
    /// its fault stream from the current fault seed, exactly as if it
    /// had been present at construction — so growth is shard-count
    /// independent.
    pub fn push_node(&mut self, node: N) -> Addr {
        let addr = self.n;
        assert!(addr < self.cap, "no topology slot for new node");
        let sh = addr / self.chunk;
        let s = &mut self.shards[sh];
        debug_assert_eq!(s.base + s.nodes.len(), addr, "dense push order");
        s.nodes.push(node);
        s.rngs
            .push(Rng::seed_from_u64(self.seed ^ mix64(addr as u64)));
        s.fault_rngs.push(Rng::seed_from_u64(
            self.fault_seed ^ mix64(addr as u64) ^ 0x5eed_fa17,
        ));
        s.seqs.push(0);
        self.n += 1;
        self.epoch += 1;
        addr
    }

    /// Reserves storage in the shards that will receive the next
    /// `extra` nodes, so bulk builds grow each shard's arrays once.
    pub fn reserve_nodes(&mut self, extra: usize) {
        let mut remaining = extra.min(self.cap - self.n);
        let mut next = self.n;
        while remaining > 0 {
            let sh = next / self.chunk;
            let room = ((sh + 1) * self.chunk).min(self.cap) - next;
            let take = room.min(remaining);
            let s = &mut self.shards[sh];
            s.nodes.reserve(take);
            s.rngs.reserve(take);
            s.fault_rngs.reserve(take);
            s.seqs.reserve(take);
            next += take;
            remaining -= take;
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the engine has no nodes (never: construction requires
    /// one, but the pair with [`len`](ShardedEngine::len) is idiomatic).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of worker shards actually in use.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Global simulated time: all shards agree between runs.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.shards.iter().map(|s| s.now).max().unwrap_or(0))
    }

    /// Immutable access to a node's state.
    pub fn node(&self, a: Addr) -> &N {
        let s = &self.shards[self.shard_of(a)];
        s.nodes.logic(a - s.base)
    }

    /// Mutable access to a node's state (harness-side setup only).
    pub fn node_mut(&mut self, a: Addr) -> &mut N {
        let sh = self.shard_of(a);
        let s = &mut self.shards[sh];
        s.nodes.logic_mut(a - s.base)
    }

    /// The topology (proximity oracle).
    pub fn topology(&self) -> &T {
        &self.shards[0].topo
    }

    /// Membership epoch: bumped on every push/kill/revive, mirroring
    /// the sequential engine's cache-invalidation contract.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Addresses of all live nodes, ascending.
    pub fn live_addrs(&self) -> Vec<Addr> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.nodes.live_addrs().into_iter().map(|a| a + s.base));
        }
        out
    }

    /// The harness-side RNG (sampling, id generation). Seeded like the
    /// sequential engine's shared RNG but never touched by node logic,
    /// whose draws come from per-node streams.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Per-node traffic counters.
    pub fn node_io(&self, a: Addr) -> NodeIo {
        let s = &self.shards[self.shard_of(a)];
        s.nodes.io(a - s.base)
    }

    /// Liveness of a node.
    pub fn is_alive(&self, a: Addr) -> bool {
        let s = &self.shards[self.shard_of(a)];
        s.nodes.is_alive(a - s.base)
    }

    /// Marks a node dead (between runs).
    pub fn kill(&mut self, a: Addr) {
        let sh = self.shard_of(a);
        let s = &mut self.shards[sh];
        s.nodes.set_alive(a - s.base, false);
        self.epoch += 1;
    }

    /// Marks a node live again (between runs).
    pub fn revive(&mut self, a: Addr) {
        let sh = self.shard_of(a);
        let s = &mut self.shards[sh];
        s.nodes.set_alive(a - s.base, true);
        self.epoch += 1;
    }

    /// Enables (or reconfigures) link-fault injection. Every node's
    /// fault stream is reseeded from `seed` and its address; nodes
    /// pushed later derive their streams from the same seed.
    pub fn set_faults(&mut self, faults: FaultConfig, seed: u64) {
        assert!((0.0..=1.0).contains(&faults.loss), "loss out of [0,1]");
        assert!(
            (0.0..=1.0).contains(&faults.duplicate),
            "duplicate out of [0,1]"
        );
        self.faults = faults;
        self.fault_seed = seed;
        for s in self.shards.iter_mut() {
            s.faults = faults;
            for (i, r) in s.fault_rngs.iter_mut().enumerate() {
                let a = (s.base + i) as u64;
                *r = Rng::seed_from_u64(seed ^ mix64(a) ^ 0x5eed_fa17);
            }
        }
    }

    /// The fault configuration in force.
    pub fn faults(&self) -> FaultConfig {
        self.faults
    }

    /// Selects which trace event classes are recorded, on the harness
    /// sink and every shard-local sink.
    pub fn set_tracing(&mut self, cfg: TraceConfig) {
        self.harness_tracer.configure(cfg);
        for s in self.shards.iter_mut() {
            s.tracer.configure(cfg);
        }
    }

    /// Attaches a flight recorder to the harness sink and every
    /// shard-local sink. Shard series merge into the harness series in
    /// [`take_tracer`](ShardedEngine::take_tracer); the merged series
    /// is identical under any shard count (pinned by the differential
    /// tests).
    pub fn set_series(&mut self, cfg: SeriesConfig) {
        self.harness_tracer.set_series(cfg);
        for s in self.shards.iter_mut() {
            s.tracer.set_series(cfg);
        }
    }

    /// The harness-side trace sink. Shard-local records (message plane,
    /// per-hop protocol events) are *not* visible here until
    /// [`take_tracer`](ShardedEngine::take_tracer) merges them.
    pub fn tracer(&self) -> &Tracer {
        &self.harness_tracer
    }

    /// Mutable harness-side trace sink (op lifecycle records).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.harness_tracer
    }

    /// Takes the full trace out of the engine: absorbs every shard's
    /// records and metrics into the harness trace and sorts the result
    /// canonically, so the merged trace is identical under any shard
    /// count. Leaves fresh disabled sinks behind.
    pub fn take_tracer(&mut self) -> Tracer {
        let mut t = std::mem::replace(&mut self.harness_tracer, Tracer::for_kinds(N::Msg::KINDS));
        for s in self.shards.iter_mut() {
            let st = std::mem::replace(&mut s.tracer, Tracer::for_kinds(N::Msg::KINDS));
            t.absorb(st);
        }
        t.sort_canonical();
        t
    }

    /// Injects a message from `from` to `to` (between runs). The fault
    /// model applies, drawn from the sender's fault stream.
    pub fn inject(&mut self, from: Addr, to: Addr, msg: N::Msg, extra_us: u64) {
        let sh = self.shard_of(from);
        self.shards[sh].dispatch(from, to, msg, extra_us);
        self.route_pending_wires(sh);
    }

    /// Arms a timer on a node (between runs).
    pub fn arm_timer(&mut self, at: Addr, delay_us: u64, kind: u64) {
        let sh = self.shard_of(at);
        let s = &mut self.shards[sh];
        let li = at - s.base;
        let seq = s.next_seq(li);
        let t = s.now + delay_us;
        s.queue.push(
            t,
            tie_key(at, seq),
            ShardEvent::Timer {
                at: at as u32,
                kind,
            },
        );
    }

    /// Routes wires produced by a between-runs dispatch straight into
    /// destination queues (no window constraint applies: nothing is
    /// executing).
    fn route_pending_wires(&mut self, src: usize) {
        let wires = std::mem::take(&mut self.shards[src].wire_buf);
        for w in wires {
            let to = match &w.ev {
                WireEvent::Deliver { to, .. } => *to as Addr,
                WireEvent::SendFailed { at, .. } => *at as Addr,
            };
            let sh = self.shard_of(to);
            self.shards[sh].receive_wire(w);
        }
    }

    /// Total pending events across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Merged traffic counters across all shards. Adapter loops read
    /// stats every round, so the merge writes into a reusable cache
    /// instead of allocating a fresh block per call.
    pub fn stats(&mut self) -> &NetStats {
        self.stats_cache.reset();
        for s in &self.shards {
            self.stats_cache.merge(&s.stats);
        }
        &self.stats_cache
    }

    /// Commutative run fingerprint: a wrapping sum of per-event key
    /// digests plus the event count. Identical for identical runs under
    /// any shard count; any divergence in event times, sources or
    /// sequence numbers changes it.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = 0u64;
        let mut events = 0u64;
        for s in &self.shards {
            fp = fp.wrapping_add(s.fp);
            events += s.events;
        }
        mix64(events).wrapping_add(fp)
    }

    /// Events executed so far, summed over shards.
    pub fn events_executed(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Drains emissions from all shards into `out` (cleared first),
    /// merged in global event-key order (deterministic under any shard
    /// count). The merge-and-sort staging buffer is engine-owned and
    /// reused, so a per-round drain allocates nothing once the buffers
    /// have grown to the working-set size.
    pub fn drain_outputs_into(&mut self, out: &mut Vec<(SimTime, Addr, N::Out)>) {
        out.clear();
        let mut all = std::mem::take(&mut self.out_scratch);
        debug_assert!(all.is_empty());
        for s in self.shards.iter_mut() {
            all.append(&mut s.outputs);
        }
        all.sort_by_key(|&(t, tie, k, _, _)| (t, tie, k));
        out.reserve(all.len());
        for (t, _, _, a, o) in all.drain(..) {
            out.push((SimTime::from_micros(t), a, o));
        }
        self.out_scratch = all;
    }

    /// Drains emissions from all shards, merged in global event-key
    /// order (deterministic under any shard count).
    pub fn drain_outputs(&mut self) -> Vec<(SimTime, Addr, N::Out)> {
        let mut out = Vec::new();
        self.drain_outputs_into(&mut out);
        out
    }

    /// Capacity of the engine-owned output staging buffer (observability
    /// for the zero-alloc drain contract).
    pub fn out_scratch_capacity(&self) -> usize {
        self.out_scratch.capacity()
    }

    /// Runs shards in parallel until the whole simulation quiesces or
    /// at least `max_events` have executed (checked at window
    /// boundaries, so slightly more may run). Returns events executed
    /// this call.
    pub fn run_until_quiet(&mut self, max_events: u64) -> u64 {
        let s = self.shards.len();
        let window = self.window_us;
        let shared = Shared {
            barrier: Barrier::new(s),
            mins: (0..s).map(|_| AtomicU64::new(u64::MAX)).collect(),
            total: AtomicU64::new(0),
            mail: (0..s)
                .map(|_| (0..s).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            poisoned: AtomicBool::new(false),
            poison: Mutex::new(None),
        };
        let chunk = self.chunk;
        std::thread::scope(|scope| {
            for shard in self.shards.iter_mut() {
                let shared = &shared;
                scope.spawn(move || {
                    worker(shard, shared, chunk, window, max_events);
                });
            }
        });
        // A worker panic (window violation, node-logic bug) is caught in
        // the worker so its peers can leave the barrier protocol
        // cleanly; surface it here on the caller's thread.
        let poison = shared
            .poison
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(p) = poison {
            std::panic::resume_unwind(p);
        }
        // Re-sync shard clocks so between-run harness actions (inject,
        // arm_timer) use the same global time under any shard count.
        let g = self.shards.iter().map(|sh| sh.now).max().unwrap_or(0);
        for sh in self.shards.iter_mut() {
            sh.now = g;
        }
        shared.total.into_inner()
    }
}

impl<N, T> SimBackend<N> for ShardedEngine<N, T>
where
    N: NodeLogic + Send,
    N::Msg: Send,
    N::Out: Send,
    T: Topology + Clone + Send,
{
    type Topo = T;

    fn len(&self) -> usize {
        ShardedEngine::len(self)
    }

    fn now(&self) -> SimTime {
        ShardedEngine::now(self)
    }

    fn topology(&self) -> &T {
        ShardedEngine::topology(self)
    }

    fn node(&self, a: Addr) -> &N {
        ShardedEngine::node(self, a)
    }

    fn node_mut(&mut self, a: Addr) -> &mut N {
        ShardedEngine::node_mut(self, a)
    }

    fn node_io(&self, a: Addr) -> NodeIo {
        ShardedEngine::node_io(self, a)
    }

    fn reserve_nodes(&mut self, extra: usize) {
        ShardedEngine::reserve_nodes(self, extra)
    }

    fn push_node(&mut self, node: N) -> Addr {
        ShardedEngine::push_node(self, node)
    }

    fn is_alive(&self, a: Addr) -> bool {
        ShardedEngine::is_alive(self, a)
    }

    fn kill(&mut self, a: Addr) {
        ShardedEngine::kill(self, a)
    }

    fn revive(&mut self, a: Addr) {
        ShardedEngine::revive(self, a)
    }

    fn epoch(&self) -> u64 {
        ShardedEngine::epoch(self)
    }

    fn live_addrs(&self) -> Vec<Addr> {
        ShardedEngine::live_addrs(self)
    }

    fn rng(&mut self) -> &mut Rng {
        ShardedEngine::rng(self)
    }

    fn set_faults(&mut self, faults: FaultConfig, seed: u64) {
        ShardedEngine::set_faults(self, faults, seed)
    }

    fn faults(&self) -> FaultConfig {
        ShardedEngine::faults(self)
    }

    fn set_tracing(&mut self, cfg: TraceConfig) {
        ShardedEngine::set_tracing(self, cfg)
    }

    fn set_series(&mut self, cfg: SeriesConfig) {
        ShardedEngine::set_series(self, cfg)
    }

    fn tracer(&self) -> &Tracer {
        ShardedEngine::tracer(self)
    }

    fn tracer_mut(&mut self) -> &mut Tracer {
        ShardedEngine::tracer_mut(self)
    }

    fn take_tracer(&mut self) -> Tracer {
        ShardedEngine::take_tracer(self)
    }

    fn inject(&mut self, from: Addr, to: Addr, msg: N::Msg, extra_us: u64) {
        ShardedEngine::inject(self, from, to, msg, extra_us)
    }

    fn arm_timer(&mut self, at: Addr, delay_us: u64, kind: u64) {
        ShardedEngine::arm_timer(self, at, delay_us, kind)
    }

    fn run_until_quiet(&mut self, max_events: u64) -> u64 {
        ShardedEngine::run_until_quiet(self, max_events)
    }

    fn pending(&self) -> usize {
        ShardedEngine::pending(self)
    }

    fn drain_outputs(&mut self) -> Vec<(SimTime, Addr, N::Out)> {
        ShardedEngine::drain_outputs(self)
    }

    fn stats(&mut self) -> &NetStats {
        ShardedEngine::stats(self)
    }
}

/// Per-run shared coordination state for the worker threads.
struct Shared<M> {
    barrier: Barrier,
    /// Each shard's earliest pending event time, for the global-min
    /// reduction that places the next window.
    mins: Vec<AtomicU64>,
    /// Events executed so far (the budget check).
    total: AtomicU64,
    /// Sealed-batch mailboxes, `mail[src][dst]`.
    mail: Vec<Vec<Mutex<Vec<Wire<M>>>>>,
    /// Set when any worker's window body panicked; everyone exits at
    /// the next barrier instead of deadlocking on the missing peer.
    poisoned: AtomicBool,
    /// The first caught panic payload, re-thrown by the caller.
    poison: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// One shard's window loop. All shards execute the same barrier
/// sequence and read reduction inputs only after a barrier, so every
/// shard takes the break branches on the same round.
fn worker<N, T>(
    shard: &mut Shard<N, T>,
    shared: &Shared<N::Msg>,
    chunk: usize,
    window_us: u64,
    max_events: u64,
) where
    N: NodeLogic,
    T: Topology,
{
    let me = shard.id;
    let s = shared.mins.len();
    loop {
        // Absorb batches sealed last round, in deterministic shard
        // order (irrelevant to outcomes — keys order the queue — but
        // cheap to keep canonical).
        for src in 0..s {
            let mut inbox = shared.mail[src][me]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for w in inbox.drain(..) {
                shard.receive_wire(w);
            }
        }
        shared.mins[me].store(
            shard.queue.peek_time().unwrap_or(u64::MAX),
            Ordering::SeqCst,
        );
        // Seal this round's budget/poison view *before* the barrier.
        // Writes to `total` and `poisoned` only happen in window
        // phases, which both barriers bracket, so reads taken in the
        // inter-barrier gap cannot race with them: every worker sees
        // the same values and takes the same break branch. (Reading
        // after the barrier would race with a faster peer's
        // current-round `fetch_add` and deadlock the barrier protocol
        // when the budget threshold lands inside that window.)
        let total = shared.total.load(Ordering::SeqCst);
        let poisoned = shared.poisoned.load(Ordering::SeqCst);
        shared.barrier.wait();
        let gmin = shared
            .mins
            .iter()
            .map(|m| m.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        if gmin == u64::MAX || total >= max_events || poisoned {
            break;
        }
        // Flight-recorder engine gauges, sampled by *every* shard at
        // the global minimum `gmin` — the same instant under any shard
        // count. Mailboxes were absorbed above, so the shard queues
        // and arenas partition the global pending set: equal-time
        // samples sum on merge into the global queue depth and
        // in-flight count, bit-identical from 1 shard to N.
        if shard.tracer.series_enabled() {
            let (q, a) = (shard.queue.len() as u64, shard.arena.len() as u64);
            if let Some(srs) = shard.tracer.series_mut() {
                srs.gauge(gmin, "queue_depth", q);
                srs.gauge(gmin, "in_flight_msgs", a);
                srs.shard_gauge(gmin, me, "queue_depth", q);
            }
        }
        // Skip ahead: the window starts at the global minimum, so idle
        // stretches cost one barrier round, not one round per window.
        let window_end = gmin.saturating_add(window_us);
        // The window body can panic (window-safety violation, a bug in
        // node logic). Catch it so the peers can leave the barrier
        // protocol instead of deadlocking on a dead thread; the payload
        // is re-thrown by `run_until_quiet` on the caller's thread.
        let body = std::panic::AssertUnwindSafe(|| {
            let count = shard.run_window(window_end);
            shared.total.fetch_add(count, Ordering::SeqCst);
            // Per-shard load diagnostic (fingerprint-excluded: the
            // split of events over shards depends on the shard count).
            if count > 0 {
                if let Some(srs) = shard.tracer.series_mut() {
                    srs.shard_bump(window_end - 1, me, "events", count);
                }
            }
            ship_window(shard, shared, me, chunk, s, window_end);
        });
        if let Err(p) = std::panic::catch_unwind(body) {
            let mut slot = shared.poison.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(p);
            }
            shared.poisoned.store(true, Ordering::SeqCst);
        }
        shared.barrier.wait();
    }
}

/// Seals the window's outbound wires into per-destination batches.
fn ship_window<N, T>(
    shard: &mut Shard<N, T>,
    shared: &Shared<N::Msg>,
    me: usize,
    chunk: usize,
    s: usize,
    window_end: u64,
) where
    N: NodeLogic,
    T: Topology,
{
    let wires = std::mem::take(&mut shard.wire_buf);
    // Sealed-batch size and window-completion lag (how far behind the
    // window edge this shard stopped executing — a barrier-stall
    // proxy, in simulated microseconds). Both are per-shard
    // diagnostics, excluded from the series fingerprint.
    if let Some(srs) = shard.tracer.series_mut() {
        srs.shard_bump(window_end - 1, me, "batch_msgs", wires.len() as u64);
        srs.shard_gauge(
            window_end - 1,
            me,
            "stall_us",
            window_end.saturating_sub(shard.now),
        );
    }
    if wires.is_empty() {
        return;
    }
    let mut sorted: Vec<Vec<Wire<N::Msg>>> = (0..s).map(|_| Vec::new()).collect();
    for w in wires {
        assert!(
            w.time >= window_end,
            "inter-node delay shorter than the shard window \
             ({} < {window_end}): lower ShardConfig::window_us below \
             the topology's minimum inter-node delay",
            w.time
        );
        let to = match &w.ev {
            WireEvent::Deliver { to, .. } => *to as Addr,
            WireEvent::SendFailed { at, .. } => *at as Addr,
        };
        sorted[to / chunk].push(w);
    }
    for (t, batch) in sorted.into_iter().enumerate() {
        if !batch.is_empty() {
            shared.mail[me][t]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::UniformRandom;

    /// A gossip-ish protocol exercising every engine path: randomized
    /// forwarding (per-node RNG), timers, emissions, and send failures.
    #[derive(Clone)]
    enum GMsg {
        Rumor { ttl: u32, tag: u32 },
        Ack(u32),
    }

    impl Message for GMsg {
        const KINDS: &'static [&'static str] = &["rumor", "ack"];

        fn kind_id(&self) -> usize {
            match self {
                GMsg::Rumor { .. } => 0,
                GMsg::Ack(_) => 1,
            }
        }
    }

    #[derive(Default)]
    struct GNode {
        heard: Vec<u32>,
        acks: u64,
        failures: u64,
        timer_fired: bool,
    }

    impl NodeLogic for GNode {
        type Msg = GMsg;
        type Out = (u32, Addr);

        fn on_message(&mut self, from: Addr, msg: GMsg, ctx: &mut Ctx<'_, GMsg, (u32, Addr)>) {
            match msg {
                GMsg::Rumor { ttl, tag } => {
                    self.heard.push(tag);
                    ctx.emit((tag, from));
                    ctx.send(from, GMsg::Ack(tag));
                    if ttl > 0 {
                        // Randomized next hop: exercises the per-node
                        // protocol RNG streams.
                        let n = 64;
                        let next = ctx.rng.random_range(0..n as u64) as Addr;
                        if next != ctx.me {
                            ctx.send(next, GMsg::Rumor { ttl: ttl - 1, tag });
                        }
                        if !self.timer_fired {
                            ctx.set_timer(10_000, u64::from(tag));
                        }
                    }
                }
                // Folding the tag in makes `acks` a cheap order-free
                // checksum over which acks arrived, not just how many.
                GMsg::Ack(tag) => self.acks += 1 + u64::from(tag) * 31,
            }
        }

        fn on_send_failed(&mut self, _to: Addr, _msg: GMsg, _ctx: &mut Ctx<'_, GMsg, (u32, Addr)>) {
            self.failures += 1;
        }

        fn on_timer(&mut self, _kind: u64, ctx: &mut Ctx<'_, GMsg, (u32, Addr)>) {
            self.timer_fired = true;
            ctx.emit((u32::MAX, ctx.me));
        }
    }

    const N: usize = 64;
    /// Min topology delay is 2_000 µs, so a 2_000 µs window is safe.
    fn topo() -> UniformRandom {
        UniformRandom::new(N, 77, 2_000, 9_000)
    }

    fn engine(shards: usize) -> ShardedEngine<GNode, UniformRandom> {
        let nodes = (0..N).map(|_| GNode::default()).collect();
        ShardedEngine::new(
            topo(),
            nodes,
            0xface,
            ShardConfig {
                shards,
                window_us: 2_000,
            },
        )
    }

    /// Folds one full run into a comparable snapshot.
    fn snapshot(
        e: &mut ShardedEngine<GNode, UniformRandom>,
    ) -> (
        u64,
        u64,
        SimTime,
        Vec<(SimTime, Addr, (u32, Addr))>,
        Vec<NodeIo>,
        Vec<Vec<u32>>,
        u64,
        u64,
        u64,
    ) {
        let (total_msgs, dropped, duplicated, failed_sends) = {
            let st = e.stats();
            (st.total_msgs, st.dropped, st.duplicated, st.failed_sends)
        };
        (
            e.fingerprint(),
            total_msgs,
            e.now(),
            e.drain_outputs(),
            (0..N).map(|a| e.node_io(a)).collect(),
            (0..N).map(|a| e.node(a).heard.clone()).collect(),
            dropped,
            duplicated,
            failed_sends,
        )
    }

    fn seeded_run(
        shards: usize,
    ) -> (
        u64,
        u64,
        SimTime,
        Vec<(SimTime, Addr, (u32, Addr))>,
        Vec<NodeIo>,
        Vec<Vec<u32>>,
        u64,
        u64,
        u64,
    ) {
        let mut e = engine(shards);
        for i in 0..8 {
            e.inject(
                i * 7,
                (i * 13 + 1) % N,
                GMsg::Rumor {
                    ttl: 12,
                    tag: i as u32,
                },
                0,
            );
        }
        e.run_until_quiet(u64::MAX);
        assert_eq!(e.pending(), 0, "run must quiesce");
        snapshot(&mut e)
    }

    #[test]
    fn single_and_multi_shard_runs_are_bit_identical() {
        let one = seeded_run(1);
        for shards in [2, 3, 4, 7] {
            assert_eq!(one, seeded_run(shards), "{shards} shards diverged");
        }
        assert!(!one.3.is_empty(), "run must produce outputs");
    }

    #[test]
    fn faulty_runs_are_shard_count_independent() {
        let run = |shards: usize| {
            let mut e = engine(shards);
            e.set_faults(
                FaultConfig {
                    loss: 0.15,
                    duplicate: 0.1,
                    jitter_us: 900,
                },
                4242,
            );
            for i in 0..10 {
                e.inject(
                    i * 5,
                    (i * 11 + 3) % N,
                    GMsg::Rumor {
                        ttl: 10,
                        tag: i as u32,
                    },
                    0,
                );
            }
            e.run_until_quiet(u64::MAX);
            snapshot(&mut e)
        };
        let one = run(1);
        assert!(one.6 > 0, "loss must drop something");
        assert!(one.7 > 0, "duplication must duplicate something");
        for shards in [2, 4] {
            assert_eq!(one, run(shards), "{shards} shards diverged under faults");
        }
    }

    #[test]
    fn churn_between_runs_is_shard_count_independent() {
        let run = |shards: usize| {
            let mut e = engine(shards);
            for i in 0..6 {
                e.inject(
                    i,
                    (i + N / 2) % N,
                    GMsg::Rumor {
                        ttl: 8,
                        tag: i as u32,
                    },
                    0,
                );
            }
            e.run_until_quiet(u64::MAX);
            // Kill a band of nodes, stir, revive some, stir again: the
            // dead-destination bounce path goes through the batches too.
            for a in 20..30 {
                e.kill(a);
            }
            for i in 0..6 {
                e.inject(
                    i,
                    20 + (i % 10),
                    GMsg::Rumor {
                        ttl: 6,
                        tag: 100 + i as u32,
                    },
                    0,
                );
            }
            e.run_until_quiet(u64::MAX);
            for a in 20..25 {
                e.revive(a);
            }
            e.arm_timer(3, 5_000, 999);
            for i in 0..4 {
                e.inject(
                    40 + i,
                    20 + i,
                    GMsg::Rumor {
                        ttl: 5,
                        tag: 200 + i as u32,
                    },
                    0,
                );
            }
            e.run_until_quiet(u64::MAX);
            let failures: u64 = (0..N).map(|a| e.node(a).failures).sum();
            (snapshot(&mut e), failures)
        };
        let one = run(1);
        assert!(one.0 .8 > 0, "churn must fail some sends");
        assert!(one.1 > 0, "some sender must observe a failure");
        for shards in [2, 5] {
            assert_eq!(one, run(shards), "{shards} shards diverged under churn");
        }
    }

    #[test]
    fn repeated_runs_replay_bit_identically() {
        assert_eq!(seeded_run(4), seeded_run(4));
    }

    #[test]
    fn event_budget_stops_at_window_granularity() {
        let mut e = engine(4);
        for i in 0..8 {
            e.inject(
                i * 7,
                (i * 13 + 1) % N,
                GMsg::Rumor {
                    ttl: 12,
                    tag: i as u32,
                },
                0,
            );
        }
        let ran = e.run_until_quiet(10);
        assert!(ran >= 10 || e.pending() == 0, "must hit budget or quiesce");
        // Resume to quiescence; the combined run must still quiesce.
        e.run_until_quiet(u64::MAX);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn window_wider_than_min_delay_is_rejected() {
        // Min delay 2_000 but window 50_000: unsafe, rejected with a
        // typed error at construction instead of a mid-run panic.
        let Err(err) = ShardedEngine::<GNode, UniformRandom>::try_new(
            topo(),
            1,
            ShardConfig {
                shards: 2,
                window_us: 50_000,
            },
        ) else {
            panic!("too-wide window must be rejected");
        };
        assert_eq!(
            err,
            WindowTooWide {
                window_us: 50_000,
                min_delay_us: 2_000,
            }
        );
        assert!(err.to_string().contains("exceeds the topology's minimum"));
    }

    #[test]
    #[should_panic(expected = "exceeds the topology's minimum")]
    fn new_panics_on_too_wide_window() {
        let nodes = (0..N).map(|_| GNode::default()).collect();
        let _: ShardedEngine<GNode, UniformRandom> = ShardedEngine::new(
            topo(),
            nodes,
            1,
            ShardConfig {
                shards: 2,
                window_us: 50_000,
            },
        );
    }

    #[test]
    fn grown_engine_matches_constructed_engine() {
        // `push_node` growth must be bit-identical to handing every
        // node to the constructor, and addresses must be dense, stable
        // and in push order.
        let mut e: ShardedEngine<GNode, UniformRandom> = ShardedEngine::try_new(
            topo(),
            0xface,
            ShardConfig {
                shards: 4,
                window_us: 2_000,
            },
        )
        .unwrap();
        e.reserve_nodes(N);
        for i in 0..N {
            assert_eq!(e.push_node(GNode::default()), i, "addresses are stable");
        }
        for i in 0..8 {
            e.inject(
                i * 7,
                (i * 13 + 1) % N,
                GMsg::Rumor {
                    ttl: 12,
                    tag: i as u32,
                },
                0,
            );
        }
        e.run_until_quiet(u64::MAX);
        assert_eq!(snapshot(&mut e), seeded_run(4), "growth diverged");
    }

    #[test]
    fn epoch_and_live_addrs_track_membership() {
        let mut e = engine(4);
        assert_eq!(e.epoch(), 0, "constructed engines start at epoch 0");
        assert_eq!(e.live_addrs().len(), N);
        e.kill(10);
        e.kill(40);
        assert_eq!(e.epoch(), 2);
        let live = e.live_addrs();
        assert_eq!(live.len(), N - 2);
        assert!(!live.contains(&10) && !live.contains(&40));
        assert!(
            live.windows(2).all(|w| w[0] < w[1]),
            "ascending across shard boundaries"
        );
        e.revive(10);
        assert_eq!(e.epoch(), 3);
        assert!(e.live_addrs().contains(&10));
    }

    #[test]
    fn per_round_stats_and_drains_reuse_buffers() {
        let mut e = engine(4);
        let mut buf = Vec::new();
        let stir = |e: &mut ShardedEngine<GNode, UniformRandom>, base: u32| {
            for i in 0..8usize {
                e.inject(
                    i * 7,
                    (i * 13 + 1) % N,
                    GMsg::Rumor {
                        ttl: 6,
                        tag: base + i as u32,
                    },
                    0,
                );
            }
            e.run_until_quiet(u64::MAX);
        };
        stir(&mut e, 0);
        let first = {
            let st = e.stats();
            (st.total_msgs, st.total_bytes)
        };
        let again = {
            let st = e.stats();
            (st.total_msgs, st.total_bytes)
        };
        assert_eq!(first, again, "stats() must be a pure merge");
        e.drain_outputs_into(&mut buf);
        assert!(!buf.is_empty());
        let drained = buf.len();
        assert!(
            e.out_scratch_capacity() >= drained,
            "staging buffer must be retained for the next round"
        );
        e.drain_outputs_into(&mut buf);
        assert!(buf.is_empty(), "a second drain finds nothing");
        // Another round reuses both the caller's and the engine's
        // buffers; the results must match the allocating path.
        stir(&mut e, 100);
        e.drain_outputs_into(&mut buf);
        assert!(!buf.is_empty());
    }

    #[test]
    fn traced_faulty_runs_are_shard_count_independent() {
        let run = |shards: usize, trace: bool| {
            let mut e = engine(shards);
            if trace {
                e.set_tracing(TraceConfig::full());
                e.set_series(SeriesConfig::new(1_000));
            }
            e.set_faults(
                FaultConfig {
                    loss: 0.15,
                    duplicate: 0.1,
                    jitter_us: 900,
                },
                4242,
            );
            for i in 0..10 {
                e.inject(
                    i * 5,
                    (i * 11 + 3) % N,
                    GMsg::Rumor {
                        ttl: 10,
                        tag: i as u32,
                    },
                    0,
                );
            }
            e.run_until_quiet(u64::MAX);
            let t = e.take_tracer();
            let series_fp = t.series().map(|s| s.fingerprint());
            (snapshot(&mut e), t.fingerprint(), series_fp)
        };
        let (untraced, _, _) = run(1, false);
        let (one, fp1, series1) = run(1, true);
        assert_eq!(untraced, one, "tracing must not perturb outcomes");
        assert_ne!(fp1, past_trace::fnv1a(b""), "trace must be non-empty");
        let series1 = series1.expect("series must survive take_tracer");
        for shards in [2, 4] {
            let (s, fps, series) = run(shards, true);
            assert_eq!(one, s, "{shards} shards diverged under tracing");
            assert_eq!(fp1, fps, "{shards}-shard trace fingerprint diverged");
            assert_eq!(
                Some(series1),
                series,
                "{shards}-shard series fingerprint diverged"
            );
        }
    }
}
