//! A hierarchical timer wheel: the O(1) event queue behind the engine.
//!
//! A discrete-event simulation of a large overlay is dominated by a
//! *timer storm*: every node arms heartbeat/stabilize timers every few
//! hundred milliseconds, so at 100k+ nodes the pending-event set is
//! huge and almost entirely near-future. A binary heap pays `O(log n)`
//! per push/pop with poor locality; the wheel pays `O(1)` amortized by
//! hashing each event into a slot indexed by its expiry time.
//!
//! ## Layout
//!
//! [`LEVELS`] levels of [`SLOTS`] slots each. Level `k` has slot width
//! `64^k` microseconds, so level 0 resolves single ticks and the top
//! level spans the entire `u64` tick range — there is no overflow list
//! and no horizon. An event at time `t` is filed at the level of the
//! highest bit in which `t` differs from the wheel's current time
//! (`t ^ now`), i.e. the coarsest level at which it is distinguishable
//! from "now". As time advances, higher-level slots are *cascaded*:
//! drained and re-filed relative to the new now, falling one or more
//! levels each time until they reach level 0 and finally the
//! current-tick buffer.
//!
//! ## Ordering contract
//!
//! Events pop in ascending `(time, tie)` order, exactly like a totally
//! ordered priority queue. Level-0 slots are one tick wide, so every
//! event in a slot shares an exact time; a drained slot is sorted by
//! `tie` before delivery, and same-tick pushes that happen *while the
//! tick is being drained* (a handler scheduling a zero-delay event)
//! are inserted into the live buffer at their sorted position. Callers
//! supply the tie key: the sequential engine uses a global push
//! counter (insertion order, matching the old binary heap bit for
//! bit), the sharded engine uses `(source node, per-source seq)` so
//! the order is independent of how nodes are partitioned over shards.
//!
//! ## Clocks: delivery floor vs. cascade position
//!
//! The wheel tracks two times. The *floor* is the time of the last
//! delivered event: pushing below it is a caller bug (simulated time
//! is monotone) and panics. The *cascade position* (`now`) is where
//! the slot bookkeeping has advanced to — [`peek_time`] may push it
//! all the way to the earliest pending event, which can sit far in
//! the future. A push between the floor and the cascade position is
//! legitimate (the sharded engine absorbs batches whose times precede
//! an idle shard's distant first event) and lands, sorted, in the
//! current buffer.
//!
//! [`peek_time`]: TimerWheel::peek_time

/// Slots per level (64 = one 6-bit digit of the tick counter).
const SLOTS: usize = 64;
/// Bits per level.
const BITS: u32 = 6;
/// Levels; `ceil(64 / 6) = 11` covers the full `u64` tick range.
const LEVELS: usize = 11;

struct Entry<E> {
    time: u64,
    tie: u128,
    payload: E,
}

/// A hierarchical timer wheel delivering events in `(time, tie)` order.
pub struct TimerWheel<E> {
    /// Cascade position: how far slot bookkeeping has advanced. Always
    /// `>= floor`; may run ahead of it after a peek (see module docs).
    now: u64,
    /// Delivery floor: the time of the most recently popped event.
    floor: u64,
    /// `LEVELS * SLOTS` buckets, row-major by level.
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level occupancy bitmap (bit `s` = slot `s` non-empty).
    occ: [u64; LEVELS],
    /// Events at or before the cascade position, ascending by
    /// `(time, tie)`; consumed from the front. `VecDeque` so the hot
    /// path (drain a slot, pop it dry) is O(1) per event while
    /// mid-drain same-tick inserts stay possible.
    current: std::collections::VecDeque<(u64, u128, E)>,
    /// Scratch buffer reused across cascades.
    scratch: Vec<Entry<E>>,
    /// Total pending events (slots + current).
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel at time zero.
    pub fn new() -> TimerWheel<E> {
        TimerWheel {
            now: 0,
            floor: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            current: std::collections::VecDeque::new(),
            scratch: Vec::new(),
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current time (last delivered tick).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `payload` at `time` with tie-break key `tie`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last delivered event:
    /// simulated time is monotone and a past-dated event would be
    /// silently misordered.
    pub fn push(&mut self, time: u64, tie: u128, payload: E) {
        assert!(
            time >= self.floor,
            "event scheduled in the past ({time} < delivered {floor})",
            floor = self.floor
        );
        self.len += 1;
        if time <= self.now {
            // At or before the cascade position (same tick as the one
            // being delivered, or behind a peek that ran ahead):
            // insert at the sorted position among the not-yet-delivered
            // entries. For monotone keys at one tick (the sequential
            // engine) this is always the back, i.e. O(1).
            let at = self
                .current
                .partition_point(|&(t, k, _)| (t, k) < (time, tie));
            self.current.insert(at, (time, tie, payload));
            return;
        }
        self.file(Entry { time, tie, payload });
    }

    /// Files an entry with `time > now` into its slot.
    fn file(&mut self, e: Entry<E>) {
        let x = e.time ^ self.now;
        debug_assert!(x != 0);
        let level = ((63 - x.leading_zeros()) / BITS) as usize;
        let slot = ((e.time >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.occ[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(e);
    }

    /// Advances until the next pending events sit in the current-tick
    /// buffer (cascading coarse slots down as needed). After this,
    /// either `current` is non-empty and `now` is the exact time of
    /// its entries, or the wheel is empty.
    fn advance(&mut self) {
        while self.current.is_empty() && self.len > 0 {
            // The earliest occupied slot across all levels, by the
            // absolute time its slot begins at. An occupied slot's
            // start is always <= every event inside it, and no event
            // outside it can be earlier (finer levels hold strictly
            // nearer times, coarser ones strictly later slots).
            let mut best: Option<(u64, usize, usize)> = None; // (start, level, slot)
            for level in 0..LEVELS {
                if self.occ[level] == 0 {
                    continue;
                }
                let shift = BITS * level as u32;
                let pos = ((self.now >> shift) & (SLOTS as u64 - 1)) as usize;
                // All live slots at this level sit at indices >= pos
                // within now's frame (events are filed at the level of
                // their highest differing bit, so their slot index
                // exceeds now's; cascading preserves this).
                let ahead = self.occ[level] >> pos;
                debug_assert!(ahead != 0, "occupied slot behind current time");
                let slot = pos + ahead.trailing_zeros() as usize;
                let start = frame_base(self.now, level) | ((slot as u64) << shift);
                if best.map(|(bs, _, _)| start < bs).unwrap_or(true) {
                    best = Some((start, level, slot));
                }
            }
            let Some((start, level, slot)) = best else {
                debug_assert!(false, "len > 0 but no occupied slot");
                return;
            };
            // Drain the slot and re-file its entries relative to the
            // slot's start time. Entries exactly at `start` land in
            // `current`; later ones fall to a finer level (their
            // differing bits against `start` are strictly below this
            // level's width, so cascading terminates).
            self.now = self.now.max(start);
            self.occ[level] &= !(1 << slot);
            let mut batch = std::mem::take(&mut self.scratch);
            debug_assert!(batch.is_empty());
            batch.append(&mut self.slots[level * SLOTS + slot]);
            // Sorting here keeps `current` insertion linear: entries
            // arrive in ascending tie order and append at the back.
            batch.sort_unstable_by_key(|e| (e.time, e.tie));
            for e in batch.drain(..) {
                if e.time == self.now {
                    let at = self
                        .current
                        .partition_point(|&(t, k, _)| (t, k) < (e.time, e.tie));
                    self.current.insert(at, (e.time, e.tie, e.payload));
                } else {
                    self.file(e);
                }
            }
            self.scratch = batch;
        }
    }

    /// Removes and returns the earliest event as `(time, tie, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u128, E)> {
        self.advance();
        let (time, tie, payload) = self.current.pop_front()?;
        self.len -= 1;
        self.floor = time;
        Some((time, tie, payload))
    }

    /// The exact time of the earliest pending event.
    ///
    /// Takes `&mut self`: answering may cascade coarse slots down to
    /// tick resolution (pure bookkeeping — delivery order and results
    /// are unchanged).
    pub fn peek_time(&mut self) -> Option<u64> {
        self.advance();
        self.current.front().map(|&(t, _, _)| t)
    }
}

/// The base time of `now`'s frame at `level`: `now` with everything at
/// or below the level's digit cleared.
fn frame_base(now: u64, level: usize) -> u64 {
    let shift = BITS * (level as u32 + 1);
    if shift >= 64 {
        0
    } else {
        (now >> shift) << shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.push(30, 0, "c");
        w.push(10, 1, "a");
        w.push(20, 2, "b");
        assert_eq!(w.pop(), Some((10, 1, "a")));
        assert_eq!(w.pop(), Some((20, 2, "b")));
        assert_eq!(w.pop(), Some((30, 0, "c")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn ties_resolve_by_tie_key() {
        let mut w = TimerWheel::new();
        for i in (0..100u128).rev() {
            w.push(5, i, i);
        }
        for i in 0..100u128 {
            assert_eq!(w.pop(), Some((5, i, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut w = TimerWheel::new();
        w.push(7, 0, ());
        assert_eq!(w.peek_time(), Some(7));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn same_tick_insert_while_draining() {
        // A handler popping at t=5 schedules another t=5 event with a
        // higher tie: it must come out before the t=6 event.
        let mut w = TimerWheel::new();
        w.push(5, 0, "first");
        w.push(6, 1, "later");
        assert_eq!(w.pop(), Some((5, 0, "first")));
        w.push(5, 2, "echo");
        assert_eq!(w.pop(), Some((5, 2, "echo")));
        assert_eq!(w.pop(), Some((6, 1, "later")));
    }

    #[test]
    fn same_tick_insert_sorts_below_pending() {
        // Sharded tie keys are (src, seq): a mid-tick insert can sort
        // *before* an already pending same-tick entry.
        let mut w = TimerWheel::new();
        w.push(5, 10, "a");
        w.push(5, 30, "c");
        assert_eq!(w.pop(), Some((5, 10, "a")));
        w.push(5, 20, "b");
        assert_eq!(w.pop(), Some((5, 20, "b")));
        assert_eq!(w.pop(), Some((5, 30, "c")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_push_panics() {
        let mut w = TimerWheel::new();
        w.push(100, 0, ());
        let _ = w.pop();
        w.push(99, 1, ());
    }

    /// Events exactly at wheel-rollover ticks: slot boundaries at every
    /// level (64, 64², 64³, ...), one below, one above, and the far
    /// end of the u64 range. These are the off-by-one hot spots of the
    /// cascade logic.
    #[test]
    fn cascade_boundary_times() {
        let mut times = vec![0u64, 1, 63, u64::MAX - 1, u64::MAX];
        for k in 1..LEVELS as u32 {
            let b = 1u64 << (BITS * k);
            times.extend_from_slice(&[b - 1, b, b + 1]);
            if let Some(m) = b.checked_mul(63) {
                times.extend_from_slice(&[m - 1, m, m + 1]);
            }
        }
        let mut w = TimerWheel::new();
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u128, t);
        }
        let mut expect: Vec<(u64, u128)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u128))
            .collect();
        expect.sort_unstable();
        for (t, tie) in expect {
            assert_eq!(w.pop(), Some((t, tie, t)), "boundary event misordered");
        }
        assert_eq!(w.pop(), None);
    }

    /// Property test: against a sorted reference, with pushes
    /// interleaved into pops, clustered around random rollover
    /// boundaries. Seeded, hermetic.
    #[test]
    fn randomized_against_reference() {
        for round in 0..50u64 {
            let mut rng = Rng::seed_from_u64(0x57ee1 + round);
            let mut w = TimerWheel::new();
            let mut reference: Vec<(u64, u128)> = Vec::new();
            let mut seq = 0u128;
            let mut now = 0u64;
            let push = |w: &mut TimerWheel<u128>,
                        reference: &mut Vec<(u64, u128)>,
                        rng: &mut Rng,
                        now: u64,
                        seq: &mut u128| {
                // Mix near-future ticks with cascade-boundary-straddling
                // far jumps.
                let t = match rng.random_range(0..4u32) {
                    0 => now + rng.random_range(0..4u64),
                    1 => now + rng.random_range(0..200u64),
                    2 => {
                        let level = rng.random_range(1..6u32);
                        let b = 1u64 << (BITS * level);
                        let base = (now / b + 1) * b;
                        base.saturating_add(rng.random_range(0..3u64))
                            .saturating_sub(1)
                    }
                    _ => now + rng.random_range(0..1_000_000u64),
                };
                let tie = *seq;
                *seq += 1;
                w.push(t, tie, tie);
                reference.push((t, tie));
            };
            for _ in 0..100 {
                push(&mut w, &mut reference, &mut rng, now, &mut seq);
            }
            reference.sort_unstable();
            let mut i = 0;
            while i < reference.len() {
                let (t, tie) = reference[i];
                let got = w.pop().expect("wheel ran dry early");
                assert_eq!(got, (t, tie, tie), "divergence at pop {i}");
                now = t;
                i += 1;
                // Occasionally push more from the popped time.
                if rng.random_range(0..8u32) == 0 && i < 400 {
                    push(&mut w, &mut reference, &mut rng, now, &mut seq);
                    reference[i..].sort_unstable();
                }
            }
            assert_eq!(w.pop(), None);
        }
    }

    /// A peek may cascade the wheel's internal position far into the
    /// future (to a distant first event); a later push *behind* that
    /// position but ahead of everything delivered is legitimate and
    /// must pop first, in order. This is the idle-shard absorb pattern
    /// of the sharded engine.
    #[test]
    fn push_behind_cascade_position_after_peek() {
        let mut w = TimerWheel::new();
        w.push(50_000, 5, "far");
        assert_eq!(w.peek_time(), Some(50_000)); // cascades now to 50_000
        w.push(7_000, 1, "near");
        w.push(6_844, 2, "nearer");
        w.push(7_000, 0, "near-low-tie");
        assert_eq!(w.peek_time(), Some(6_844));
        assert_eq!(w.pop(), Some((6_844, 2, "nearer")));
        assert_eq!(w.pop(), Some((7_000, 0, "near-low-tie")));
        assert_eq!(w.pop(), Some((7_000, 1, "near")));
        assert_eq!(w.pop(), Some((50_000, 5, "far")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn skip_ahead_over_sparse_horizon() {
        // One event 19 hours out (past the 6-level horizon of a
        // conventional wheel): peek must report its exact time.
        let mut w = TimerWheel::new();
        let far = 70_000_000_000u64; // ~19.4 sim-hours in microseconds
        w.push(far, 0, "far");
        assert_eq!(w.peek_time(), Some(far));
        assert_eq!(w.pop(), Some((far, 0, "far")));
    }
}
