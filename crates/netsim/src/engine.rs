//! The discrete-event message engine.
//!
//! Nodes are state machines implementing [`NodeLogic`]; the engine owns
//! them, delivers messages with topology-derived latency, models node
//! failure (messages to a dead node produce a delayed send-failure
//! notification at the sender, standing in for a timeout), and counts
//! traffic per message kind.
//!
//! Everything is deterministic: a single seeded RNG, and an event queue
//! ordered by `(time, sequence number)`.

use crate::arena::Arena;
use crate::event::EventQueue;
use crate::soa::{NodeIo, NodeSlots};
use crate::time::SimTime;
use crate::topology::{Addr, Topology};
use past_crypto::rng::Rng;
use past_trace::{OpId, SeriesConfig, TraceConfig, Tracer};

/// A simulated wire message.
pub trait Message: Clone {
    /// Every kind label this message type can produce, in [`kind_id`]
    /// order. The engine's per-kind traffic counters are a flat array
    /// indexed by `kind_id`, so accounting is an array bump instead of a
    /// string-keyed hash lookup per message.
    ///
    /// [`kind_id`]: Message::kind_id
    const KINDS: &'static [&'static str];

    /// Index of this message's kind within [`Message::KINDS`].
    fn kind_id(&self) -> usize;

    /// A short static label used for per-kind traffic accounting.
    fn kind(&self) -> &'static str {
        Self::KINDS[self.kind_id()]
    }

    /// Wire size in bytes, used for bandwidth accounting and per-send
    /// trace records. Message types with a codec must answer their exact
    /// encoded length (`past_wire::Wire::encoded_len`); the default is a
    /// placeholder for codec-less test messages only.
    fn wire_size(&self) -> u64 {
        64
    }

    /// The client operation this message belongs to, for causal trace
    /// attribution. Protocol messages that are not part of a client
    /// operation (the default) answer [`OpId::NONE`].
    fn op_id(&self) -> OpId {
        OpId::NONE
    }
}

/// Per-node protocol logic driven by the engine.
pub trait NodeLogic {
    /// The wire message type.
    type Msg: Message;
    /// Out-of-band observations surfaced to the experiment harness
    /// (delivery records, receipts, rejections, ...).
    type Out;

    /// Handles a message arriving from `from`.
    fn on_message(&mut self, from: Addr, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg, Self::Out>);

    /// Called when a previously sent message could not be delivered because
    /// the destination is dead (models an RPC timeout).
    fn on_send_failed(
        &mut self,
        _to: Addr,
        _msg: Self::Msg,
        _ctx: &mut Ctx<'_, Self::Msg, Self::Out>,
    ) {
    }

    /// Handles a timer previously set with [`Ctx::set_timer`].
    fn on_timer(&mut self, _kind: u64, _ctx: &mut Ctx<'_, Self::Msg, Self::Out>) {}
}

/// Compact `Copy` event record carried by the queue.
///
/// Message payloads park in the engine's [`Arena`]; the record holds
/// only the `u32` slot handle, so the queue moves fixed-size records
/// instead of full protocol messages and queue growth never re-copies
/// payloads. Addresses are `u32` for the same reason (the engine
/// asserts the node count fits).
#[derive(Clone, Copy)]
enum EventRec {
    Deliver { from: u32, to: u32, msg: u32 },
    SendFailed { at: u32, dest: u32, msg: u32 },
    Timer { at: u32, kind: u64 },
}

/// Link-fault injection parameters.
///
/// The all-zero default disables fault injection entirely: no RNG draws
/// happen, so a faultless engine is bit-identical to one that never heard
/// of faults. Faults are drawn from a dedicated RNG (seeded by
/// [`Engine::set_faults`]), independent of the protocol RNG, so enabling
/// them never perturbs routing/tie-break decisions and identical seeds
/// reproduce identical drop/duplicate/jitter sequences.
///
/// Self-sends (`from == to`, e.g. a node handing a message to its own
/// routing logic) are exempt: they never cross a link.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Probability a message is silently lost in transit. Loss produces
    /// *no* send-failure notification — that signal models an RPC timeout
    /// against a dead peer, and a lossy link gives the sender nothing.
    pub loss: f64,
    /// Probability a surviving message is delivered twice (the duplicate
    /// takes an independent jitter draw).
    pub duplicate: f64,
    /// Extra per-message delay, drawn uniformly from `0..=jitter_us`.
    pub jitter_us: u64,
}

impl FaultConfig {
    /// True if any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.loss > 0.0 || self.duplicate > 0.0 || self.jitter_us > 0
    }
}

pub(crate) enum Effect<M> {
    Send { to: Addr, msg: M, extra_us: u64 },
    Timer { delay_us: u64, kind: u64 },
}

/// The per-invocation context handed to node logic.
///
/// Collects effects (sends, timers, emissions) which the engine applies
/// after the handler returns, and exposes the proximity metric and the
/// simulation RNG.
pub struct Ctx<'a, M, O> {
    /// Current simulated time.
    pub now: SimTime,
    /// Address of the node being invoked.
    pub me: Addr,
    /// The simulation RNG (shared, seeded once per engine).
    pub rng: &'a mut Rng,
    /// The engine's trace sink. Node logic records protocol-level
    /// events (route hops, join phases, operation lifecycle) here; the
    /// engine itself records the message plane. No-op unless enabled
    /// via [`Engine::set_tracing`].
    pub tracer: &'a mut Tracer,
    // `pub(crate)` rather than private: the sharded engine
    // ([`crate::shard`]) constructs the same context for its workers.
    pub(crate) topo: &'a dyn Topology,
    // Engine-owned scratch buffers, reused across invocations so the
    // per-event cost is a pointer swap rather than two allocations.
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) emitted: &'a mut Vec<O>,
}

impl<M, O> Ctx<'_, M, O> {
    /// Sends `msg` to `to`; it arrives after the topology delay.
    pub fn send(&mut self, to: Addr, msg: M) {
        self.effects.push(Effect::Send {
            to,
            msg,
            extra_us: 0,
        });
    }

    /// Sends `msg` to `to` with additional artificial delay (e.g. local
    /// processing or disk time).
    pub fn send_after(&mut self, to: Addr, msg: M, extra_us: u64) {
        self.effects.push(Effect::Send { to, msg, extra_us });
    }

    /// Arms a timer that fires at this node after `delay_us`.
    pub fn set_timer(&mut self, delay_us: u64, kind: u64) {
        self.effects.push(Effect::Timer { delay_us, kind });
    }

    /// One-way delay from this node to `other` (the proximity metric).
    ///
    /// In a deployment a node measures this by probing; the simulator
    /// answers from the topology directly.
    pub fn delay_to(&self, other: Addr) -> u64 {
        self.topo.delay_us(self.me, other)
    }

    /// Pairwise delay between two arbitrary nodes.
    pub fn delay_between(&self, a: Addr, b: Addr) -> u64 {
        self.topo.delay_us(a, b)
    }

    /// Emits an observation for the experiment harness.
    pub fn emit(&mut self, out: O) {
        self.emitted.push(out);
    }
}

/// The engine context is the simulator-side implementation of the
/// sans-io effect sink: protocol state machines written against
/// `past_wire::Io` run under the engine with no adapter code beyond
/// this impl.
impl<M, O> past_wire::Io<M, O> for Ctx<'_, M, O> {
    fn now_us(&self) -> u64 {
        self.now.as_micros()
    }

    fn me(&self) -> Addr {
        self.me
    }

    fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    fn tracer(&mut self) -> &mut Tracer {
        self.tracer
    }

    fn delay_to(&self, other: Addr) -> u64 {
        Ctx::delay_to(self, other)
    }

    fn send(&mut self, to: Addr, msg: M) {
        Ctx::send(self, to, msg)
    }

    fn send_after(&mut self, to: Addr, msg: M, extra_us: u64) {
        Ctx::send_after(self, to, msg, extra_us)
    }

    fn set_timer(&mut self, delay_us: u64, kind: u64) {
        Ctx::set_timer(self, delay_us, kind)
    }

    fn emit(&mut self, out: O) {
        Ctx::emit(self, out)
    }
}

/// Per-kind traffic counters.
///
/// Counters are a flat array parallel to the message type's
/// [`Message::KINDS`] table, indexed by [`Message::kind_id`]; the by-name
/// lookup ([`kind_count`]) scans the (short, static) kind table.
///
/// [`kind_count`]: NetStats::kind_count
#[derive(Default, Debug, Clone)]
pub struct NetStats {
    kinds: &'static [&'static str],
    by_kind: Vec<u64>,
    /// Total messages sent.
    pub total_msgs: u64,
    /// Total bytes sent.
    pub total_bytes: u64,
    /// Messages silently lost by fault injection ([`FaultConfig::loss`]).
    pub dropped: u64,
    /// Extra deliveries created by fault injection
    /// ([`FaultConfig::duplicate`]).
    pub duplicated: u64,
    /// Messages that reached a dead destination (each schedules a
    /// send-failure notification back at a live sender). Protocols that
    /// ignore [`NodeLogic::on_send_failed`] still show up here, keeping
    /// cross-protocol failure comparisons honest.
    pub failed_sends: u64,
}

impl NetStats {
    pub(crate) fn for_kinds(kinds: &'static [&'static str]) -> NetStats {
        NetStats {
            kinds,
            by_kind: vec![0; kinds.len()],
            total_msgs: 0,
            total_bytes: 0,
            dropped: 0,
            duplicated: 0,
            failed_sends: 0,
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.by_kind.iter_mut().for_each(|c| *c = 0);
        self.total_msgs = 0;
        self.total_bytes = 0;
        self.dropped = 0;
        self.duplicated = 0;
        self.failed_sends = 0;
    }

    /// Mutable per-kind counters (the sharded engine accounts sends on
    /// its own shard-local stats blocks).
    pub(crate) fn by_kind_mut(&mut self) -> &mut [u64] {
        &mut self.by_kind
    }

    /// Folds another stats block into this one (summing every counter).
    /// Used to combine per-shard counters into a run total.
    ///
    /// # Panics
    ///
    /// Panics if the two blocks count different kind tables.
    pub fn merge(&mut self, other: &NetStats) {
        assert!(
            std::ptr::eq(self.kinds, other.kinds) || self.kinds == other.kinds,
            "cannot merge stats over different kind tables"
        );
        for (mine, theirs) in self.by_kind.iter_mut().zip(other.by_kind.iter()) {
            *mine += theirs;
        }
        self.total_msgs += other.total_msgs;
        self.total_bytes += other.total_bytes;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.failed_sends += other.failed_sends;
    }

    /// Messages of one kind.
    pub fn kind_count(&self, kind: &str) -> u64 {
        match self.kinds.iter().position(|&k| k == kind) {
            Some(i) => self.by_kind[i],
            None => 0,
        }
    }

    /// Iterates `(kind, count)` pairs in [`Message::KINDS`] order.
    pub fn by_kind(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kinds.iter().copied().zip(self.by_kind.iter().copied())
    }
}

/// The discrete-event engine binding nodes, topology and the event queue.
pub struct Engine<N: NodeLogic, T: Topology> {
    topo: T,
    nodes: NodeSlots<N>,
    queue: EventQueue<EventRec>,
    // In-flight message payloads, addressed by the `msg` handle in
    // [`EventRec`]. Slots recycle, so the steady-state event loop
    // allocates nothing per message.
    arena: Arena<N::Msg>,
    rng: Rng,
    faults: FaultConfig,
    // Separate from `rng` so enabling faults never shifts protocol
    // decisions, and a fault sequence depends only on its own seed.
    fault_rng: Rng,
    now: SimTime,
    /// Traffic counters (public so harnesses can reset/read them).
    pub stats: NetStats,
    tracer: Tracer,
    outputs: Vec<(SimTime, Addr, N::Out)>,
    epoch: u64,
    scratch_effects: Vec<Effect<N::Msg>>,
    scratch_emitted: Vec<N::Out>,
}

impl<N: NodeLogic, T: Topology> Engine<N, T> {
    /// Creates an engine over `nodes` (one per topology slot prefix).
    ///
    /// # Panics
    ///
    /// Panics if there are more nodes than topology slots.
    pub fn new(topo: T, nodes: Vec<N>, seed: u64) -> Engine<N, T> {
        assert!(
            nodes.len() <= topo.len(),
            "more nodes ({}) than topology slots ({})",
            nodes.len(),
            topo.len()
        );
        assert!(
            nodes.len() < u32::MAX as usize,
            "node address space (u32) exhausted"
        );
        Engine {
            topo,
            nodes: NodeSlots::from_logic(nodes),
            queue: EventQueue::new(),
            arena: Arena::new(),
            rng: Rng::seed_from_u64(seed),
            faults: FaultConfig::default(),
            fault_rng: Rng::seed_from_u64(seed ^ 0x5eed_fa17),
            now: SimTime::ZERO,
            stats: NetStats::for_kinds(N::Msg::KINDS),
            tracer: Tracer::for_kinds(N::Msg::KINDS),
            outputs: Vec::new(),
            epoch: 0,
            scratch_effects: Vec::new(),
            scratch_emitted: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if the engine has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The topology (proximity oracle).
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// Immutable access to a node's state.
    pub fn node(&self, a: Addr) -> &N {
        self.nodes.logic(a)
    }

    /// Mutable access to a node's state (harness-side setup only).
    pub fn node_mut(&mut self, a: Addr) -> &mut N {
        self.nodes.logic_mut(a)
    }

    /// Per-node traffic counters (messages sent / received).
    pub fn node_io(&self, a: Addr) -> NodeIo {
        self.nodes.io(a)
    }

    /// Reserves storage for `extra` additional nodes, so bulk builds
    /// (e.g. a 100k-node overlay) grow the node arrays once instead of
    /// doubling through them.
    pub fn reserve_nodes(&mut self, extra: usize) {
        self.nodes.reserve(extra);
    }

    /// Adds a node (returns its address). The topology must already have a
    /// slot for it.
    pub fn push_node(&mut self, node: N) -> Addr {
        let addr = self.nodes.len();
        assert!(addr < self.topo.len(), "no topology slot for new node");
        assert!(
            addr < u32::MAX as usize,
            "node address space (u32) exhausted"
        );
        self.nodes.push(node);
        self.epoch += 1;
        addr
    }

    /// Liveness of a node.
    pub fn is_alive(&self, a: Addr) -> bool {
        self.nodes.is_alive(a)
    }

    /// Marks a node dead: it silently stops processing and answering.
    pub fn kill(&mut self, a: Addr) {
        self.nodes.set_alive(a, false);
        self.epoch += 1;
    }

    /// Marks a node live again (recovery).
    pub fn revive(&mut self, a: Addr) {
        self.nodes.set_alive(a, true);
        self.epoch += 1;
    }

    /// Membership epoch: incremented on every [`push_node`], [`kill`] and
    /// [`revive`], so harness-side caches over the live-node set can be
    /// invalidated by comparing epochs instead of rescanning.
    ///
    /// [`push_node`]: Engine::push_node
    /// [`kill`]: Engine::kill
    /// [`revive`]: Engine::revive
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Addresses of all live nodes.
    pub fn live_addrs(&self) -> Vec<Addr> {
        self.nodes.live_addrs()
    }

    /// The simulation RNG (harness-side sampling).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Enables (or reconfigures) link-fault injection.
    ///
    /// `seed` initializes the dedicated fault RNG: the same seed and
    /// configuration reproduce the exact same drop/duplicate/jitter
    /// sequence over the same message stream. Passing
    /// [`FaultConfig::default`] turns faults off again.
    pub fn set_faults(&mut self, faults: FaultConfig, seed: u64) {
        assert!((0.0..=1.0).contains(&faults.loss), "loss out of [0,1]");
        assert!(
            (0.0..=1.0).contains(&faults.duplicate),
            "duplicate out of [0,1]"
        );
        self.faults = faults;
        self.fault_rng = Rng::seed_from_u64(seed);
    }

    /// The fault configuration in force.
    pub fn faults(&self) -> FaultConfig {
        self.faults
    }

    /// Selects which trace event classes are recorded. The default is
    /// everything off: record calls return after one branch, no
    /// allocation happens, and simulation outcomes are bit-identical
    /// to an engine that never heard of tracing. Tracing draws no
    /// randomness, so enabling it never perturbs outcomes either.
    pub fn set_tracing(&mut self, cfg: TraceConfig) {
        self.tracer.configure(cfg);
    }

    /// Attaches a flight recorder (sim-time windowed series) to the
    /// trace sink. Like tracing, sampling is observation only: it
    /// draws no randomness and never perturbs event order, so golden
    /// fingerprints stay bit-identical with a series attached.
    pub fn set_series(&mut self, cfg: SeriesConfig) {
        self.tracer.set_series(cfg);
    }

    /// The trace sink (records + metrics registry).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable trace sink access (harness-side op lifecycle records).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Takes the trace sink out of the engine (for post-run analysis),
    /// leaving a fresh disabled tracer behind.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::replace(&mut self.tracer, Tracer::for_kinds(N::Msg::KINDS))
    }

    /// Injects a message into `to` as if sent by `from`, arriving after the
    /// topology delay (plus `extra_us`).
    pub fn inject(&mut self, from: Addr, to: Addr, msg: N::Msg, extra_us: u64) {
        self.dispatch(from, to, msg, extra_us);
    }

    /// Accounts and schedules one message, applying the fault model to
    /// anything that crosses a link (`from != to`). Shared by harness
    /// injection and node-effect sends so both face the same network.
    fn dispatch(&mut self, from: Addr, to: Addr, msg: N::Msg, extra_us: u64) {
        self.account(&msg);
        self.nodes.note_sent(from);
        if self.tracer.enabled() {
            let (t, op) = (self.now.as_micros(), msg.op_id());
            self.tracer
                .msg_send(t, op, from, to, msg.kind_id(), msg.wire_size());
        }
        let base = self.now + self.topo.delay_us(from, to) + extra_us;
        let (from, to) = (from as u32, to as u32);
        if from == to || !self.faults.is_active() {
            let msg = self.arena.insert(msg);
            self.queue.push(base, EventRec::Deliver { from, to, msg });
            return;
        }
        // Per-field gating: an inactive fault class draws nothing, so a
        // partially-enabled config stays reproducible field by field.
        if self.faults.loss > 0.0 && self.fault_rng.random::<f64>() < self.faults.loss {
            self.stats.dropped += 1;
            if self.tracer.enabled() {
                let (t, op) = (self.now.as_micros(), msg.op_id());
                self.tracer
                    .msg_drop(t, op, from as Addr, to as Addr, msg.kind_id());
            }
            return;
        }
        let duplicate =
            self.faults.duplicate > 0.0 && self.fault_rng.random::<f64>() < self.faults.duplicate;
        let at = base + self.draw_jitter();
        if duplicate {
            self.stats.duplicated += 1;
            if self.tracer.enabled() {
                let (t, op) = (self.now.as_micros(), msg.op_id());
                self.tracer
                    .msg_dup(t, op, from as Addr, to as Addr, msg.kind_id());
            }
            let echo = base + self.draw_jitter();
            let dup = self.arena.insert(msg.clone());
            self.queue
                .push(echo, EventRec::Deliver { from, to, msg: dup });
        }
        let msg = self.arena.insert(msg);
        self.queue.push(at, EventRec::Deliver { from, to, msg });
    }

    fn draw_jitter(&mut self) -> u64 {
        if self.faults.jitter_us > 0 {
            self.fault_rng.random_range(0..=self.faults.jitter_us)
        } else {
            0
        }
    }

    /// Arms a timer on a node from the harness side.
    pub fn arm_timer(&mut self, at: Addr, delay_us: u64, kind: u64) {
        let at = at as u32;
        self.queue
            .push(self.now + delay_us, EventRec::Timer { at, kind });
    }

    /// Drains observations emitted by node logic since the last call.
    pub fn drain_outputs(&mut self) -> Vec<(SimTime, Addr, N::Out)> {
        std::mem::take(&mut self.outputs)
    }

    fn account(&mut self, msg: &N::Msg) {
        self.stats.total_msgs += 1;
        self.stats.total_bytes += msg.wire_size();
        self.stats.by_kind[msg.kind_id()] += 1;
    }

    /// Processes one event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "time must be monotone");
        self.now = time;
        // Flight-recorder engine gauges: one sample per series window,
        // taken at the window's first event so the sample time is a
        // deterministic function of the event stream alone.
        if self.tracer.series_enabled() {
            let (q, a) = (self.queue.len(), self.arena.len());
            let t = time.as_micros();
            if let Some(s) = self.tracer.series_mut() {
                if s.note_event(t) {
                    s.gauge(t, "queue_depth", q as u64);
                    s.gauge(t, "in_flight_msgs", a as u64);
                }
            }
        }
        match ev {
            EventRec::Deliver { from, to, msg } => {
                let (from, to) = (from as Addr, to as Addr);
                if !self.nodes.is_alive(to) {
                    self.stats.failed_sends += 1;
                    if self.tracer.enabled() {
                        let kid = self.arena.get(msg).kind_id();
                        let (t, op) = (self.now.as_micros(), self.arena.get(msg).op_id());
                        self.tracer.msg_fail(t, op, from, to, kid);
                    }
                    // Timeout model: the sender learns of the failure one
                    // further delay later (round-trip worth in total).
                    if self.nodes.is_alive(from) && from != to {
                        let back = self.topo.delay_us(to, from);
                        // The payload stays parked: the same arena handle
                        // rides the bounce back to the sender.
                        self.queue.push(
                            self.now + back,
                            EventRec::SendFailed {
                                at: from as u32,
                                dest: to as u32,
                                msg,
                            },
                        );
                    } else {
                        drop(self.arena.take(msg));
                    }
                    return true;
                }
                let msg = self.arena.take(msg);
                if self.tracer.enabled() {
                    let (t, op) = (self.now.as_micros(), msg.op_id());
                    self.tracer.msg_recv(t, op, from, to, msg.kind_id());
                }
                self.nodes.note_recv(to);
                self.invoke(to, |node, ctx| node.on_message(from, msg, ctx));
            }
            EventRec::SendFailed { at, dest, msg } => {
                let (at, dest) = (at as Addr, dest as Addr);
                let msg = self.arena.take(msg);
                if self.nodes.is_alive(at) {
                    self.invoke(at, |node, ctx| node.on_send_failed(dest, msg, ctx));
                }
            }
            EventRec::Timer { at, kind } => {
                let at = at as Addr;
                if self.nodes.is_alive(at) {
                    self.invoke(at, |node, ctx| node.on_timer(kind, ctx));
                }
            }
        }
        true
    }

    fn invoke<F>(&mut self, at: Addr, f: F)
    where
        F: FnOnce(&mut N, &mut Ctx<'_, N::Msg, N::Out>),
    {
        // Move the engine-owned scratch buffers into the context for the
        // duration of the handler, then drain and restore them. Handlers
        // run once per event, so reusing the buffers removes two heap
        // allocations from every event in the simulation.
        let mut effects = std::mem::take(&mut self.scratch_effects);
        let mut emitted = std::mem::take(&mut self.scratch_emitted);
        debug_assert!(effects.is_empty() && emitted.is_empty());
        let mut ctx = Ctx {
            now: self.now,
            me: at,
            rng: &mut self.rng,
            tracer: &mut self.tracer,
            topo: &self.topo,
            effects: &mut effects,
            emitted: &mut emitted,
        };
        f(self.nodes.logic_mut(at), &mut ctx);
        for out in emitted.drain(..) {
            self.outputs.push((self.now, at, out));
        }
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, msg, extra_us } => {
                    self.dispatch(at, to, msg, extra_us);
                }
                Effect::Timer { delay_us, kind } => {
                    let at = at as u32;
                    self.queue
                        .push(self.now + delay_us, EventRec::Timer { at, kind });
                }
            }
        }
        self.scratch_effects = effects;
        self.scratch_emitted = emitted;
    }

    /// Runs until the queue drains or `max_events` is hit; returns the
    /// number of events processed.
    pub fn run_until_quiet(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Runs until simulated time reaches `deadline` (events at later times
    /// stay queued); returns events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of message payloads currently parked in flight.
    pub fn in_flight_msgs(&self) -> usize {
        self.arena.len()
    }

    /// Swaps the event queue to the reference binary-heap backend.
    ///
    /// Differential-testing hook: a heap-backed engine must produce
    /// bit-identical runs to the default wheel-backed one. Call before
    /// scheduling anything.
    ///
    /// # Panics
    ///
    /// Panics if events are already pending.
    pub fn use_reference_heap_queue(&mut self) {
        assert!(
            self.queue.is_empty(),
            "cannot swap queue backend with events pending"
        );
        self.queue = EventQueue::new_reference_heap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::UniformRandom;

    /// A toy protocol: Ping is answered with Pong; delivery is emitted.
    #[derive(Clone)]
    enum PingMsg {
        Ping(u32),
        Pong(u32),
    }

    impl Message for PingMsg {
        const KINDS: &'static [&'static str] = &["ping", "pong"];

        fn kind_id(&self) -> usize {
            match self {
                PingMsg::Ping(_) => 0,
                PingMsg::Pong(_) => 1,
            }
        }
    }

    #[derive(Default)]
    struct PingNode {
        pongs: Vec<u32>,
        failures: Vec<Addr>,
        timers: Vec<u64>,
    }

    impl NodeLogic for PingNode {
        type Msg = PingMsg;
        type Out = u32;

        fn on_message(&mut self, from: Addr, msg: PingMsg, ctx: &mut Ctx<'_, PingMsg, u32>) {
            match msg {
                PingMsg::Ping(n) => ctx.send(from, PingMsg::Pong(n + 1)),
                PingMsg::Pong(n) => {
                    self.pongs.push(n);
                    ctx.emit(n);
                }
            }
        }

        fn on_send_failed(&mut self, to: Addr, _msg: PingMsg, _ctx: &mut Ctx<'_, PingMsg, u32>) {
            self.failures.push(to);
        }

        fn on_timer(&mut self, kind: u64, _ctx: &mut Ctx<'_, PingMsg, u32>) {
            self.timers.push(kind);
        }
    }

    fn engine(n: usize) -> Engine<PingNode, UniformRandom> {
        let topo = UniformRandom::new(n, 42, 1_000, 5_000);
        let nodes = (0..n).map(|_| PingNode::default()).collect();
        Engine::new(topo, nodes, 7)
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut e = engine(2);
        e.inject(0, 1, PingMsg::Ping(10), 0);
        e.run_until_quiet(100);
        assert_eq!(e.node(0).pongs, vec![11]);
        let outs = e.drain_outputs();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].1, 0);
        assert_eq!(outs[0].2, 11);
        // One ping + one pong accounted.
        assert_eq!(e.stats.kind_count("ping"), 1);
        assert_eq!(e.stats.kind_count("pong"), 1);
        assert_eq!(e.stats.total_msgs, 2);
    }

    #[test]
    fn latency_is_topology_delay() {
        let mut e = engine(2);
        let d = e.topology().delay_us(0, 1);
        e.inject(0, 1, PingMsg::Ping(0), 0);
        e.run_until_quiet(100);
        // Round trip = 2 * one-way delay.
        assert_eq!(e.now().as_micros(), 2 * d);
    }

    #[test]
    fn dead_node_triggers_send_failed() {
        let mut e = engine(2);
        e.kill(1);
        e.inject(0, 1, PingMsg::Ping(0), 0);
        e.run_until_quiet(100);
        assert_eq!(e.node(0).failures, vec![1]);
        assert!(e.node(0).pongs.is_empty());
    }

    #[test]
    fn revived_node_answers_again() {
        let mut e = engine(2);
        e.kill(1);
        e.revive(1);
        e.inject(0, 1, PingMsg::Ping(1), 0);
        e.run_until_quiet(100);
        assert_eq!(e.node(0).pongs, vec![2]);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut e = engine(1);
        e.arm_timer(0, 500, 2);
        e.arm_timer(0, 100, 1);
        e.run_until_quiet(10);
        assert_eq!(e.node(0).timers, vec![1, 2]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = engine(2);
        e.arm_timer(0, 1_000, 1);
        e.arm_timer(0, 10_000, 2);
        e.run_until(SimTime::from_micros(5_000));
        assert_eq!(e.node(0).timers, vec![1]);
        assert_eq!(e.now(), SimTime::from_micros(5_000));
        e.run_until_quiet(10);
        assert_eq!(e.node(0).timers, vec![1, 2]);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e = engine(8);
            for i in 0..8 {
                e.inject(i, (i + 1) % 8, PingMsg::Ping(i as u32), 0);
            }
            e.run_until_quiet(1_000);
            (e.now(), e.stats.total_msgs)
        };
        assert_eq!(run(), run());
    }

    /// A seeded ping flood under a given fault configuration, folded into
    /// one comparable tuple.
    fn fault_run(faults: FaultConfig, fault_seed: u64) -> (SimTime, u64, u64, u64, u64) {
        let mut e = engine(8);
        e.set_faults(faults, fault_seed);
        for round in 0..50u32 {
            for i in 0..8 {
                e.inject(i, (i + round as usize) % 8, PingMsg::Ping(round), 0);
            }
        }
        e.run_until_quiet(100_000);
        let pongs: u64 = (0..8).map(|a| e.node(a).pongs.len() as u64).sum();
        (
            e.now(),
            e.stats.total_msgs,
            e.stats.dropped,
            e.stats.duplicated,
            pongs,
        )
    }

    #[test]
    fn fault_sequences_replay_bit_identically() {
        let faults = FaultConfig {
            loss: 0.2,
            duplicate: 0.1,
            jitter_us: 700,
        };
        let a = fault_run(faults, 99);
        let b = fault_run(faults, 99);
        assert_eq!(a, b, "same fault seed must reproduce the same run");
        assert!(a.2 > 0, "a 20% loss flood must drop something");
        assert!(a.3 > 0, "a 10% duplicate flood must duplicate something");
    }

    #[test]
    fn fault_seed_changes_the_drop_pattern() {
        let faults = FaultConfig {
            loss: 0.2,
            duplicate: 0.0,
            jitter_us: 0,
        };
        let a = fault_run(faults, 1);
        let b = fault_run(faults, 2);
        assert_ne!(
            (a.0, a.2),
            (b.0, b.2),
            "different fault seeds should not produce identical runs"
        );
    }

    #[test]
    fn zero_fault_config_is_bit_identical_to_no_faults() {
        let clean = fault_run(FaultConfig::default(), 123);
        let mut e = engine(8);
        for round in 0..50u32 {
            for i in 0..8 {
                e.inject(i, (i + round as usize) % 8, PingMsg::Ping(round), 0);
            }
        }
        e.run_until_quiet(100_000);
        let pongs: u64 = (0..8).map(|a| e.node(a).pongs.len() as u64).sum();
        assert_eq!(
            clean,
            (e.now(), e.stats.total_msgs, 0, 0, pongs),
            "an all-zero fault config must not perturb the simulation"
        );
    }

    #[test]
    fn lost_messages_produce_no_send_failure() {
        let mut e = engine(2);
        e.set_faults(
            FaultConfig {
                loss: 1.0,
                duplicate: 0.0,
                jitter_us: 0,
            },
            7,
        );
        e.inject(0, 1, PingMsg::Ping(1), 0);
        e.run_until_quiet(100);
        assert!(e.node(0).failures.is_empty(), "loss must be silent");
        assert!(e.node(0).pongs.is_empty());
        assert_eq!(e.stats.dropped, 1);
        // Accounting still counts the send: the bytes hit the wire.
        assert_eq!(e.stats.total_msgs, 1);
    }

    #[test]
    fn self_sends_are_exempt_from_loss() {
        let mut e = engine(2);
        e.set_faults(
            FaultConfig {
                loss: 1.0,
                duplicate: 0.0,
                jitter_us: 0,
            },
            7,
        );
        // 0 → 0: the ping crosses no link, so it must arrive; the pong
        // back to self is likewise exempt.
        e.inject(0, 0, PingMsg::Ping(5), 0);
        e.run_until_quiet(100);
        assert_eq!(e.node(0).pongs, vec![6]);
        assert_eq!(e.stats.dropped, 0);
    }

    #[test]
    fn duplicates_deliver_twice() {
        let mut e = engine(2);
        e.set_faults(
            FaultConfig {
                loss: 0.0,
                duplicate: 1.0,
                jitter_us: 0,
            },
            7,
        );
        e.inject(0, 1, PingMsg::Ping(1), 0);
        e.run_until_quiet(100);
        // Ping doubled, each answered; pongs doubled again at node 0.
        assert_eq!(e.node(0).pongs, vec![2, 2, 2, 2]);
        assert_eq!(e.stats.duplicated, 3);
    }

    #[test]
    fn dead_destinations_are_counted() {
        let mut e = engine(3);
        e.kill(1);
        e.inject(0, 1, PingMsg::Ping(0), 0);
        e.inject(2, 1, PingMsg::Ping(0), 0);
        e.run_until_quiet(100);
        assert_eq!(e.stats.failed_sends, 2);
    }

    #[test]
    fn tracing_is_off_by_default_and_records_nothing() {
        let mut e = engine(4);
        for i in 0..4 {
            e.inject(i, (i + 1) % 4, PingMsg::Ping(1), 0);
        }
        e.run_until_quiet(1_000);
        assert!(!e.tracer().enabled());
        assert!(e.tracer().records().is_empty());
        assert_eq!(e.tracer().fingerprint(), past_trace::fnv1a(b""));
    }

    /// Enabling tracing must not perturb a faulty run (the tracer draws
    /// no randomness), and the same seed must reproduce the same trace.
    #[test]
    fn tracing_does_not_perturb_and_replays_bit_identically() {
        let faults = FaultConfig {
            loss: 0.2,
            duplicate: 0.1,
            jitter_us: 700,
        };
        let untraced = fault_run(faults, 99);
        let traced = |()| {
            let mut e = engine(8);
            e.set_faults(faults, 99);
            e.set_tracing(TraceConfig::full());
            for round in 0..50u32 {
                for i in 0..8 {
                    e.inject(i, (i + round as usize) % 8, PingMsg::Ping(round), 0);
                }
            }
            e.run_until_quiet(100_000);
            let pongs: u64 = (0..8).map(|a| e.node(a).pongs.len() as u64).sum();
            let tuple = (
                e.now(),
                e.stats.total_msgs,
                e.stats.dropped,
                e.stats.duplicated,
                pongs,
            );
            (tuple, e.tracer().fingerprint())
        };
        let (a_tuple, a_fp) = traced(());
        let (b_tuple, b_fp) = traced(());
        assert_eq!(a_tuple, untraced, "tracing must not change outcomes");
        assert_eq!(a_tuple, b_tuple);
        assert_eq!(a_fp, b_fp, "same seed must produce the same trace");
    }

    #[test]
    fn per_node_io_counters_track_traffic() {
        let mut e = engine(3);
        e.inject(0, 1, PingMsg::Ping(1), 0);
        e.run_until_quiet(100);
        // 0 sent the ping and received the pong; 1 the reverse.
        assert_eq!(e.node_io(0), crate::soa::NodeIo { sent: 1, recv: 1 });
        assert_eq!(e.node_io(1), crate::soa::NodeIo { sent: 1, recv: 1 });
        assert_eq!(e.node_io(2), crate::soa::NodeIo::default());
        // Lost sends still count as sent (the bytes hit the wire).
        e.set_faults(
            FaultConfig {
                loss: 1.0,
                duplicate: 0.0,
                jitter_us: 0,
            },
            7,
        );
        e.inject(2, 0, PingMsg::Ping(1), 0);
        e.run_until_quiet(100);
        assert_eq!(e.node_io(2), crate::soa::NodeIo { sent: 1, recv: 0 });
    }

    #[test]
    fn in_flight_arena_drains_with_the_queue() {
        let mut e = engine(4);
        for i in 0..4 {
            e.inject(i, (i + 1) % 4, PingMsg::Ping(1), 0);
        }
        assert_eq!(e.in_flight_msgs(), 4);
        e.run_until_quiet(1_000);
        assert_eq!(e.in_flight_msgs(), 0, "all payloads reclaimed");
        assert_eq!(e.pending(), 0);
    }

    /// The full engine, heap-backed vs. wheel-backed, through a faulty
    /// seeded run: every counter and the simulated clock must match bit
    /// for bit.
    #[test]
    fn reference_heap_engine_matches_wheel_engine() {
        let faults = FaultConfig {
            loss: 0.2,
            duplicate: 0.1,
            jitter_us: 700,
        };
        let run = |reference: bool| {
            let mut e = engine(8);
            if reference {
                e.use_reference_heap_queue();
            }
            e.set_faults(faults, 99);
            e.set_tracing(TraceConfig::full());
            for round in 0..50u32 {
                for i in 0..8 {
                    e.inject(i, (i + round as usize) % 8, PingMsg::Ping(round), 0);
                }
            }
            e.run_until_quiet(100_000);
            let pongs: u64 = (0..8).map(|a| e.node(a).pongs.len() as u64).sum();
            let io: Vec<_> = (0..8).map(|a| e.node_io(a)).collect();
            (
                e.now(),
                e.stats.total_msgs,
                e.stats.dropped,
                e.stats.duplicated,
                pongs,
                io,
                e.tracer().fingerprint(),
            )
        };
        assert_eq!(run(false), run(true), "wheel engine diverged from heap");
    }

    #[test]
    fn message_plane_events_are_recorded() {
        use past_trace::TraceEvent;
        let mut e = engine(3);
        e.set_tracing(TraceConfig::full());
        e.kill(2);
        e.inject(0, 1, PingMsg::Ping(1), 0);
        e.inject(0, 2, PingMsg::Ping(1), 0);
        e.run_until_quiet(100);
        let has = |f: &dyn Fn(&TraceEvent) -> bool| e.tracer().records().iter().any(|r| f(&r.ev));
        assert!(has(&|ev| matches!(
            ev,
            TraceEvent::MsgSend { from: 0, to: 1, .. }
        )));
        assert!(has(&|ev| matches!(ev, TraceEvent::MsgRecv { to: 1, .. })));
        assert!(has(&|ev| matches!(ev, TraceEvent::MsgFail { to: 2, .. })));
        // The per-kind metrics saw the same traffic.
        assert_eq!(
            e.tracer().metrics.failed_by_kind().next(),
            Some(("ping", 1))
        );
    }
}
