//! Backend abstraction over the sequential and sharded engines.
//!
//! The overlay adapters (`PastrySim`, `PastNetwork`) drive a simulation
//! through exactly the surface this module names: node access, liveness,
//! harness-side injection, fault/trace wiring, and the quiescence loop.
//! [`SimBackend`] captures that surface as a trait implemented by both
//! [`Engine`] and [`ShardedEngine`](crate::ShardedEngine), so an adapter
//! written once runs sequentially or on multi-core shards behind an
//! explicit [`Backend`] switch.
//!
//! The two backends are *not* bit-identical to each other: the sharded
//! engine gives every node private protocol/fault RNG streams, so RNG
//! draw order differs from the sequential engine's shared streams. The
//! determinism guarantee that survives the switch is shard-count
//! independence — a 1-shard run equals an N-shard run bit for bit — and
//! that is what the differential tests pin.

use std::fmt;

use crate::engine::{Engine, FaultConfig, NetStats, NodeLogic};
use crate::soa::NodeIo;
use crate::time::SimTime;
use crate::topology::{Addr, Topology};
use past_crypto::rng::Rng;
use past_trace::{SeriesConfig, TraceConfig, Tracer};

/// Which engine a simulation adapter drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The sequential [`Engine`]: one event at a time, globally ordered.
    Sequential,
    /// The [`ShardedEngine`](crate::ShardedEngine): `shards` workers
    /// advancing in conservative windows of `window_us` microseconds.
    Sharded { shards: usize, window_us: u64 },
}

/// Typed rejection raised at sim-build time when a shard window exceeds
/// the topology's minimum inter-node delay.
///
/// The sharded engine's safety condition is that no inter-node message
/// can arrive inside the window it was sent in; a window wider than the
/// minimum delay breaks it. Validating at construction turns what used
/// to be a mid-run worker panic into an error the caller can handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowTooWide {
    /// The requested window width, microseconds.
    pub window_us: u64,
    /// The topology's minimum inter-node delay, microseconds.
    pub min_delay_us: u64,
}

impl fmt::Display for WindowTooWide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard window ({} µs) exceeds the topology's minimum \
             inter-node delay ({} µs): a message could arrive inside \
             the window it was sent in, breaking sealed-batch delivery; \
             lower ShardConfig::window_us or raise the topology's delay \
             floor",
            self.window_us, self.min_delay_us
        )
    }
}

impl std::error::Error for WindowTooWide {}

/// The engine surface the overlay adapters are written against.
///
/// Every method mirrors an inherent method of the same name on
/// [`Engine`] and [`ShardedEngine`](crate::ShardedEngine); concrete
/// callers keep resolving to the inherent versions, so implementing
/// this trait costs existing call sites nothing.
pub trait SimBackend<N: NodeLogic> {
    /// The topology type the backend runs over.
    type Topo: Topology;

    /// Number of nodes.
    fn len(&self) -> usize;

    /// True if the backend has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current simulated time (globally agreed between runs).
    fn now(&self) -> SimTime;

    /// The topology (proximity oracle).
    fn topology(&self) -> &Self::Topo;

    /// Immutable access to a node's state.
    fn node(&self, a: Addr) -> &N;

    /// Mutable access to a node's state (harness-side setup only).
    fn node_mut(&mut self, a: Addr) -> &mut N;

    /// Per-node traffic counters.
    fn node_io(&self, a: Addr) -> NodeIo;

    /// Reserves storage for `extra` additional nodes.
    fn reserve_nodes(&mut self, extra: usize);

    /// Adds a node; returns its address. Addresses are assigned densely
    /// in push order and never move afterwards.
    fn push_node(&mut self, node: N) -> Addr;

    /// Liveness of a node.
    fn is_alive(&self, a: Addr) -> bool;

    /// Marks a node dead (between runs).
    fn kill(&mut self, a: Addr);

    /// Marks a node live again (between runs).
    fn revive(&mut self, a: Addr);

    /// Membership epoch: bumped on every push/kill/revive.
    fn epoch(&self) -> u64;

    /// Addresses of all live nodes, ascending.
    fn live_addrs(&self) -> Vec<Addr>;

    /// The harness-side RNG. On the sequential engine this is the
    /// shared protocol RNG; on the sharded engine it is a dedicated
    /// stream seeded identically, so harness draw sequences (node ids,
    /// sampled contacts) match across backends as long as no protocol
    /// events interleave.
    fn rng(&mut self) -> &mut Rng;

    /// Enables (or reconfigures) link-fault injection.
    fn set_faults(&mut self, faults: FaultConfig, seed: u64);

    /// The fault configuration in force.
    fn faults(&self) -> FaultConfig;

    /// Selects which trace event classes are recorded.
    fn set_tracing(&mut self, cfg: TraceConfig);

    /// Attaches a flight recorder (sim-time windowed series) to the
    /// backend's trace sinks. Sampling is observation only — no
    /// randomness, no event-order changes — and the merged series a
    /// sharded backend produces is shard-count invariant.
    fn set_series(&mut self, cfg: SeriesConfig);

    /// The harness-side trace sink.
    fn tracer(&self) -> &Tracer;

    /// Mutable harness-side trace sink (op lifecycle records).
    fn tracer_mut(&mut self) -> &mut Tracer;

    /// Takes the full trace out of the backend for post-run analysis.
    /// On the sharded engine this merges every shard's records into the
    /// harness trace in canonical order; always prefer it over
    /// [`tracer`](SimBackend::tracer) for end-of-run metrics.
    fn take_tracer(&mut self) -> Tracer;

    /// Injects a message from `from` to `to` (between runs).
    fn inject(&mut self, from: Addr, to: Addr, msg: N::Msg, extra_us: u64);

    /// Arms a timer on a node (between runs).
    fn arm_timer(&mut self, at: Addr, delay_us: u64, kind: u64);

    /// Runs until quiescence or `max_events`; returns events executed.
    fn run_until_quiet(&mut self, max_events: u64) -> u64;

    /// Number of pending events.
    fn pending(&self) -> usize;

    /// Drains observations emitted by node logic since the last call.
    fn drain_outputs(&mut self) -> Vec<(SimTime, Addr, N::Out)>;

    /// Merged traffic counters. `&mut self` so sharded backends can
    /// amortize the merge into a reusable cache instead of allocating.
    fn stats(&mut self) -> &NetStats;
}

impl<N: NodeLogic, T: Topology> SimBackend<N> for Engine<N, T> {
    type Topo = T;

    fn len(&self) -> usize {
        Engine::len(self)
    }

    fn now(&self) -> SimTime {
        Engine::now(self)
    }

    fn topology(&self) -> &T {
        Engine::topology(self)
    }

    fn node(&self, a: Addr) -> &N {
        Engine::node(self, a)
    }

    fn node_mut(&mut self, a: Addr) -> &mut N {
        Engine::node_mut(self, a)
    }

    fn node_io(&self, a: Addr) -> NodeIo {
        Engine::node_io(self, a)
    }

    fn reserve_nodes(&mut self, extra: usize) {
        Engine::reserve_nodes(self, extra)
    }

    fn push_node(&mut self, node: N) -> Addr {
        Engine::push_node(self, node)
    }

    fn is_alive(&self, a: Addr) -> bool {
        Engine::is_alive(self, a)
    }

    fn kill(&mut self, a: Addr) {
        Engine::kill(self, a)
    }

    fn revive(&mut self, a: Addr) {
        Engine::revive(self, a)
    }

    fn epoch(&self) -> u64 {
        Engine::epoch(self)
    }

    fn live_addrs(&self) -> Vec<Addr> {
        Engine::live_addrs(self)
    }

    fn rng(&mut self) -> &mut Rng {
        Engine::rng(self)
    }

    fn set_faults(&mut self, faults: FaultConfig, seed: u64) {
        Engine::set_faults(self, faults, seed)
    }

    fn faults(&self) -> FaultConfig {
        Engine::faults(self)
    }

    fn set_tracing(&mut self, cfg: TraceConfig) {
        Engine::set_tracing(self, cfg)
    }

    fn set_series(&mut self, cfg: SeriesConfig) {
        Engine::set_series(self, cfg)
    }

    fn tracer(&self) -> &Tracer {
        Engine::tracer(self)
    }

    fn tracer_mut(&mut self) -> &mut Tracer {
        Engine::tracer_mut(self)
    }

    fn take_tracer(&mut self) -> Tracer {
        Engine::take_tracer(self)
    }

    fn inject(&mut self, from: Addr, to: Addr, msg: N::Msg, extra_us: u64) {
        Engine::inject(self, from, to, msg, extra_us)
    }

    fn arm_timer(&mut self, at: Addr, delay_us: u64, kind: u64) {
        Engine::arm_timer(self, at, delay_us, kind)
    }

    fn run_until_quiet(&mut self, max_events: u64) -> u64 {
        Engine::run_until_quiet(self, max_events)
    }

    fn pending(&self) -> usize {
        Engine::pending(self)
    }

    fn drain_outputs(&mut self) -> Vec<(SimTime, Addr, N::Out)> {
        Engine::drain_outputs(self)
    }

    fn stats(&mut self) -> &NetStats {
        &self.stats
    }
}
