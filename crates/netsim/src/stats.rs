//! Summary statistics for experiment reporting.

/// Summary of a sample: mean, percentiles, extrema, coefficient of
/// variation.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Standard deviation (population).
    pub stddev: f64,
}

impl Summary {
    /// Coefficient of variation (stddev / mean); 0 for a zero mean.
    pub fn cov(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Computes a [`Summary`] of `values`. Returns `None` for an empty sample.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    // total_cmp: a total order even on NaN (rule D4), so the sort can
    // neither panic nor depend on input order.
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let pct = |p: f64| -> f64 {
        let idx = ((p / 100.0) * (n as f64 - 1.0)).round() as usize;
        sorted[idx.min(n - 1)]
    };
    Some(Summary {
        n,
        mean,
        p50: pct(50.0),
        p95: pct(95.0),
        p99: pct(99.0),
        min: sorted[0],
        max: sorted[n - 1],
        stddev: var.sqrt(),
    })
}

/// A fixed-bucket histogram over `[0, max)` used for hop/size distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    bucket_width: f64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `bucket_width <= 0`.
    pub fn new(buckets: usize, bucket_width: f64) -> Histogram {
        assert!(buckets > 0 && bucket_width > 0.0);
        Histogram {
            buckets: vec![0; buckets],
            bucket_width,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        if value < 0.0 {
            self.overflow += 1;
            return;
        }
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Fraction of observations in bucket `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.buckets[i] as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations outside the bucket range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.stddev - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn summary_single_value() {
        let s = summarize(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.cov(), 0.0);
    }

    #[test]
    fn percentiles_unsorted_input() {
        let s = summarize(&[5.0, 1.0, 4.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 5.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(4, 1.0);
        for v in [0.5, 1.5, 1.9, 3.0, 10.0, -1.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        assert!((h.fraction(1) - 2.0 / 6.0).abs() < 1e-12);
    }
}
