//! Summary statistics for experiment reporting.

/// Summary of a sample: mean, percentiles, extrema, coefficient of
/// variation.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Standard deviation (population).
    pub stddev: f64,
}

impl Summary {
    /// Coefficient of variation (stddev / mean); 0 for a zero mean.
    pub fn cov(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Computes a [`Summary`] of `values`. Returns `None` for an empty sample.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    // total_cmp: a total order even on NaN (rule D4), so the sort can
    // neither panic nor depend on input order.
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    // Nearest-rank percentile: the p-th percentile is the ⌈p·n/100⌉-th
    // smallest sample (1-based), computed in integer arithmetic. The
    // previous float form `((p/100)·(n-1)).round()` silently mixed
    // nearest-rank with linear-interpolation index semantics (mis-
    // picking on small n) and loses integer precision above 2^53
    // samples; u128 keeps the product exact for any in-memory n.
    let pct = |p: u32| -> f64 {
        let rank = (n as u128 * u128::from(p)).div_ceil(100).max(1);
        sorted[(rank - 1) as usize]
    };
    Some(Summary {
        n,
        mean,
        p50: pct(50),
        p95: pct(95),
        p99: pct(99),
        min: sorted[0],
        max: sorted[n - 1],
        stddev: var.sqrt(),
    })
}

/// A fixed-bucket histogram over `[0, max)` used for hop/size distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    bucket_width: f64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `bucket_width <= 0`.
    pub fn new(buckets: usize, bucket_width: f64) -> Histogram {
        assert!(buckets > 0 && bucket_width > 0.0);
        Histogram {
            buckets: vec![0; buckets],
            bucket_width,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        if value < 0.0 {
            self.overflow += 1;
            return;
        }
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Fraction of observations in bucket `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.buckets[i] as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations outside the bucket range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if any observation missed the bucket range, i.e. reported
    /// upper percentiles are clamped to the range top.
    pub fn saturated(&self) -> bool {
        self.overflow > 0
    }

    /// Nearest-rank percentile over the bucketed sample: the lower
    /// edge of the bucket holding the `⌈p/100 · count⌉`-th smallest
    /// observation (`None` on an empty histogram).
    ///
    /// The `overflow` count participates in the rank walk as a final
    /// unbounded bucket — without it, p95/p99 silently under-report
    /// as soon as any sample exceeds the range. When the rank lands
    /// in overflow the range top (`buckets · width`) is returned and
    /// [`saturated`](Histogram::saturated) is the caller's cue that
    /// the true value lies beyond it.
    pub fn percentile(&self, p: u32) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = u128::from(p.clamp(1, 100));
        let rank = (u128::from(self.count) * p).div_ceil(100).max(1);
        let mut cum = 0u128;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += u128::from(c);
            if cum >= rank {
                return Some(i as f64 * self.bucket_width);
            }
        }
        Some(self.buckets.len() as f64 * self.bucket_width)
    }

    /// Serializes the histogram (percentiles, saturation, raw counts)
    /// as one JSON object; the output validates under
    /// [`past_trace::json::validate`].
    pub fn to_json(&self) -> String {
        past_trace::json::Obj::new()
            .num("bucket_width", self.bucket_width)
            .int("count", self.count)
            .int("overflow", self.overflow)
            .bool("saturated", self.saturated())
            .num("p50", self.percentile(50).unwrap_or(0.0))
            .num("p95", self.percentile(95).unwrap_or(0.0))
            .num("p99", self.percentile(99).unwrap_or(0.0))
            .raw(
                "buckets",
                &past_trace::json::array(self.buckets.iter().map(|c| c.to_string())),
            )
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.stddev - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn summary_single_value() {
        let s = summarize(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.cov(), 0.0);
    }

    #[test]
    fn percentiles_unsorted_input() {
        let s = summarize(&[5.0, 1.0, 4.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 5.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(4, 1.0);
        for v in [0.5, 1.5, 1.9, 3.0, 10.0, -1.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        assert!((h.fraction(1) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank_exact_on_small_n() {
        // 10 samples 1..=10: nearest-rank p-th percentile of this
        // sample is ⌈p/10⌉, with no interpolation.
        let v: Vec<f64> = (1..=10).map(f64::from).collect();
        let s = summarize(&v).unwrap();
        assert_eq!(s.p50, 5.0);
        assert_eq!(s.p95, 10.0);
        assert_eq!(s.p99, 10.0);
        // Two samples: p50 must be the first, not the midpoint.
        let s = summarize(&[1.0, 9.0]).unwrap();
        assert_eq!(s.p50, 1.0);
    }

    #[test]
    fn histogram_percentile_counts_overflow() {
        let mut h = Histogram::new(10, 1.0);
        // 90 in-range samples and 10 beyond the range: p50 must rank
        // across all 100, and p99 land in the overflow bucket.
        for i in 0..90 {
            h.record(f64::from(i % 10));
        }
        for _ in 0..10 {
            h.record(1_000.0);
        }
        assert_eq!(h.percentile(50), Some(5.0));
        assert_eq!(h.percentile(99), Some(10.0));
        assert!(h.saturated());
        // Without overflow samples the same ranks stay in range.
        let mut h = Histogram::new(10, 1.0);
        for i in 0..100 {
            h.record(f64::from(i % 10));
        }
        assert_eq!(h.percentile(99), Some(9.0));
        assert!(!h.saturated());
        assert_eq!(Histogram::new(4, 1.0).percentile(50), None);
    }

    #[test]
    fn histogram_json_surfaces_saturation() {
        let mut h = Histogram::new(2, 1.0);
        h.record(0.5);
        h.record(99.0);
        let doc = h.to_json();
        past_trace::json::validate(&doc).expect("histogram JSON must validate");
        assert!(doc.contains("\"saturated\": true"));
        assert!(doc.contains("\"overflow\": 1"));
    }
}
