//! Simulated time.
//!
//! The simulator counts microseconds in a `u64`. Using integer ticks (rather
//! than `f64` seconds) keeps the event queue totally ordered and the runs
//! bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant in simulated time (microseconds since start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Returns the instant as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    /// Advances by `rhs` microseconds (saturating).
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub for SimTime {
    type Output = u64;

    /// Returns the number of microseconds between two instants.
    ///
    /// Saturates at zero if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
        assert_eq!((t + 500).as_micros(), 2_500);
        assert_eq!(t + 500 - t, 500);
        assert_eq!(SimTime::ZERO - t, 0, "subtraction saturates");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
    }
}
