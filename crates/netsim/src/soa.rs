//! Struct-of-arrays node storage for the engine.
//!
//! At 100k+ nodes the engine's per-event working set is what decides
//! throughput. The hot loop touches, for every event: the destination's
//! liveness, its logic state, and two traffic counters. Keeping those
//! as parallel arrays instead of one array of fat structs means the
//! liveness check reads a bit from a 1-bit-per-node bitset (a 1M-node
//! overlay's entire liveness fits in 122 KiB — L2-resident), and the
//! counters live in their own dense arrays instead of padding every
//! node record.

use crate::topology::Addr;

/// Per-node send/receive counters, returned by [`NodeSlots::io`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeIo {
    /// Messages this node sent (including ones later lost or failed).
    pub sent: u64,
    /// Messages this node received and processed.
    pub recv: u64,
}

/// Struct-of-arrays storage: node logic, liveness bitset, IO counters.
pub struct NodeSlots<N> {
    logic: Vec<N>,
    /// Liveness, 64 nodes per word.
    alive: Vec<u64>,
    sent: Vec<u64>,
    recv: Vec<u64>,
}

impl<N> Default for NodeSlots<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> NodeSlots<N> {
    /// Empty storage.
    pub fn new() -> NodeSlots<N> {
        NodeSlots {
            logic: Vec::new(),
            alive: Vec::new(),
            sent: Vec::new(),
            recv: Vec::new(),
        }
    }

    /// Empty storage with room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> NodeSlots<N> {
        NodeSlots {
            logic: Vec::with_capacity(cap),
            alive: Vec::with_capacity(cap.div_ceil(64)),
            sent: Vec::with_capacity(cap),
            recv: Vec::with_capacity(cap),
        }
    }

    /// Builds storage from existing node logic, all alive.
    pub fn from_logic(logic: Vec<N>) -> NodeSlots<N> {
        let n = logic.len();
        let mut slots = NodeSlots {
            logic,
            alive: vec![!0u64; n.div_ceil(64)],
            sent: vec![0; n],
            recv: vec![0; n],
        };
        // Clear the tail bits beyond `n` so popcount-style scans and
        // `live_addrs` never see phantom nodes.
        if n % 64 != 0 {
            if let Some(last) = slots.alive.last_mut() {
                *last &= (1u64 << (n % 64)) - 1;
            }
        }
        slots
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.logic.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.logic.is_empty()
    }

    /// Appends a node (alive); returns its address.
    pub fn push(&mut self, node: N) -> Addr {
        let a = self.logic.len();
        self.logic.push(node);
        if a % 64 == 0 {
            self.alive.push(0);
        }
        self.alive[a / 64] |= 1 << (a % 64);
        self.sent.push(0);
        self.recv.push(0);
        a
    }

    /// Reserves room for `extra` more nodes.
    pub fn reserve(&mut self, extra: usize) {
        self.logic.reserve(extra);
        self.sent.reserve(extra);
        self.recv.reserve(extra);
    }

    /// Liveness of node `a`.
    #[inline]
    pub fn is_alive(&self, a: Addr) -> bool {
        (self.alive[a / 64] >> (a % 64)) & 1 != 0
    }

    /// Sets node `a` dead or alive.
    pub fn set_alive(&mut self, a: Addr, alive: bool) {
        assert!(a < self.logic.len(), "no node at address {a}");
        let (w, b) = (a / 64, 1u64 << (a % 64));
        if alive {
            self.alive[w] |= b;
        } else {
            self.alive[w] &= !b;
        }
    }

    /// The logic state of node `a`.
    #[inline]
    pub fn logic(&self, a: Addr) -> &N {
        &self.logic[a]
    }

    /// Mutable logic state of node `a`.
    #[inline]
    pub fn logic_mut(&mut self, a: Addr) -> &mut N {
        &mut self.logic[a]
    }

    /// Bumps node `a`'s sent counter.
    #[inline]
    pub fn note_sent(&mut self, a: Addr) {
        self.sent[a] += 1;
    }

    /// Bumps node `a`'s received counter.
    #[inline]
    pub fn note_recv(&mut self, a: Addr) {
        self.recv[a] += 1;
    }

    /// Per-node IO counters.
    pub fn io(&self, a: Addr) -> NodeIo {
        NodeIo {
            sent: self.sent[a],
            recv: self.recv[a],
        }
    }

    /// Addresses of all live nodes, ascending.
    pub fn live_addrs(&self) -> Vec<Addr> {
        let mut out = Vec::new();
        for (w, &bits) in self.alive.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_liveness() {
        let mut s = NodeSlots::new();
        for i in 0..130 {
            assert_eq!(s.push(i), i);
        }
        assert!(s.is_alive(0) && s.is_alive(64) && s.is_alive(129));
        s.set_alive(64, false);
        assert!(!s.is_alive(64));
        assert!(s.is_alive(63) && s.is_alive(65), "neighbors untouched");
        s.set_alive(64, true);
        assert!(s.is_alive(64));
    }

    #[test]
    fn live_addrs_matches_bitset() {
        let mut s = NodeSlots::from_logic((0..200).collect::<Vec<_>>());
        for a in [0usize, 63, 64, 127, 199] {
            s.set_alive(a, false);
        }
        let live = s.live_addrs();
        assert_eq!(live.len(), 195);
        for a in [0usize, 63, 64, 127, 199] {
            assert!(!live.contains(&a));
        }
        assert!(live.windows(2).all(|w| w[0] < w[1]), "ascending");
    }

    #[test]
    fn from_logic_has_no_phantom_tail() {
        let s = NodeSlots::from_logic(vec![(); 70]);
        assert_eq!(s.live_addrs().len(), 70);
    }

    #[test]
    fn io_counters() {
        let mut s = NodeSlots::from_logic(vec![(); 3]);
        s.note_sent(1);
        s.note_sent(1);
        s.note_recv(2);
        assert_eq!(s.io(1), NodeIo { sent: 2, recv: 0 });
        assert_eq!(s.io(2), NodeIo { sent: 0, recv: 1 });
        assert_eq!(s.io(0), NodeIo::default());
    }
}
