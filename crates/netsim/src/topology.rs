//! Network topologies and the proximity metric.
//!
//! The PAST paper defines network proximity as "a scalar metric, such as the
//! number of IP hops, geographic distance, or a combination". Every topology
//! here exposes a one-way delay in microseconds between any two node
//! addresses; Pastry uses the same number as its proximity metric.
//!
//! The sphere model ([`Sphere`]) is the one used for the locality
//! experiments in the companion Pastry paper: nodes are uniform random
//! points on a sphere and the distance between two nodes is their
//! great-circle distance.

use past_crypto::rng::Rng;
use std::cell::RefCell;

/// A node address: an index into the topology.
pub type Addr = usize;

/// A direct-mapped memo of pairwise delay queries.
///
/// Routing and maintenance ask for the same few (node, neighbor) pairs
/// over and over, and the geometric topologies pay a trig/sqrt per call.
/// Each slot holds the last (pair, delay) that hashed to it; a hit
/// returns exactly the value the geometry produced earlier, so this is
/// purely an evaluation cache — simulation outcomes are bit-identical
/// with or without it.
#[derive(Clone)]
struct DelayMemo {
    slots: RefCell<Vec<(u64, u64)>>,
}

const MEMO_SLOTS: usize = 1 << 15;
/// Sentinel for an empty slot. Never collides with a real key: packed
/// keys are `(lo << 32) | hi` with `lo < hi`, so all-ones would require
/// `lo == hi`, and equal addresses short-circuit before the memo.
const MEMO_EMPTY: u64 = u64::MAX;

impl DelayMemo {
    fn new() -> DelayMemo {
        DelayMemo {
            slots: RefCell::new(vec![(MEMO_EMPTY, 0); MEMO_SLOTS]),
        }
    }

    /// Looks up the unordered pair `(a, b)`, `a != b`, computing and
    /// caching the delay on a miss.
    fn get_or(&self, a: Addr, b: Addr, compute: impl FnOnce() -> u64) -> u64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let key = ((lo as u64) << 32) | hi as u64;
        let slot = (mix64(key) as usize) & (MEMO_SLOTS - 1);
        {
            let slots = self.slots.borrow();
            let entry = slots[slot];
            if entry.0 == key {
                return entry.1;
            }
        }
        let d = compute();
        self.slots.borrow_mut()[slot] = (key, d);
        d
    }
}

/// A source of pairwise one-way delays (the proximity metric).
pub trait Topology {
    /// Number of node slots in the topology.
    fn len(&self) -> usize;

    /// One-way delay between `a` and `b` in microseconds.
    ///
    /// Must be symmetric and zero iff `a == b`.
    fn delay_us(&self, a: Addr, b: Addr) -> u64;

    /// A lower bound on the delay between any two *distinct* nodes.
    ///
    /// The sharded engine's window invariant ("no inter-node message
    /// arrives inside the window it was sent in") is checked against
    /// this bound at build time: `ShardConfig::window_us` must not
    /// exceed it. The conservative default is 1 µs — always sound,
    /// since distinct nodes are at non-zero delay, but it forces
    /// one-microsecond windows; topologies with a real floor override
    /// it.
    fn min_delay_us(&self) -> u64 {
        1
    }

    /// Returns true if the topology has no node slots.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Uniform random points on a unit sphere; delay = great-circle distance.
///
/// `max_delay_us` is the delay between antipodal points (default model:
/// 120 ms round-the-world one-way path).
#[derive(Clone)]
pub struct Sphere {
    points: Vec<[f64; 3]>,
    max_delay_us: u64,
    /// Minimum inter-node delay: geometric delays clamp up to this.
    /// Zero (the default) leaves the geometry untouched.
    floor_us: u64,
    memo: DelayMemo,
}

impl Sphere {
    /// Samples `n` uniform points on the sphere.
    pub fn new(n: usize, seed: u64) -> Sphere {
        Sphere::with_max_delay(n, seed, 120_000)
    }

    /// Samples `n` points whose pairwise delays are clamped up to
    /// `floor_us`: the layout is identical to [`Sphere::new`] with the
    /// same seed, but no two distinct nodes are closer than the floor.
    ///
    /// At large `n` the closest sphere pair is only microseconds apart,
    /// which would force the sharded engine into degenerate 1 µs
    /// windows; a floor models the reality that even nearby hosts pay a
    /// LAN round-trip, and lets [`Topology::min_delay_us`] promise a
    /// usable window bound.
    pub fn with_delay_floor(n: usize, seed: u64, floor_us: u64) -> Sphere {
        let mut s = Sphere::new(n, seed);
        s.floor_us = floor_us;
        s
    }

    /// Samples `n` points with a custom antipodal delay.
    pub fn with_max_delay(n: usize, seed: u64, max_delay_us: u64) -> Sphere {
        let mut rng = Rng::seed_from_u64(seed ^ 0x5048_4552_u64);
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            // Marsaglia: uniform on the sphere via normalized Gaussians
            // approximated with rejection sampling on the cube.
            loop {
                let x: f64 = rng.random_range(-1.0..=1.0);
                let y: f64 = rng.random_range(-1.0..=1.0);
                let z: f64 = rng.random_range(-1.0..=1.0);
                let norm2 = x * x + y * y + z * z;
                if norm2 > 1e-9 && norm2 <= 1.0 {
                    let norm = norm2.sqrt();
                    points.push([x / norm, y / norm, z / norm]);
                    break;
                }
            }
        }
        Sphere {
            points,
            max_delay_us,
            floor_us: 0,
            memo: DelayMemo::new(),
        }
    }
}

impl Topology for Sphere {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn delay_us(&self, a: Addr, b: Addr) -> u64 {
        if a == b {
            return 0;
        }
        self.memo.get_or(a, b, || {
            let pa = self.points[a];
            let pb = self.points[b];
            let dot = (pa[0] * pb[0] + pa[1] * pb[1] + pa[2] * pb[2]).clamp(-1.0, 1.0);
            let angle = dot.acos(); // in [0, pi]
            let frac = angle / std::f64::consts::PI;
            // Add 1 to keep distinct nodes at non-zero delay.
            ((frac * self.max_delay_us as f64) as u64 + 1).max(self.floor_us)
        })
    }

    fn min_delay_us(&self) -> u64 {
        self.floor_us.max(1)
    }
}

/// Uniform random points on the unit square; delay = Euclidean distance.
#[derive(Clone)]
pub struct Plane {
    points: Vec<[f64; 2]>,
    scale_us: f64,
    memo: DelayMemo,
}

impl Plane {
    /// Samples `n` points; `diag_delay_us` is the corner-to-corner delay.
    pub fn new(n: usize, seed: u64, diag_delay_us: u64) -> Plane {
        let mut rng = Rng::seed_from_u64(seed ^ 0x504c_414e_u64);
        let points = (0..n)
            .map(|_| [rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)])
            .collect();
        Plane {
            points,
            scale_us: diag_delay_us as f64 / std::f64::consts::SQRT_2,
            memo: DelayMemo::new(),
        }
    }
}

impl Topology for Plane {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn delay_us(&self, a: Addr, b: Addr) -> u64 {
        if a == b {
            return 0;
        }
        self.memo.get_or(a, b, || {
            let pa = self.points[a];
            let pb = self.points[b];
            let d = ((pa[0] - pb[0]).powi(2) + (pa[1] - pb[1]).powi(2)).sqrt();
            (d * self.scale_us) as u64 + 1
        })
    }
}

/// A hierarchical transit-stub-like topology.
///
/// Nodes attach to stub domains; stub domains attach to transit routers
/// placed on the unit square. The delay between two nodes decomposes into
/// LAN hop + stub uplink + transit-to-transit distance, mimicking the
/// Georgia-Tech transit-stub graphs used in 2001-era overlay evaluations.
#[derive(Clone)]
pub struct TransitStub {
    /// (transit index, stub index within transit) per node.
    attachment: Vec<(usize, usize)>,
    /// Positions of transit routers on the unit square.
    transit_pos: Vec<[f64; 2]>,
    lan_us: u64,
    stub_us: u64,
    transit_scale_us: f64,
}

impl TransitStub {
    /// Builds a topology with `n` nodes spread over `transits` transit
    /// domains of `stubs_per_transit` stub domains each.
    pub fn new(n: usize, seed: u64, transits: usize, stubs_per_transit: usize) -> TransitStub {
        assert!(transits > 0 && stubs_per_transit > 0);
        let mut rng = Rng::seed_from_u64(seed ^ 0x5453_5442_u64);
        let transit_pos = (0..transits)
            .map(|_| [rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)])
            .collect();
        let attachment = (0..n)
            .map(|_| {
                (
                    rng.random_range(0..transits),
                    rng.random_range(0..stubs_per_transit),
                )
            })
            .collect();
        TransitStub {
            attachment,
            transit_pos,
            lan_us: 500,
            stub_us: 4_000,
            transit_scale_us: 40_000.0,
        }
    }
}

impl Topology for TransitStub {
    fn len(&self) -> usize {
        self.attachment.len()
    }

    fn delay_us(&self, a: Addr, b: Addr) -> u64 {
        if a == b {
            return 0;
        }
        let (ta, sa) = self.attachment[a];
        let (tb, sb) = self.attachment[b];
        if ta == tb && sa == sb {
            return self.lan_us;
        }
        if ta == tb {
            return self.lan_us + 2 * self.stub_us;
        }
        let pa = self.transit_pos[ta];
        let pb = self.transit_pos[tb];
        let d = ((pa[0] - pb[0]).powi(2) + (pa[1] - pb[1]).powi(2)).sqrt();
        self.lan_us + 2 * self.stub_us + (d * self.transit_scale_us) as u64 + 1
    }

    fn min_delay_us(&self) -> u64 {
        // Same-LAN pairs are the cheapest class.
        self.lan_us
    }
}

/// Symmetric pseudo-random pairwise delays in `[min_us, max_us]`.
///
/// Delays are derived from a mixing function of the unordered pair, so no
/// O(n²) matrix is stored. This serves as the "no geometry" control: any
/// locality an overlay achieves on it is accidental.
#[derive(Clone)]
pub struct UniformRandom {
    n: usize,
    seed: u64,
    min_us: u64,
    max_us: u64,
}

impl UniformRandom {
    /// Creates `n` slots with delays uniform in `[min_us, max_us]`.
    pub fn new(n: usize, seed: u64, min_us: u64, max_us: u64) -> UniformRandom {
        assert!(min_us > 0 && max_us >= min_us);
        UniformRandom {
            n,
            seed,
            min_us,
            max_us,
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Topology for UniformRandom {
    fn len(&self) -> usize {
        self.n
    }

    fn delay_us(&self, a: Addr, b: Addr) -> u64 {
        if a == b {
            return 0;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let h = mix64(self.seed ^ mix64((lo as u64) << 32 | hi as u64));
        self.min_us + h % (self.max_us - self.min_us + 1)
    }

    fn min_delay_us(&self) -> u64 {
        self.min_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_metric<T: Topology>(t: &T) {
        let n = t.len();
        for a in 0..n.min(12) {
            assert_eq!(t.delay_us(a, a), 0, "self-delay must be zero");
            for b in 0..n.min(12) {
                assert_eq!(t.delay_us(a, b), t.delay_us(b, a), "symmetry");
                if a != b {
                    assert!(t.delay_us(a, b) > 0, "distinct nodes at distance > 0");
                }
            }
        }
    }

    #[test]
    fn sphere_is_a_metric_like_delay() {
        check_metric(&Sphere::new(50, 1));
    }

    #[test]
    fn sphere_bounded_by_antipodal() {
        let s = Sphere::with_max_delay(100, 7, 120_000);
        for a in 0..100 {
            for b in 0..100 {
                assert!(s.delay_us(a, b) <= 120_001);
            }
        }
    }

    #[test]
    fn plane_is_symmetric() {
        check_metric(&Plane::new(50, 2, 60_000));
    }

    #[test]
    fn transit_stub_hierarchy_orders_delays() {
        let t = TransitStub::new(200, 3, 4, 4);
        check_metric(&t);
        // Same-LAN pairs (if any) must be the cheapest class.
        let mut same_lan = None;
        let mut cross_transit = None;
        for a in 0..200 {
            for b in (a + 1)..200 {
                let (ta, sa) = t.attachment[a];
                let (tb, sb) = t.attachment[b];
                if ta == tb && sa == sb {
                    same_lan = Some(t.delay_us(a, b));
                } else if ta != tb {
                    cross_transit = Some(t.delay_us(a, b));
                }
            }
        }
        if let (Some(l), Some(x)) = (same_lan, cross_transit) {
            assert!(l < x, "LAN delay {l} should undercut cross-transit {x}");
        }
    }

    #[test]
    fn uniform_random_in_bounds_and_deterministic() {
        let u = UniformRandom::new(64, 9, 1_000, 50_000);
        check_metric(&u);
        for a in 0..64 {
            for b in 0..64 {
                if a != b {
                    let d = u.delay_us(a, b);
                    assert!((1_000..=50_000).contains(&d));
                }
            }
        }
        let u2 = UniformRandom::new(64, 9, 1_000, 50_000);
        assert_eq!(u.delay_us(3, 40), u2.delay_us(3, 40));
    }

    #[test]
    fn sphere_delay_floor_clamps_without_moving_points() {
        let plain = Sphere::new(80, 5);
        let floored = Sphere::with_delay_floor(80, 5, 3_000);
        assert_eq!(floored.min_delay_us(), 3_000);
        for a in 0..80 {
            assert_eq!(floored.delay_us(a, a), 0, "self-delay stays zero");
            for b in 0..80 {
                if a == b {
                    continue;
                }
                let raw = plain.delay_us(a, b);
                let clamped = floored.delay_us(a, b);
                assert_eq!(clamped, raw.max(3_000), "floor must clamp, not remap");
            }
        }
        check_metric(&floored);
    }

    #[test]
    fn min_delay_bounds_hold() {
        // Default (conservative) bound for geometry without a floor.
        assert_eq!(Sphere::new(10, 1).min_delay_us(), 1);
        assert_eq!(Plane::new(10, 1, 60_000).min_delay_us(), 1);
        let u = UniformRandom::new(32, 9, 1_500, 9_000);
        assert_eq!(u.min_delay_us(), 1_500);
        let t = TransitStub::new(64, 3, 4, 4);
        assert_eq!(t.min_delay_us(), 500);
        // The promise itself: every distinct pair respects the bound.
        for a in 0..32 {
            for b in 0..32 {
                if a != b {
                    assert!(u.delay_us(a, b) >= u.min_delay_us());
                }
            }
        }
        for a in 0..64 {
            for b in 0..64 {
                if a != b {
                    assert!(t.delay_us(a, b) >= t.min_delay_us());
                }
            }
        }
    }

    #[test]
    fn seeds_change_sphere_layout() {
        let a = Sphere::new(10, 1);
        let b = Sphere::new(10, 2);
        let same = (0..10)
            .flat_map(|x| (0..10).map(move |y| (x, y)))
            .all(|(x, y)| a.delay_us(x, y) == b.delay_us(x, y));
        assert!(!same);
    }
}
