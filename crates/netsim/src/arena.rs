//! A slab arena for in-flight message payloads.
//!
//! The engine's event queue used to carry each event's message inline,
//! so every push moved a full `Msg` (for Pastry, a fat enum) through
//! the queue and every queue growth re-copied them all. The arena
//! decouples payload storage from scheduling: messages park in a slab
//! slot, the queue carries a fixed-size record holding the slot index,
//! and freed slots are recycled through a free list — after warm-up,
//! the steady-state event loop allocates nothing per event.
//!
//! Indices are `u32`: four billion simultaneously in-flight messages
//! is beyond any simulation this engine can hold in memory anyway, and
//! halving the index width keeps event records small.

/// Sentinel index for "no payload" (timer events).
pub const NO_MSG: u32 = u32::MAX;

/// A recycling slab of `T` addressed by dense `u32` handles.
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Arena<T> {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty arena with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Arena<T> {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Parks a value; returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if the arena would exceed `u32::MAX - 1` slots.
    pub fn insert(&mut self, value: T) -> u32 {
        self.live += 1;
        if let Some(i) = self.free.pop() {
            debug_assert!(self.slots[i as usize].is_none());
            self.slots[i as usize] = Some(value);
            return i;
        }
        let i = self.slots.len();
        assert!(i < NO_MSG as usize, "arena exhausted u32 index space");
        self.slots.push(Some(value));
        i as u32
    }

    /// Borrows the value at `handle` without freeing the slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn get(&self, handle: u32) -> &T {
        self.slots[handle as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("arena slot {handle} is vacant"))
    }

    /// Removes and returns the value at `handle`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant (a double-take is an engine bug).
    pub fn take(&mut self, handle: u32) -> T {
        let v = self.slots[handle as usize]
            .take()
            .unwrap_or_else(|| panic!("arena slot {handle} taken twice"));
        self.free.push(handle);
        self.live -= 1;
        v
    }

    /// Number of live (parked) values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut a = Arena::new();
        let h1 = a.insert("x");
        let h2 = a.insert("y");
        assert_eq!(a.len(), 2);
        assert_eq!(a.take(h1), "x");
        assert_eq!(a.take(h2), "y");
        assert!(a.is_empty());
    }

    #[test]
    fn slots_are_recycled() {
        let mut a = Arena::new();
        let h1 = a.insert(1u32);
        assert_eq!(a.take(h1), 1);
        let h2 = a.insert(2u32);
        assert_eq!(h2, h1, "freed slot must be reused");
        assert_eq!(a.capacity_slots(), 1, "no growth while recycling");
        assert_eq!(a.take(h2), 2);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let mut a = Arena::new();
        let h = a.insert(7u8);
        let _ = a.take(h);
        let _ = a.take(h);
    }
}
