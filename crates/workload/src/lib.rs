//! Synthetic workload generators for the PAST experiments.
//!
//! The authors evaluated PAST with proprietary web-proxy and filesystem
//! traces; this crate substitutes parametric equivalents (documented in
//! DESIGN.md): heavy-tailed file sizes ([`sizes::FileSizes`]), banded node
//! capacities ([`sizes::Capacities`]), Zipf lookup popularity
//! ([`popularity::Zipf`]), churn schedules ([`churn`]), and deterministic
//! file names/contents ([`names`]).

pub mod churn;
pub mod names;
pub mod popularity;
pub mod sizes;

pub use churn::{exp_lifetime_us, schedule, ChurnEvent};
pub use names::{file_contents, file_name, owner_seed};
pub use popularity::Zipf;
pub use sizes::{Capacities, FileSizes};
