//! Lookup-popularity distributions (Zipf) for the caching experiments.

use past_crypto::rng::Rng;

/// A Zipf sampler over ranks `0..n` with exponent `s`.
///
/// Built with an explicit cumulative table (n is at most a few hundred
/// thousand in our experiments), giving exact sampling.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` items with exponent `s` (s = 1.0 is the
    /// classic web-trace fit).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero items");
        assert!(s >= 0.0, "negative exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler covers no items (never: `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::rng::Rng;

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Zipf(1.0): item 0 should get ~1/H(100) ~ 19% of traffic.
        let frac0 = counts[0] as f64 / 50_000.0;
        assert!((0.12..0.28).contains(&frac0), "frac0 = {frac0}");
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(50, 0.0);
        let mut rng = Rng::seed_from_u64(2);
        let mut counts = vec![0u32; 50];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "should be near-uniform: {min}..{max}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 1.2);
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_panics() {
        Zipf::new(0, 1.0);
    }
}
