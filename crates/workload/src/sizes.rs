//! File-size and node-capacity distributions.
//!
//! The SOSP'01 storage-management evaluation drove PAST with file sizes
//! from a web-proxy trace combined with a filesystem trace; both are
//! heavy-tailed with a lognormal body. We substitute a lognormal body +
//! Pareto tail mixture (the standard parametric fit for such traces) and
//! node capacities with the bounded multiplicative spread the paper
//! reports (it rejects nodes more than ~10x from the average capacity
//! band).

use past_crypto::rng::Rng;

/// A heavy-tailed file-size distribution: lognormal body with a Pareto
/// tail.
#[derive(Clone, Debug)]
pub struct FileSizes {
    /// Mean of ln(size) for the body.
    pub mu: f64,
    /// Std-dev of ln(size) for the body.
    pub sigma: f64,
    /// Probability a sample comes from the Pareto tail.
    pub tail_prob: f64,
    /// Pareto shape (alpha); smaller = heavier tail.
    pub tail_alpha: f64,
    /// Pareto scale (minimum tail value), bytes.
    pub tail_min: f64,
    /// Hard cap on sizes, bytes.
    pub max_bytes: u64,
}

impl Default for FileSizes {
    fn default() -> FileSizes {
        // Body median ~8 KiB, heavy tail starting at 256 KiB: shapes the
        // "failed insertions are heavily biased towards large files"
        // behaviour the paper reports.
        FileSizes {
            mu: 9.0,
            sigma: 1.6,
            tail_prob: 0.03,
            tail_alpha: 1.1,
            tail_min: 262_144.0,
            max_bytes: 64 << 20,
        }
    }
}

impl FileSizes {
    /// Samples one file size in bytes (at least 1).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let raw = if rng.random_bool(self.tail_prob) {
            // Pareto via inverse transform.
            let u: f64 = rng.random_range(f64::EPSILON..1.0);
            self.tail_min / u.powf(1.0 / self.tail_alpha)
        } else {
            // Lognormal via Box-Muller.
            let u1: f64 = rng.random_range(f64::EPSILON..1.0);
            let u2: f64 = rng.random_range(0.0..std::f64::consts::TAU);
            let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
            (self.mu + self.sigma * z).exp()
        };
        (raw.max(1.0) as u64).min(self.max_bytes)
    }

    /// Samples `n` sizes.
    pub fn sample_n(&self, n: usize, rng: &mut Rng) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Node storage-capacity distribution: uniform in a multiplicative band
/// around a mean, as in the SOSP'01 evaluation (nodes with "advertised
/// capacity out of a factor-of-10 band are rejected").
#[derive(Clone, Debug)]
pub struct Capacities {
    /// Mean capacity in bytes.
    pub mean_bytes: u64,
    /// Multiplicative spread: capacities are in `[mean/spread, mean*spread]`.
    pub spread: f64,
}

impl Default for Capacities {
    fn default() -> Capacities {
        Capacities {
            mean_bytes: 512 << 20,
            spread: 3.2, // ~10x end-to-end band
        }
    }
}

impl Capacities {
    /// Samples one node capacity in bytes.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let lo = (self.mean_bytes as f64 / self.spread).max(1.0);
        let hi = self.mean_bytes as f64 * self.spread;
        // Log-uniform in the band keeps the mean near `mean_bytes`.
        let x = rng.random_range(lo.ln()..hi.ln()).exp();
        x as u64
    }

    /// Samples `n` capacities.
    pub fn sample_n(&self, n: usize, rng: &mut Rng) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::rng::Rng;

    #[test]
    fn sizes_are_positive_and_capped() {
        let d = FileSizes::default();
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!(s >= 1);
            assert!(s <= d.max_bytes);
        }
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let d = FileSizes::default();
        let mut rng = Rng::seed_from_u64(2);
        let samples = d.sample_n(20_000, &mut rng);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        assert!(
            mean > 2.0 * median,
            "heavy tail: mean {mean} should dwarf median {median}"
        );
    }

    #[test]
    fn capacities_stay_in_band() {
        let c = Capacities::default();
        let mut rng = Rng::seed_from_u64(3);
        let lo = (c.mean_bytes as f64 / c.spread) as u64;
        let hi = (c.mean_bytes as f64 * c.spread) as u64;
        for _ in 0..10_000 {
            let v = c.sample(&mut rng);
            assert!(
                v >= lo.saturating_sub(1) && v <= hi + 1,
                "capacity {v} out of band"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = FileSizes::default();
        let a = d.sample_n(100, &mut Rng::seed_from_u64(7));
        let b = d.sample_n(100, &mut Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
