//! Churn schedules: node failure and arrival processes.

use past_crypto::rng::Rng;

/// One churn event in a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Kill the node with this index (into the live set at schedule time).
    Fail(usize),
    /// Add a brand-new node.
    Join,
}

/// Generates an interleaved fail/join schedule of `steps` events with the
/// given failure probability (the rest are joins).
pub fn schedule(steps: usize, fail_prob: f64, live_hint: usize, rng: &mut Rng) -> Vec<ChurnEvent> {
    assert!((0.0..=1.0).contains(&fail_prob));
    (0..steps)
        .map(|_| {
            if rng.random_bool(fail_prob) {
                ChurnEvent::Fail(rng.random_range(0..live_hint.max(1)))
            } else {
                ChurnEvent::Join
            }
        })
        .collect()
}

/// Exponentially distributed session lifetimes with the given mean, in
/// microseconds (for time-driven churn).
pub fn exp_lifetime_us(mean_us: u64, rng: &mut Rng) -> u64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    (-(u.ln()) * mean_us as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::rng::Rng;

    #[test]
    fn schedule_mixes_events() {
        let mut rng = Rng::seed_from_u64(1);
        let s = schedule(1000, 0.3, 50, &mut rng);
        let fails = s
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Fail(_)))
            .count();
        assert!((200..400).contains(&fails), "fails = {fails}");
        for e in &s {
            if let ChurnEvent::Fail(i) = e {
                assert!(*i < 50);
            }
        }
    }

    #[test]
    fn all_joins_when_prob_zero() {
        let mut rng = Rng::seed_from_u64(2);
        let s = schedule(100, 0.0, 10, &mut rng);
        assert!(s.iter().all(|e| *e == ChurnEvent::Join));
    }

    #[test]
    fn exp_lifetimes_have_right_mean() {
        let mut rng = Rng::seed_from_u64(3);
        let mean: f64 = (0..20_000)
            .map(|_| exp_lifetime_us(1_000_000, &mut rng) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((800_000.0..1_200_000.0).contains(&mean), "mean = {mean}");
    }
}
