//! Deterministic file-name and owner generators.

/// Deterministic file name for workload item `i` of `owner`.
pub fn file_name(owner: usize, i: usize) -> String {
    format!("user{owner:05}/archive/file-{i:07}.dat")
}

/// Deterministic owner seed bytes for user `i` (feeds key generation).
pub fn owner_seed(i: usize) -> Vec<u8> {
    format!("past-user-{i:08}").into_bytes()
}

/// Deterministic synthetic file contents of `len` bytes for `(owner, i)`.
///
/// The content is a cheap xorshift stream so that content hashes differ
/// per file without storing real data.
pub fn file_contents(owner: usize, i: usize, len: usize) -> Vec<u8> {
    let mut state = (owner as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64)
        | 1;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_deterministic() {
        assert_eq!(file_name(1, 2), file_name(1, 2));
        assert_ne!(file_name(1, 2), file_name(1, 3));
        assert_ne!(file_name(1, 2), file_name(2, 2));
    }

    #[test]
    fn contents_deterministic_and_sized() {
        let a = file_contents(3, 4, 100);
        let b = file_contents(3, 4, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_ne!(a, file_contents(3, 5, 100));
        assert!(file_contents(0, 0, 0).is_empty());
    }
}
