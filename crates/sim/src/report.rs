//! Aligned text tables for experiment output.
//!
//! Every experiment renders its result as an [`ExpTable`]; the bench
//! binaries print these, regenerating the paper's quantitative claims.

use std::fmt;

/// A titled table with a header row and data rows.
#[derive(Clone, Debug, Default)]
pub struct ExpTable {
    /// Table title (e.g. "E1: routing hops vs network size").
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes (paper expectation, substitutions).
    pub notes: Vec<String>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> ExpTable {
        ExpTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a byte count human-readably.
pub fn bytes(v: u64) -> String {
    const KB: u64 = 1 << 10;
    const MB: u64 = 1 << 20;
    const GB: u64 = 1 << 30;
    if v >= GB {
        format!("{:.2}GiB", v as f64 / GB as f64)
    } else if v >= MB {
        format!("{:.2}MiB", v as f64 / MB as f64)
    } else if v >= KB {
        format!("{:.1}KiB", v as f64 / KB as f64)
    } else {
        format!("{v}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ExpTable::new("demo", &["n", "value"]);
        t.row(vec!["10".into(), "1.5".into()]);
        t.row(vec!["10000".into(), "12.25".into()]);
        t.note("expectation: grows");
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: expectation: grows"));
        // Right-aligned columns: the short value is padded.
        assert!(s.contains("   10"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = ExpTable::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.1234), "0.123");
        assert_eq!(pct(0.957), "95.7%");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.0KiB");
        assert_eq!(bytes(3 << 20), "3.00MiB");
        assert_eq!(bytes(5 << 30), "5.00GiB");
    }
}
