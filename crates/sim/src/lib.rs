//! Experiment harness reproducing every quantitative claim of the PAST
//! paper.
//!
//! Each submodule of [`experiments`] implements one experiment (E1–E13 in
//! DESIGN.md): a `Params` struct with bench-scale defaults and a
//! `Params::paper()` variant, a `run` function returning a typed result,
//! and a `table()` renderer producing the row/series the paper reports.
//! The `past-bench` crate drives these from criterion benches and from
//! paper-scale binaries.

pub mod common;
pub mod experiments;
pub mod report;

pub use report::ExpTable;
