//! E13 — security mechanisms under fault injection.
//!
//! Paper claims (§2.1): the file certificate lets a storing node verify
//! "that the contents of the file arriving at the storing node have not
//! been corrupted en route" and "that the fileId is authentic"; store
//! receipts "prevent a malicious node from suppressing the creation of k
//! diverse replicas"; and random audits "expose nodes that cheat".

use crate::common::past_network;
use crate::report::ExpTable;
use past_core::{BuildMode, ContentRef, PastConfig, PastMsg, PastOut};
use past_pastry::Config;

/// Parameters for E13.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Trials per attack scenario.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 80,
            trials: 15,
            seed: 162,
        }
    }
}

impl Params {
    /// Paper-scale run.
    pub fn paper() -> Params {
        Params {
            n: 300,
            trials: 40,
            ..Params::default()
        }
    }
}

/// One attack scenario.
#[derive(Clone, Debug)]
pub struct Row {
    /// Scenario label.
    pub scenario: String,
    /// Attacks attempted.
    pub attempted: usize,
    /// Attacks detected or prevented.
    pub defeated: usize,
}

/// E13 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// One row per scenario.
    pub rows: Vec<Row>,
}

fn fresh_net(p: &Params, seed_offset: u64) -> past_core::PastNetwork<past_netsim::Sphere> {
    past_network(
        p.n,
        p.seed + seed_offset,
        Config {
            leaf_len: 8,
            neighborhood_len: 8,
            ..Config::default()
        },
        PastConfig {
            default_k: 3,
            t_pri: 1.0,
            t_div: 0.5,
            ..PastConfig::default()
        },
        1 << 30,
        u64::MAX / 2,
        BuildMode::ProtocolJoins,
    )
}

/// Runs E13.
pub fn run(p: &Params) -> Result {
    let mut rows = Vec::new();

    // (a) Corrupting intermediates: every non-client node flips content
    // bits in transit; storing nodes must reject the mismatch.
    {
        let mut net = fresh_net(p, 0);
        for a in 1..p.n {
            net.sim.engine.node_mut(a).app.corrupts_content = true;
        }
        let mut attempted = 0;
        let mut defeated = 0;
        for i in 0..p.trials {
            let name = format!("corrupt-{i}");
            let content = ContentRef::synthetic(0, &name, 1 << 16);
            net.insert(0, &name, content, 3).expect("quota");
            let events = net.run();
            attempted += 1;
            let mut stored_corrupt = false;
            let mut failed = false;
            for (_, _, e) in &events {
                match e {
                    PastOut::InsertOk { file_id, .. } => {
                        // Zero-hop insert (client was root); check every
                        // stored copy matches the original content hash.
                        for h in net.replica_holders(file_id) {
                            let st = net.sim.engine.node(h).app.store.get(file_id);
                            if let Some(f) = st {
                                if f.cert.content_hash != content.hash {
                                    stored_corrupt = true;
                                }
                            }
                        }
                    }
                    PastOut::InsertFailed { .. } => failed = true,
                    _ => {}
                }
            }
            if failed || !stored_corrupt {
                defeated += 1;
            }
        }
        rows.push(Row {
            scenario: "en-route corruption rejected".into(),
            attempted,
            defeated,
        });
    }

    // (b) Replica suppression: a malicious root acks only its own copy;
    // the client detects the missing receipts (pending insert undecided).
    {
        let mut net = fresh_net(p, 1);
        for a in 0..p.n {
            net.sim.engine.node_mut(a).app.suppresses_replicas = true;
        }
        let mut attempted = 0;
        let mut defeated = 0;
        for i in 0..p.trials {
            let client = {
                let r = net.sim.engine.rng();
                r.random_range(0..p.n)
            };
            let name = format!("suppress-{i}");
            let content = ContentRef::synthetic(client, &name, 1 << 16);
            net.insert(client, &name, content, 3).expect("quota");
            let events = net.run();
            attempted += 1;
            let concluded_ok = events
                .iter()
                .any(|(_, _, e)| matches!(e, PastOut::InsertOk { .. }));
            let pending = net.sim.engine.node(client).app.pending_insert_count();
            // Defense: the client never receives k receipts, so the
            // insert stays visibly unconfirmed.
            if !concluded_ok && pending > 0 {
                defeated += 1;
            }
        }
        rows.push(Row {
            scenario: "replica suppression detected via receipts".into(),
            attempted,
            defeated,
        });
    }

    // (c) Forged fileId: a client tampers the fileId in a signed
    // certificate (to target a chosen region); every node must refuse it.
    {
        let mut net = fresh_net(p, 2);
        let mut attempted = 0;
        let mut defeated = 0;
        for i in 0..p.trials {
            let name = format!("forged-{i}");
            let content = ContentRef::synthetic(3, &name, 1 << 16);
            let now = net.sim.engine.now().as_micros();
            let (_, mut cert) = net
                .sim
                .engine
                .node_mut(3)
                .app
                .begin_insert(&name, content, 3, now, past_netsim::OpId::NONE)
                .expect("quota");
            // Forge: point the fileId at an arbitrary target region.
            let mut raw = *cert.file_id.as_bytes();
            raw[0] ^= 0x55;
            raw[1] ^= 0xaa;
            cert.file_id = past_core::FileId(past_crypto::Digest160(raw));
            let fid = cert.file_id;
            net.sim.route(
                3,
                fid.routing_id(),
                PastMsg::Insert {
                    cert,
                    content,
                    client: 3,
                    op: past_netsim::OpId::NONE,
                },
            );
            net.run();
            attempted += 1;
            if net.replica_holders(&fid).is_empty() {
                defeated += 1;
            }
        }
        rows.push(Row {
            scenario: "forged fileId refused (bad signature)".into(),
            attempted,
            defeated,
        });
    }

    // (d) Storage cheats: nodes that ack without storing are exposed by
    // random audits.
    {
        let mut net = fresh_net(p, 3);
        let mut attempted = 0;
        let mut defeated = 0;
        for i in 0..p.trials {
            let name = format!("audit-{i}");
            let content = ContentRef::synthetic(1, &name, 1 << 16);
            net.insert(1, &name, content, 3).expect("quota");
            let events = net.run();
            let fid = events.iter().find_map(|(_, _, e)| match e {
                PastOut::InsertOk { file_id, .. } => Some(*file_id),
                _ => None,
            });
            let Some(fid) = fid else { continue };
            let holders = net.replica_holders(&fid);
            let cheat = holders[0];
            net.sim.engine.node_mut(cheat).app.drops_stored_files = true;
            net.sim.engine.node_mut(cheat).app.store.remove(&fid);
            attempted += 1;
            let nonce = 1_000 + i as u64;
            net.audit(2, cheat, fid, content.hash, nonce);
            let events = net.run();
            if events.iter().any(
                |(_, _, e)| matches!(e, PastOut::AuditFailed { prover, .. } if *prover == cheat),
            ) {
                defeated += 1;
            }
        }
        rows.push(Row {
            scenario: "storage cheat exposed by audit".into(),
            attempted,
            defeated,
        });
    }

    Result { rows }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E13: security mechanisms under fault injection",
            &["scenario", "attempted", "defeated"],
        );
        for r in &self.rows {
            t.row(vec![
                r.scenario.clone(),
                r.attempted.to_string(),
                r.defeated.to_string(),
            ]);
        }
        t.note("paper (2.1): certificates, receipts and audits defeat these attacks");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_is_defeated() {
        let p = Params {
            n: 50,
            trials: 6,
            ..Params::default()
        };
        let r = run(&p);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert!(row.attempted > 0, "{}: no attempts", row.scenario);
            assert_eq!(
                row.defeated, row.attempted,
                "{}: {}/{} defeated",
                row.scenario, row.defeated, row.attempted
            );
        }
    }
}
