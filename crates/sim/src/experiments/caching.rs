//! E8 — effect of caching on fetch distance and query load.
//!
//! Paper claim (§2.3): "Any PAST node can cache additional copies of a
//! file, which achieves query load balancing, high throughput for popular
//! files, and reduces fetch distance and network traffic."

use crate::common::past_network;
use crate::report::{f2, pct, ExpTable};
use past_core::{BuildMode, ContentRef, PastConfig, PastOut};
use past_pastry::Config;
use past_workload::Zipf;
use std::collections::HashMap;

/// Parameters for E8.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Files inserted.
    pub files: usize,
    /// Zipf lookups issued.
    pub lookups: usize,
    /// Zipf exponent.
    pub zipf_s: f64,
    /// File size (bytes).
    pub file_size: u64,
    /// Node capacity (bytes).
    pub capacity: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 250,
            files: 120,
            lookups: 1_500,
            zipf_s: 1.0,
            file_size: 256 << 10,
            capacity: 64 << 20,
            seed: 112,
        }
    }
}

impl Params {
    /// Paper-scale run.
    pub fn paper() -> Params {
        Params {
            n: 1_000,
            files: 400,
            lookups: 10_000,
            ..Params::default()
        }
    }
}

/// One variant (cache on / off).
#[derive(Clone, Debug)]
pub struct Row {
    /// Variant label.
    pub variant: String,
    /// Mean client-perceived fetch latency (ms).
    pub mean_latency_ms: f64,
    /// Fraction of lookups answered from a cache.
    pub cache_hit_rate: f64,
    /// Coefficient of variation of per-node serve counts (query load
    /// balance; lower is flatter).
    pub load_cov: f64,
    /// Lookup success rate.
    pub success: f64,
}

/// E8 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// Cache-on and cache-off rows.
    pub rows: Vec<Row>,
}

fn run_variant(p: &Params, label: &str, cache: bool) -> Row {
    let pastry_cfg = Config {
        leaf_len: 16,
        neighborhood_len: 16,
        ..Config::default()
    };
    let past_cfg = PastConfig {
        default_k: 3,
        crypto_checks: false,
        cache_enabled: cache,
        cache_on_insert_path: cache,
        cache_push: 2,
        t_pri: 1.0,
        t_div: 0.5,
        ..PastConfig::default()
    };
    let mut net = past_network(
        p.n,
        p.seed,
        pastry_cfg,
        past_cfg,
        p.capacity,
        u64::MAX / 2,
        BuildMode::ProtocolJoins,
    );

    // Insert the corpus.
    let mut fids = Vec::new();
    for i in 0..p.files {
        let name = format!("e8-{i}");
        let content = ContentRef::synthetic(9, &name, p.file_size);
        let client = {
            let r = net.sim.engine.rng();
            r.random_range(0..p.n)
        };
        net.insert(client, &name, content, 3).expect("quota");
        for (_, _, e) in net.run() {
            if let PastOut::InsertOk { file_id, .. } = e {
                fids.push(file_id);
            }
        }
    }
    assert!(!fids.is_empty());

    // Zipf-popular lookups from random clients.
    let zipf = Zipf::new(fids.len(), p.zipf_s);
    let mut latencies = Vec::new();
    let mut hits = 0usize;
    let mut succ = 0usize;
    let mut serve_counts: HashMap<usize, u64> = HashMap::new();
    for _ in 0..p.lookups {
        let (fid, client) = {
            let r = net.sim.engine.rng();
            let fid = fids[zipf.sample(r)];
            (fid, r.random_range(0..p.n))
        };
        net.lookup(client, fid);
        for (at, _, e) in net.run() {
            if let PastOut::LookupOk {
                server,
                from_cache,
                started_us,
                ..
            } = e
            {
                succ += 1;
                latencies.push((at.as_micros() - started_us) as f64 / 1_000.0);
                if from_cache {
                    hits += 1;
                }
                *serve_counts.entry(server).or_insert(0) += 1;
            }
        }
    }
    let mean_latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    // Load CoV over all nodes (nodes that served nothing count as zero).
    let mut loads: Vec<f64> = (0..p.n)
        .map(|a| *serve_counts.get(&a).unwrap_or(&0) as f64)
        .collect();
    let mean_load = loads.iter().sum::<f64>() / loads.len() as f64;
    let var = loads
        .iter()
        .map(|l| (l - mean_load) * (l - mean_load))
        .sum::<f64>()
        / loads.len() as f64;
    loads.sort_by(f64::total_cmp);
    Row {
        variant: label.to_string(),
        mean_latency_ms: mean_latency,
        cache_hit_rate: hits as f64 / succ.max(1) as f64,
        load_cov: if mean_load > 0.0 {
            var.sqrt() / mean_load
        } else {
            0.0
        },
        success: succ as f64 / p.lookups as f64,
    }
}

/// Runs E8 (cache on vs off).
pub fn run(p: &Params) -> Result {
    Result {
        rows: vec![
            run_variant(p, "caching on", true),
            run_variant(p, "caching off", false),
        ],
    }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E8: caching (GreedyDual-Size) under Zipf lookups",
            &[
                "variant",
                "mean fetch (ms)",
                "cache hits",
                "load CoV",
                "success",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.variant.clone(),
                f2(r.mean_latency_ms),
                pct(r.cache_hit_rate),
                f2(r.load_cov),
                pct(r.success),
            ]);
        }
        t.note("paper: caching balances query load and reduces fetch distance");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_reduces_latency_and_spreads_load() {
        let p = Params {
            n: 120,
            files: 50,
            lookups: 500,
            ..Params::default()
        };
        let r = run(&p);
        let on = &r.rows[0];
        let off = &r.rows[1];
        assert!(on.success > 0.99 && off.success > 0.99);
        assert!(off.cache_hit_rate == 0.0, "cache off must not hit");
        assert!(on.cache_hit_rate > 0.2, "hit rate {}", on.cache_hit_rate);
        assert!(
            on.mean_latency_ms < off.mean_latency_ms,
            "caching should cut latency: {} vs {}",
            on.mean_latency_ms,
            off.mean_latency_ms
        );
        assert!(
            on.load_cov < off.load_cov,
            "caching should flatten load: {} vs {}",
            on.load_cov,
            off.load_cov
        );
    }
}
