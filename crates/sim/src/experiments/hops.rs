//! E1 — routing hops vs network size.
//!
//! Paper claim: "Pastry can route to the numerically closest node to a
//! given fileId in less than ⌈log_2^b N⌉ steps on average (b is a
//! configuration parameter with typical value 4)."

use crate::common::pastry_static;
use crate::report::{f2, ExpTable};
use past_netsim::summarize;
use past_pastry::{Config, Id};

/// Parameters for E1.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Lookups per size.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Pastry configuration.
    pub cfg: Config,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            sizes: vec![256, 1_024, 4_096],
            trials: 1_000,
            seed: 42,
            cfg: Config::default(),
        }
    }
}

impl Params {
    /// Paper-scale sweep (the companion paper simulates up to 10^5 nodes).
    pub fn paper() -> Params {
        Params {
            sizes: vec![1_000, 4_000, 16_000, 64_000, 100_000],
            trials: 2_000,
            ..Params::default()
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Network size.
    pub n: usize,
    /// Mean hops.
    pub mean_hops: f64,
    /// Maximum observed hops.
    pub max_hops: f64,
    /// The paper's bound ⌈log_2^b N⌉.
    pub bound: f64,
    /// Fraction of routes delivered at the true numerically-closest node.
    pub correct: f64,
    /// Probability of each hop count 0..=7 (the companion paper's
    /// hop-distribution figure).
    pub hop_dist: [f64; 8],
}

/// E1 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// One row per network size.
    pub rows: Vec<Row>,
}

/// Runs E1.
pub fn run(p: &Params) -> Result {
    let mut rows = Vec::new();
    for (i, &n) in p.sizes.iter().enumerate() {
        let seed = p.seed + i as u64;
        let mut sim = pastry_static(n, seed, p.cfg, 2);
        let mut hops = Vec::with_capacity(p.trials);
        let mut correct = 0usize;
        for _ in 0..p.trials {
            let key = Id(sim.engine.rng().random());
            let from = sim.engine.rng().random_range(0..n);
            sim.route(from, key, ());
            let recs = sim.drain_deliveries();
            let rec = recs[0];
            hops.push(rec.hops as f64);
            if Some(rec.delivered_at) == sim.true_root(&key).map(|h| h.addr) {
                correct += 1;
            }
        }
        let s = summarize(&hops).expect("non-empty");
        let mut hop_dist = [0f64; 8];
        for &h in &hops {
            let idx = (h as usize).min(7);
            hop_dist[idx] += 1.0;
        }
        for v in &mut hop_dist {
            *v /= hops.len() as f64;
        }
        rows.push(Row {
            n,
            mean_hops: s.mean,
            max_hops: s.max,
            bound: (n as f64).log(p.cfg.cols() as f64).ceil(),
            correct: correct as f64 / p.trials as f64,
            hop_dist,
        });
    }
    Result { rows }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E1: routing hops vs network size (b=4)",
            &[
                "N",
                "mean hops",
                "max hops",
                "ceil(log16 N)",
                "correct root",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                f2(r.mean_hops),
                f2(r.max_hops),
                f2(r.bound),
                f2(r.correct),
            ]);
        }
        t.note("paper: average hops below ceil(log_2^b N), growing logarithmically");
        t
    }

    /// Renders the hop-count distribution (the companion paper's
    /// probability-vs-hops figure).
    pub fn distribution_table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E1b: hop-count distribution",
            &["N", "0", "1", "2", "3", "4", "5", "6", "7+"],
        );
        for r in &self.rows {
            let mut cells = vec![r.n.to_string()];
            cells.extend(r.hop_dist.iter().map(|v| format!("{:.3}", v)));
            t.row(cells);
        }
        t.note("probability mass concentrates at ~log16 N, as in the companion figure");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_stay_under_bound_and_grow() {
        let p = Params {
            sizes: vec![128, 1024],
            trials: 300,
            ..Params::default()
        };
        let r = run(&p);
        for row in &r.rows {
            assert!(
                row.mean_hops < row.bound,
                "n={}: {} !< {}",
                row.n,
                row.mean_hops,
                row.bound
            );
            assert!(row.correct > 0.999, "all routes must reach the root");
        }
        assert!(r.rows[1].mean_hops > r.rows[0].mean_hops);
        let table = r.table();
        assert_eq!(table.rows.len(), 2);
        // The hop distribution is a probability mass function whose mode
        // sits near log16 N.
        for row in &r.rows {
            let total: f64 = row.hop_dist.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "distribution sums to 1");
        }
        let mode_small = r.rows[0]
            .hop_dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("non-empty")
            .0;
        assert!(mode_small <= 2, "mode {mode_small} too high for n=128");
        let dist_table = r.distribution_table();
        assert_eq!(dist_table.rows.len(), 2);
    }
}
