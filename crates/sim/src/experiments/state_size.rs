//! E2 — per-node routing-state size.
//!
//! Paper claim: "The tables required in each PAST node have only
//! (2^b − 1) × ⌈log_2^b N⌉ + 2l entries."

use crate::common::pastry_static;
use crate::report::{f2, ExpTable};
use past_pastry::Config;

/// Parameters for E2.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
    /// Pastry configuration.
    pub cfg: Config,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            sizes: vec![256, 1_024, 4_096],
            seed: 52,
            cfg: Config::default(),
        }
    }
}

impl Params {
    /// Paper-scale sweep.
    pub fn paper() -> Params {
        Params {
            sizes: vec![1_000, 4_000, 16_000, 64_000, 100_000],
            ..Params::default()
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Network size.
    pub n: usize,
    /// Mean populated routing-table entries per node.
    pub table_entries: f64,
    /// Mean populated routing-table rows per node.
    pub table_rows: f64,
    /// Mean leaf-set members per node.
    pub leaf: f64,
    /// The paper's bound `(2^b − 1)·⌈log_2^b N⌉ + 2l`.
    pub bound: f64,
}

/// E2 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// One row per size.
    pub rows: Vec<Row>,
    /// The leaf-set parameter used.
    pub leaf_len: usize,
}

/// Runs E2.
pub fn run(p: &Params) -> Result {
    let mut rows = Vec::new();
    for (i, &n) in p.sizes.iter().enumerate() {
        let sim = pastry_static(n, p.seed + i as u64, p.cfg, 1);
        let mut entries = 0usize;
        let mut trows = 0usize;
        let mut leaf = 0usize;
        for a in 0..n {
            let st = &sim.engine.node(a).state;
            entries += st.table.populated();
            trows += st.table.populated_rows();
            leaf += st.leaf.len();
        }
        let levels = (n as f64).log(p.cfg.cols() as f64).ceil();
        rows.push(Row {
            n,
            table_entries: entries as f64 / n as f64,
            table_rows: trows as f64 / n as f64,
            leaf: leaf as f64 / n as f64,
            bound: (p.cfg.cols() as f64 - 1.0) * levels + 2.0 * (p.cfg.leaf_len as f64 / 2.0),
        });
    }
    Result {
        rows,
        leaf_len: p.cfg.leaf_len,
    }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            format!("E2: per-node state (l={})", self.leaf_len),
            &["N", "table entries", "table rows", "leaf", "paper bound"],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                f2(r.table_entries),
                f2(r.table_rows),
                f2(r.leaf),
                f2(r.bound),
            ]);
        }
        t.note("paper: (2^b - 1) * ceil(log_2^b N) + 2l entries");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_stays_below_bound_and_grows_slowly() {
        let p = Params {
            sizes: vec![256, 4_096],
            ..Params::default()
        };
        let r = run(&p);
        for row in &r.rows {
            let total = row.table_entries + row.leaf;
            assert!(
                total <= row.bound,
                "n={}: state {total} exceeds bound {}",
                row.n,
                row.bound
            );
            assert_eq!(row.leaf, p.cfg.leaf_len as f64, "leaf sets full");
        }
        // 16x nodes adds about one routing-table row, not 16x entries.
        let ratio = r.rows[1].table_entries / r.rows[0].table_entries;
        assert!(ratio < 3.0, "table growth too fast: {ratio}");
        assert!(r.rows[1].table_rows > r.rows[0].table_rows);
    }
}
