//! E6 — protocol cost of node arrival.
//!
//! Paper claim: "after a node failure or the arrival of a new node, the
//! invariants in all affected routing tables can be restored by
//! exchanging O(log_2^b N) messages."

use crate::common::ids;
use crate::report::{f2, ExpTable};
use past_pastry::{Config, NullApp};

/// Parameters for E6.
#[derive(Clone, Debug)]
pub struct Params {
    /// Base network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Joins measured per size.
    pub joins: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Pastry configuration.
    pub cfg: Config,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            sizes: vec![256, 1_024, 4_096],
            joins: 20,
            seed: 92,
            cfg: Config::default(),
        }
    }
}

impl Params {
    /// Paper-scale sweep.
    pub fn paper() -> Params {
        Params {
            sizes: vec![1_000, 4_000, 16_000, 64_000],
            joins: 50,
            ..Params::default()
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Base network size.
    pub n: usize,
    /// Mean protocol messages per join (request, rows, reply, announces).
    pub msgs_per_join: f64,
    /// Mean join-route hops.
    pub join_hops: f64,
    /// log_2^b N for comparison.
    pub log_n: f64,
}

/// E6 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// One row per size.
    pub rows: Vec<Row>,
}

/// Runs E6.
pub fn run(p: &Params) -> Result {
    let mut rows = Vec::new();
    for (i, &n) in p.sizes.iter().enumerate() {
        let seed = p.seed + i as u64;
        let all_ids = ids(n + p.joins, seed);
        // Build the base network from the first n ids; the rest join via
        // the protocol so their cost can be measured.
        let mut sim = past_pastry::static_build(
            past_netsim::Sphere::new(n + p.joins, seed),
            p.cfg,
            seed,
            &all_ids[..n],
            |_| NullApp,
            2,
        );
        let mut total_msgs = 0u64;
        let mut total_hops = 0u64;
        for j in 0..p.joins {
            sim.engine.stats.reset();
            let addr = sim.join_node_nearby(all_ids[n + j], NullApp, 8);
            total_msgs += sim.engine.stats.total_msgs;
            total_hops += sim.engine.node(addr).join_hops.unwrap_or(0) as u64;
        }
        rows.push(Row {
            n,
            msgs_per_join: total_msgs as f64 / p.joins as f64,
            join_hops: total_hops as f64 / p.joins as f64,
            log_n: (n as f64).log(p.cfg.cols() as f64),
        });
    }
    Result { rows }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E6: messages to integrate one arriving node",
            &["N", "msgs/join", "join hops", "log16 N"],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                f2(r.msgs_per_join),
                f2(r.join_hops),
                f2(r.log_n),
            ]);
        }
        t.note("paper: O(log_2^b N) messages restore all invariants after an arrival");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_cost_grows_logarithmically() {
        let p = Params {
            sizes: vec![128, 2_048],
            joins: 10,
            ..Params::default()
        };
        let r = run(&p);
        // 16x nodes must cost much less than 16x messages.
        let growth = r.rows[1].msgs_per_join / r.rows[0].msgs_per_join;
        assert!(growth < 4.0, "join cost growth {growth} not logarithmic");
        assert!(r.rows[0].msgs_per_join > 5.0, "joins do send messages");
        assert!(r.rows[1].join_hops >= r.rows[0].join_hops);
    }
}
