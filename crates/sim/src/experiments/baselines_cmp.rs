//! E11 — Pastry vs Chord vs CAN: hops and locality.
//!
//! Paper positioning: Chord "makes no explicit effort to achieve good
//! network locality"; CAN's "number of routing hops grows faster than
//! log N". All three run on the identical sphere topology and key set.

use crate::common::ids;
use crate::report::{f2, ExpTable};
use past_baselines::{CanSim, ChordSim};
use past_crypto::rng::Rng;
use past_netsim::{Sphere, Topology};
use past_pastry::{static_build, Config, Id, NullApp};

/// Parameters for E11.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Lookups per scheme per size.
    pub trials: usize,
    /// CAN dimensionality.
    pub can_dims: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            sizes: vec![256, 1_024, 4_096],
            trials: 500,
            can_dims: 2,
            seed: 142,
        }
    }
}

impl Params {
    /// Paper-scale run.
    pub fn paper() -> Params {
        Params {
            sizes: vec![1_024, 4_096, 16_384],
            trials: 1_500,
            ..Params::default()
        }
    }
}

/// One (scheme, size) cell.
#[derive(Clone, Debug)]
pub struct Row {
    /// Scheme name.
    pub scheme: String,
    /// Network size.
    pub n: usize,
    /// Mean overlay hops.
    pub hops: f64,
    /// Mean route-delay / direct-delay ratio.
    pub ratio: f64,
    /// Sends that bounced off dead or unreachable peers during the run
    /// (0 on a healthy static network — a liveness smoke signal per
    /// scheme, not a paper metric).
    pub failed_sends: u64,
}

/// E11 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// All cells, grouped by size.
    pub rows: Vec<Row>,
}

/// Runs E11.
pub fn run(p: &Params) -> Result {
    let mut rows = Vec::new();
    for (i, &n) in p.sizes.iter().enumerate() {
        let seed = p.seed + i as u64;
        let node_ids = ids(n, seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0xcafe);
        let probes: Vec<(Id, usize)> = (0..p.trials)
            .map(|_| (Id(rng.random()), rng.random_range(0..n)))
            .collect();

        // Pastry.
        {
            let mut sim = static_build(
                Sphere::new(n, seed),
                Config::default(),
                seed,
                &node_ids,
                |_| NullApp,
                4,
            );
            let mut hops = 0u64;
            let mut ratios = Vec::new();
            for &(key, from) in &probes {
                sim.route(from, key, ());
                let rec = sim.drain_deliveries()[0];
                hops += rec.hops as u64;
                if rec.delivered_at != from {
                    let direct = sim.engine.topology().delay_us(from, rec.delivered_at);
                    ratios.push(rec.path_us as f64 / direct as f64);
                }
            }
            rows.push(Row {
                scheme: "Pastry".into(),
                n,
                hops: hops as f64 / probes.len() as f64,
                ratio: ratios.iter().sum::<f64>() / ratios.len().max(1) as f64,
                failed_sends: sim.engine.stats.failed_sends,
            });
        }

        // Chord.
        {
            let mut sim = ChordSim::build(Sphere::new(n, seed), seed, &node_ids);
            let mut hops = 0u64;
            let mut ratios = Vec::new();
            for &(key, from) in &probes {
                sim.lookup(from, key);
                let rec = sim.drain()[0];
                hops += rec.hops as u64;
                if rec.delivered_at != from {
                    let direct = sim.engine.topology().delay_us(from, rec.delivered_at);
                    ratios.push(rec.path_us as f64 / direct as f64);
                }
            }
            rows.push(Row {
                scheme: "Chord".into(),
                n,
                hops: hops as f64 / probes.len() as f64,
                ratio: ratios.iter().sum::<f64>() / ratios.len().max(1) as f64,
                failed_sends: sim.engine.stats.failed_sends,
            });
        }

        // CAN.
        {
            let mut sim = CanSim::build(Sphere::new(n, seed), seed, &node_ids, p.can_dims);
            let mut hops = 0u64;
            let mut ratios = Vec::new();
            for &(key, from) in &probes {
                sim.lookup(from, key);
                let rec = sim.drain()[0].clone();
                hops += rec.hops as u64;
                if rec.delivered_at != from {
                    let direct = sim.engine.topology().delay_us(from, rec.delivered_at);
                    ratios.push(rec.path_us as f64 / direct as f64);
                }
            }
            rows.push(Row {
                scheme: format!("CAN d={}", p.can_dims),
                n,
                hops: hops as f64 / probes.len() as f64,
                ratio: ratios.iter().sum::<f64>() / ratios.len().max(1) as f64,
                failed_sends: sim.engine.stats.failed_sends,
            });
        }
    }
    Result { rows }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E11: Pastry vs Chord vs CAN (same sphere topology, same keys)",
            &["scheme", "N", "mean hops", "distance ratio", "failed sends"],
        );
        for r in &self.rows {
            t.row(vec![
                r.scheme.clone(),
                r.n.to_string(),
                f2(r.hops),
                f2(r.ratio),
                r.failed_sends.to_string(),
            ]);
        }
        t.note("paper: Chord lacks locality; CAN hops grow faster than log N");
        t.note("failed sends: bounced messages per scheme (0 = fully reachable)");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pastry_wins_locality_and_can_loses_hops() {
        let p = Params {
            sizes: vec![1_024],
            trials: 300,
            ..Params::default()
        };
        let r = run(&p);
        let pastry = r.rows.iter().find(|r| r.scheme == "Pastry").expect("row");
        let chord = r.rows.iter().find(|r| r.scheme == "Chord").expect("row");
        let can = r
            .rows
            .iter()
            .find(|r| r.scheme.starts_with("CAN"))
            .expect("row");
        assert!(
            pastry.ratio < chord.ratio,
            "Pastry ratio {} should beat Chord {}",
            pastry.ratio,
            chord.ratio
        );
        assert!(
            can.hops > 2.0 * pastry.hops,
            "CAN hops {} should dwarf Pastry {}",
            can.hops,
            pastry.hops
        );
        assert!(
            chord.hops > pastry.hops,
            "Chord (0.5 log2 N) vs Pastry (log16 N): {} vs {}",
            chord.hops,
            pastry.hops
        );
        for row in &r.rows {
            assert_eq!(
                row.failed_sends, 0,
                "{}: no sends may bounce on a healthy static network",
                row.scheme
            );
        }
    }
}
