//! E7 — global storage utilization vs insert rejections (§2.3, after the
//! SOSP'01 companion paper).
//!
//! Paper claim: "PAST can achieve global storage utilization in excess of
//! 95%, while the rate of rejected file insertions remains below 5% and
//! failed insertions are heavily biased towards large files."
//!
//! The experiment keeps inserting trace-like files until the system is
//! effectively full, recording the utilization/rejection trajectory, and
//! ablates the two diversion mechanisms (replica diversion, file
//! diversion).

use crate::common::past_network_caps;
use crate::report::{bytes, f2, pct, ExpTable};
use past_core::{BuildMode, ContentRef, PastConfig, PastOut};
use past_crypto::rng::Rng;
use past_pastry::Config;
use past_workload::{Capacities, FileSizes};

/// Parameters for E7.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Mean node capacity (bytes).
    pub mean_capacity: u64,
    /// Replication factor for inserted files.
    pub k: u8,
    /// Consecutive final failures that end the fill.
    pub stop_after_failures: usize,
    /// Hard cap on insert attempts (safety).
    pub max_files: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 150,
            mean_capacity: 4 << 20,
            k: 3,
            stop_after_failures: 20,
            max_files: 100_000,
            seed: 102,
        }
    }
}

impl Params {
    /// Paper-scale run.
    pub fn paper() -> Params {
        Params {
            n: 500,
            mean_capacity: 16 << 20,
            stop_after_failures: 40,
            ..Params::default()
        }
    }
}

/// One ablation variant.
#[derive(Clone, Debug)]
pub struct Row {
    /// Variant label.
    pub variant: String,
    /// Utilization when the first insert was finally rejected.
    pub util_first_reject: f64,
    /// Final utilization when the fill stopped.
    pub util_final: f64,
    /// Overall fraction of inserts rejected.
    pub reject_ratio: f64,
    /// Fraction rejected among inserts attempted below 80% utilization.
    pub reject_below_80: f64,
    /// Median size of accepted files (bytes).
    pub median_accepted: u64,
    /// Median size of rejected files (bytes).
    pub median_rejected: u64,
    /// Files successfully inserted.
    pub inserted: usize,
}

/// E7 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// One row per ablation variant.
    pub rows: Vec<Row>,
}

fn median(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

fn run_variant(p: &Params, label: &str, past_cfg: PastConfig) -> Row {
    let mut rng = Rng::seed_from_u64(p.seed);
    let caps = Capacities {
        mean_bytes: p.mean_capacity,
        spread: 3.2,
    }
    .sample_n(p.n, &mut rng);
    let sizes = FileSizes {
        tail_min: 131_072.0,
        max_bytes: p.mean_capacity / 24,
        ..FileSizes::default()
    };
    let pastry_cfg = Config {
        leaf_len: 16,
        neighborhood_len: 16,
        ..Config::default()
    };
    let mut net = past_network_caps(
        p.n,
        p.seed,
        pastry_cfg,
        past_cfg,
        &caps,
        u64::MAX / 2,
        BuildMode::ProtocolJoins,
    );

    let mut accepted_sizes = Vec::new();
    let mut rejected_sizes = Vec::new();
    let mut util_first_reject = None;
    let mut attempts_below_80 = 0usize;
    let mut rejects_below_80 = 0usize;
    let mut consecutive_failures = 0usize;

    for i in 0..p.max_files {
        if consecutive_failures >= p.stop_after_failures {
            break;
        }
        let size = sizes.sample(&mut rng);
        let client = rng.random_range(0..p.n);
        let name = format!("{label}-{i}");
        let content = ContentRef::synthetic(client, &name, size);
        let util_before = net.utilization().2;
        if net.insert(client, &name, content, p.k).is_err() {
            break; // quota exhausted (should not happen here)
        }
        let events = net.run();
        let mut outcome = None;
        for (_, _, e) in &events {
            match e {
                PastOut::InsertOk { .. } => outcome = Some(true),
                PastOut::InsertFailed { .. } => outcome = Some(false),
                _ => {}
            }
        }
        let ok = outcome.unwrap_or(false);
        if util_before < 0.80 {
            attempts_below_80 += 1;
            if !ok {
                rejects_below_80 += 1;
            }
        }
        if ok {
            accepted_sizes.push(size);
            consecutive_failures = 0;
        } else {
            rejected_sizes.push(size);
            consecutive_failures += 1;
            if util_first_reject.is_none() {
                util_first_reject = Some(util_before);
            }
        }
    }

    let total = accepted_sizes.len() + rejected_sizes.len();
    Row {
        variant: label.to_string(),
        util_first_reject: util_first_reject.unwrap_or(net.utilization().2),
        util_final: net.utilization().2,
        reject_ratio: rejected_sizes.len() as f64 / total.max(1) as f64,
        reject_below_80: rejects_below_80 as f64 / attempts_below_80.max(1) as f64,
        median_accepted: median(accepted_sizes.clone()),
        median_rejected: median(rejected_sizes),
        inserted: accepted_sizes.len(),
    }
}

/// Runs E7 with the four diversion ablations.
pub fn run(p: &Params) -> Result {
    let base = PastConfig {
        default_k: p.k,
        crypto_checks: false,
        cache_enabled: false,
        cache_on_insert_path: false,
        t_pri: 0.1,
        t_div: 0.05,
        ..PastConfig::default()
    };
    let rows = vec![
        run_variant(p, "full PAST", base),
        run_variant(
            p,
            "no replica diversion",
            PastConfig {
                divert_candidates: 0,
                ..base
            },
        ),
        run_variant(
            p,
            "no file diversion",
            PastConfig {
                max_insert_attempts: 1,
                ..base
            },
        ),
        run_variant(
            p,
            "no diversion at all",
            PastConfig {
                divert_candidates: 0,
                max_insert_attempts: 1,
                ..base
            },
        ),
    ];
    Result { rows }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E7: storage utilization vs rejections (t_pri=0.1, t_div=0.05)",
            &[
                "variant",
                "util@1st reject",
                "final util",
                "rejected",
                "rejected <80% util",
                "median acc.",
                "median rej.",
                "files",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.variant.clone(),
                pct(r.util_first_reject),
                pct(r.util_final),
                pct(r.reject_ratio),
                pct(r.reject_below_80),
                bytes(r.median_accepted),
                bytes(r.median_rejected),
                r.inserted.to_string(),
            ]);
        }
        t.note("paper: >95% utilization with <5% rejections; rejects biased to large files");
        t.note(format!(
            "full-PAST final utilization {} vs no-diversion {}",
            f2(self.rows[0].util_final),
            f2(self.rows[3].util_final)
        ));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_past_fills_high_and_rejects_large() {
        let p = Params {
            n: 60,
            mean_capacity: 2 << 20,
            stop_after_failures: 12,
            ..Params::default()
        };
        let r = run(&p);
        let full = &r.rows[0];
        assert!(
            full.util_final > 0.80,
            "final utilization too low: {}",
            full.util_final
        );
        assert!(
            full.reject_below_80 < 0.10,
            "too many early rejections: {}",
            full.reject_below_80
        );
        assert!(
            full.median_rejected > full.median_accepted,
            "rejections should be biased to large files: rej {} vs acc {}",
            full.median_rejected,
            full.median_accepted
        );
        // Diversion must help: full PAST reaches at least the utilization
        // of the fully-ablated variant.
        let none = &r.rows[3];
        assert!(
            full.util_final >= none.util_final - 0.02,
            "diversion should not hurt: {} vs {}",
            full.util_final,
            none.util_final
        );
    }
}
