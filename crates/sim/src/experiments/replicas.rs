//! E4 — nearest-replica retrieval among k = 5 copies.
//!
//! Paper claim: "among 5 replicated copies of a file, Pastry is able to
//! find the 'nearest' copy in 76% of all lookups and it finds one of the
//! two 'nearest' copies in 92% of all lookups."

use crate::common::past_network;
use crate::report::{pct, ExpTable};
use past_core::{BuildMode, ContentRef, PastConfig, PastOut};
use past_netsim::Topology;
use past_pastry::Config;

/// Parameters for E4.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Files inserted.
    pub files: usize,
    /// Lookups performed.
    pub lookups: usize,
    /// Replication factor (paper experiment: 5).
    pub k: u8,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 600,
            files: 150,
            lookups: 600,
            k: 5,
            seed: 72,
        }
    }
}

impl Params {
    /// Paper-scale run.
    pub fn paper() -> Params {
        Params {
            n: 2_000,
            files: 400,
            lookups: 2_000,
            ..Params::default()
        }
    }
}

/// E4 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// Fraction of lookups served by the client's nearest replica.
    pub nearest: f64,
    /// Fraction served by one of the two nearest replicas.
    pub top_two: f64,
    /// Lookups measured.
    pub measured: usize,
}

/// Runs E4.
pub fn run(p: &Params) -> Result {
    // The paper's "typical" leaf set (l = 32): wide coverage means the
    // route meets a covering node (which redirects to a near replica)
    // before it can land on the numeric root directly.
    let pastry_cfg = Config {
        leaf_len: 32,
        neighborhood_len: 32,
        ..Config::default()
    };
    // The paper's experiment measures raw replica locality: caching off,
    // crypto off for speed.
    let past_cfg = PastConfig {
        default_k: p.k,
        cache_enabled: false,
        cache_on_insert_path: false,
        crypto_checks: false,
        t_pri: 1.0,
        t_div: 0.5,
        ..PastConfig::default()
    };
    let cap = 1u64 << 40;
    let mut net = past_network(
        p.n,
        p.seed,
        pastry_cfg,
        past_cfg,
        cap,
        u64::MAX / 2,
        BuildMode::ProtocolJoins,
    );

    // Insert files from random owners.
    let mut fids = Vec::new();
    for i in 0..p.files {
        let name = format!("e4-{i}");
        let content = ContentRef::synthetic(1, &name, 64 << 10);
        let client = {
            let r = net.sim.engine.rng();
            r.random_range(0..p.n)
        };
        net.insert(client, &name, content, p.k).expect("quota");
        for (_, _, e) in net.run() {
            if let PastOut::InsertOk { file_id, .. } = e {
                fids.push(file_id);
            }
        }
    }
    assert!(!fids.is_empty(), "no files inserted");

    // Lookups from random clients; rank the serving replica by proximity.
    let mut nearest = 0usize;
    let mut top_two = 0usize;
    let mut measured = 0usize;
    for _ in 0..p.lookups {
        let (fid, client) = {
            let r = net.sim.engine.rng();
            (fids[r.random_range(0..fids.len())], r.random_range(0..p.n))
        };
        let holders = net.replica_holders(&fid);
        if holders.len() < p.k as usize {
            continue;
        }
        net.lookup(client, fid);
        for (_, _, e) in net.run() {
            if let PastOut::LookupOk { server, .. } = e {
                // Rank holders by proximity to the client.
                let mut by_dist: Vec<_> = holders
                    .iter()
                    .map(|&h| (net.sim.engine.topology().delay_us(client, h), h))
                    .collect();
                by_dist.sort();
                let rank = by_dist.iter().position(|&(_, h)| h == server);
                if let Some(rank) = rank {
                    measured += 1;
                    if rank == 0 {
                        nearest += 1;
                    }
                    if rank <= 1 {
                        top_two += 1;
                    }
                }
            }
        }
    }
    Result {
        nearest: nearest as f64 / measured.max(1) as f64,
        top_two: top_two as f64 / measured.max(1) as f64,
        measured,
    }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E4: which of the k=5 replicas serves a lookup",
            &["metric", "measured", "paper"],
        );
        t.row(vec![
            "nearest replica".into(),
            pct(self.nearest),
            "76%".into(),
        ]);
        t.row(vec![
            "one of two nearest".into(),
            pct(self.top_two),
            "92%".into(),
        ]);
        t.note(format!("{} lookups measured", self.measured));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_strongly_prefer_near_replicas() {
        let p = Params {
            n: 300,
            files: 60,
            lookups: 250,
            ..Params::default()
        };
        let r = run(&p);
        assert!(r.measured > 100, "measured {}", r.measured);
        // Random choice among 5 replicas would give 20% / 40%. At this
        // small scale (2-hop routes) the paper's 76%/92% is out of reach,
        // but locality must clearly dominate.
        assert!(
            r.nearest > 0.45,
            "nearest fraction {} barely beats random",
            r.nearest
        );
        assert!(r.top_two > 0.65, "top-two fraction {}", r.top_two);
        assert!(r.top_two >= r.nearest);
    }
}
