//! E3 — route-distance penalty (locality).
//!
//! Paper claim: "simulations have shown that the average distance traveled
//! by a message, in terms of the proximity metric, is only 50% higher than
//! the corresponding 'distance' of the source and destination in the
//! underlying network."

use crate::common::pastry_joined;
use crate::report::{f2, ExpTable};
use past_netsim::Topology;
use past_pastry::{Config, Id};

/// Parameters for E3.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Routes per size.
    pub trials: usize,
    /// Routing-table improvement rounds after the joins.
    pub improve_rounds: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Pastry configuration.
    pub cfg: Config,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            sizes: vec![500, 1_500],
            trials: 600,
            improve_rounds: 2,
            seed: 62,
            cfg: Config::default(),
        }
    }
}

impl Params {
    /// Paper-scale run.
    pub fn paper() -> Params {
        Params {
            sizes: vec![1_000, 2_500, 5_000],
            trials: 2_000,
            ..Params::default()
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Network size.
    pub n: usize,
    /// Mean ratio of route delay to direct source→destination delay.
    pub ratio: f64,
    /// Mean hops (context).
    pub mean_hops: f64,
}

/// E3 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// One row per size.
    pub rows: Vec<Row>,
}

/// Runs E3.
pub fn run(p: &Params) -> Result {
    let mut rows = Vec::new();
    for (i, &n) in p.sizes.iter().enumerate() {
        let mut sim = pastry_joined(n, p.seed + i as u64, p.cfg);
        for _ in 0..p.improve_rounds {
            sim.improve_tables();
        }
        let mut ratios = Vec::new();
        let mut hops = 0u64;
        let mut measured = 0usize;
        while measured < p.trials {
            let key = Id(sim.engine.rng().random());
            let from = sim.engine.rng().random_range(0..n);
            sim.route(from, key, ());
            let recs = sim.drain_deliveries();
            let rec = recs[0];
            if rec.delivered_at == from {
                continue; // zero direct distance: ratio undefined
            }
            let direct = sim.engine.topology().delay_us(from, rec.delivered_at);
            ratios.push(rec.path_us as f64 / direct as f64);
            hops += rec.hops as u64;
            measured += 1;
        }
        rows.push(Row {
            n,
            ratio: ratios.iter().sum::<f64>() / ratios.len() as f64,
            mean_hops: hops as f64 / measured as f64,
        });
    }
    Result { rows }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E3: route distance vs direct distance (sphere topology)",
            &["N", "distance ratio", "mean hops"],
        );
        for r in &self.rows {
            t.row(vec![r.n.to_string(), f2(r.ratio), f2(r.mean_hops)]);
        }
        t.note("paper: route distance only ~50% higher than direct (ratio ~1.5)");
        t
    }
}

/// One ablation variant row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Mean route-delay / direct-delay ratio.
    pub ratio: f64,
}

/// E3b result: locality ablation.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// One row per construction variant.
    pub rows: Vec<AblationRow>,
    /// Network size used.
    pub n: usize,
}

/// Measures the distance ratio over an existing network.
fn measure_ratio<A, T>(sim: &mut past_pastry::PastrySim<A, T>, trials: usize) -> f64
where
    A: past_pastry::App<Payload = ()>,
    T: Topology,
{
    let n = sim.engine.len();
    let mut ratios = Vec::new();
    while ratios.len() < trials {
        let key = Id(sim.engine.rng().random());
        let from = sim.engine.rng().random_range(0..n);
        sim.route(from, key, ());
        let recs = sim.drain_deliveries();
        let rec = recs[0];
        if rec.delivered_at == from {
            continue;
        }
        let direct = sim.engine.topology().delay_us(from, rec.delivered_at);
        ratios.push(rec.path_us as f64 / direct as f64);
    }
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

/// Runs the E3b ablation: how much of the locality comes from each
/// mechanism (nearby join contact + proximity-chosen table entries +
/// maintenance improvement)?
pub fn run_ablation(n: usize, trials: usize, seed: u64, cfg: Config) -> AblationResult {
    use crate::common::ids;
    use past_pastry::{static_build, NullApp, PastrySim};
    let mut rows = Vec::new();

    // (a) Full protocol joins + improvement rounds (the real system).
    {
        let mut sim = crate::common::pastry_joined(n, seed, cfg);
        sim.improve_tables();
        sim.improve_tables();
        rows.push(AblationRow {
            variant: "joins + 2 improvement rounds".into(),
            ratio: measure_ratio(&mut sim, trials),
        });
    }
    // (b) Protocol joins only.
    {
        let mut sim = crate::common::pastry_joined(n, seed, cfg);
        rows.push(AblationRow {
            variant: "joins only".into(),
            ratio: measure_ratio(&mut sim, trials),
        });
    }
    // (c) Static build, proximity-chosen entries (8 samples per slot).
    {
        let node_ids = ids(n, seed);
        let mut sim: PastrySim<NullApp, past_netsim::Sphere> = static_build(
            past_netsim::Sphere::new(n, seed),
            cfg,
            seed,
            &node_ids,
            |_| NullApp,
            8,
        );
        rows.push(AblationRow {
            variant: "static, proximity entries".into(),
            ratio: measure_ratio(&mut sim, trials),
        });
    }
    // (d) Static build, random entries (no locality at all).
    {
        let node_ids = ids(n, seed);
        let mut sim: PastrySim<NullApp, past_netsim::Sphere> = static_build(
            past_netsim::Sphere::new(n, seed),
            cfg,
            seed,
            &node_ids,
            |_| NullApp,
            1,
        );
        rows.push(AblationRow {
            variant: "static, random entries".into(),
            ratio: measure_ratio(&mut sim, trials),
        });
    }
    AblationResult { rows, n }
}

impl AblationResult {
    /// Renders the ablation table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            format!("E3b: locality ablation (N = {})", self.n),
            &["variant", "distance ratio"],
        );
        for r in &self.rows {
            t.row(vec![r.variant.clone(), f2(r.ratio)]);
        }
        t.note("locality mechanisms should order the ratios: (a) <= (b) <= (d)");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_orders_variants() {
        let r = run_ablation(300, 150, 63, Config::default());
        let full = r.rows[0].ratio;
        let none = r.rows[3].ratio;
        assert!(
            full < none,
            "locality mechanisms must beat random entries: {full} vs {none}"
        );
    }

    #[test]
    fn ratio_is_small_constant() {
        let p = Params {
            sizes: vec![400],
            trials: 200,
            ..Params::default()
        };
        let r = run(&p);
        let ratio = r.rows[0].ratio;
        assert!(
            (1.0..2.6).contains(&ratio),
            "distance ratio {ratio} out of the paper's ballpark"
        );
    }
}
