//! E10 — load balance of file assignment.
//!
//! Paper claim: "the number of files assigned to each node is roughly
//! balanced", following "from the uniformly distributed, quasi-random
//! identifiers assigned to each node and file".

use crate::common::ids;
use crate::report::{f2, ExpTable};
use past_crypto::rng::Rng;
use past_pastry::Id;

/// Parameters for E10.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Files per node on average.
    pub files_per_node: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 2_000,
            files_per_node: 10,
            seed: 132,
        }
    }
}

impl Params {
    /// Paper-scale run.
    pub fn paper() -> Params {
        Params {
            n: 10_000,
            files_per_node: 20,
            ..Params::default()
        }
    }
}

/// E10 result: distribution of root assignments per node.
#[derive(Clone, Debug)]
pub struct Result {
    /// Network size.
    pub n: usize,
    /// Mean files per node (= files_per_node by construction).
    pub mean: f64,
    /// Maximum files on any node.
    pub max: u64,
    /// Coefficient of variation of the per-node counts.
    pub cov: f64,
    /// The balls-in-bins (Poisson) expectation for the CoV.
    pub poisson_cov: f64,
}

/// Runs E10: assigns `n · files_per_node` random fileIds to their root
/// nodes and studies the per-node counts.
pub fn run(p: &Params) -> Result {
    let node_ids = ids(p.n, p.seed);
    let mut sorted: Vec<(u128, usize)> = node_ids
        .iter()
        .enumerate()
        .map(|(a, id)| (id.0, a))
        .collect();
    sorted.sort_unstable();
    let mut rng = Rng::seed_from_u64(p.seed ^ 0xba11);
    let mut counts = vec![0u64; p.n];
    let files = p.n * p.files_per_node;
    for _ in 0..files {
        let key = Id(rng.random());
        // Root = numerically closest on the ring.
        let pos = sorted.partition_point(|&(id, _)| id < key.0);
        let cands = [sorted[pos % p.n], sorted[(pos + p.n - 1) % p.n]];
        let root = cands
            .iter()
            .min_by_key(|&&(id, _)| Id(id).ring_dist(&key))
            .expect("two candidates")
            .1;
        counts[root] += 1;
    }
    let mean = files as f64 / p.n as f64;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean) * (c as f64 - mean))
        .sum::<f64>()
        / p.n as f64;
    Result {
        n: p.n,
        mean,
        max: *counts.iter().max().expect("nodes exist"),
        cov: var.sqrt() / mean,
        poisson_cov: 1.0 / mean.sqrt(),
    }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            "E10: files-per-node balance (root assignment)",
            &["N", "mean", "max", "CoV", "Poisson CoV"],
        );
        t.row(vec![
            self.n.to_string(),
            f2(self.mean),
            self.max.to_string(),
            f2(self.cov),
            f2(self.poisson_cov),
        ]);
        t.note(
            "uniform ids give near-balls-in-bins balance; exponential spacing adds ~sqrt(2) spread",
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_roughly_balanced() {
        let r = run(&Params::default());
        // Ring-interval sizes are exponentially distributed, so the CoV
        // exceeds the pure Poisson value but stays O(1): "roughly
        // balanced", far from degenerate.
        assert!(r.cov < 4.0 * r.poisson_cov, "CoV {} too high", r.cov);
        assert!((r.max as f64) < r.mean * 15.0, "max {} too skewed", r.max);
        assert!((r.mean - 10.0).abs() < 1e-9);
    }
}
