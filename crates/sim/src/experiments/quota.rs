//! E12 — the smartcard quota system.
//!
//! Paper claims (§2.1): the quota "prevents clients from exceeding the
//! storage quota they have paid for"; reclaim receipts are "credited
//! against the client's quota"; and the broker "ensures that balance"
//! between the sum of quotas (demand) and total storage (supply).

use crate::common::past_network;
use crate::report::{bytes, ExpTable};
use past_core::{BuildMode, ContentRef, PastConfig, PastOut};
use past_pastry::Config;

/// Parameters for E12.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Per-node quota (bytes).
    pub quota: u64,
    /// Per-node capacity (bytes).
    pub capacity: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 40,
            quota: 10 << 20,
            capacity: 64 << 20,
            seed: 152,
        }
    }
}

impl Params {
    /// Paper-scale run (same scenario, larger network).
    pub fn paper() -> Params {
        Params {
            n: 200,
            ..Params::default()
        }
    }
}

/// E12 result: a quota lifecycle audit.
#[derive(Clone, Debug)]
pub struct Result {
    /// Inserts accepted before the quota ran out.
    pub accepted_before_exhaustion: usize,
    /// Over-quota certificate requests refused by the card.
    pub refused_over_quota: usize,
    /// Quota remaining after exhaustion (bytes).
    pub quota_after_exhaustion: u64,
    /// Bytes credited back by reclaim receipts.
    pub credited_by_reclaim: u64,
    /// Whether a post-reclaim insert succeeded.
    pub reinsert_after_reclaim: bool,
    /// Broker ledger: total demand (sum of quotas).
    pub demand: u64,
    /// Broker ledger: total supply (sum of contributions).
    pub supply: u64,
}

/// Runs E12.
pub fn run(p: &Params) -> Result {
    let past_cfg = PastConfig {
        default_k: 2,
        t_pri: 1.0,
        t_div: 0.5,
        ..PastConfig::default()
    };
    let mut net = past_network(
        p.n,
        p.seed,
        Config {
            leaf_len: 8,
            neighborhood_len: 8,
            ..Config::default()
        },
        past_cfg,
        p.capacity,
        p.quota,
        BuildMode::ProtocolJoins,
    );
    let client = 0usize;
    let k = 2u8;
    let file_size = 1 << 20; // 1 MiB, debits 2 MiB per insert

    // Insert until the card refuses.
    let mut accepted = 0usize;
    let mut refused = 0usize;
    let mut first_fid = None;
    for i in 0..64 {
        let name = format!("quota-{i}");
        let content = ContentRef::synthetic(0, &name, file_size);
        match net.insert(client, &name, content, k) {
            Ok(_) => {
                for (_, _, e) in net.run() {
                    if let PastOut::InsertOk { file_id, .. } = e {
                        accepted += 1;
                        first_fid.get_or_insert(file_id);
                    }
                }
            }
            Err(_) => {
                refused += 1;
                if refused >= 3 {
                    break;
                }
            }
        }
    }
    let quota_after = net.sim.engine.node(client).app.card.quota_remaining();

    // Reclaim the first file; receipts credit the quota.
    let mut credited = 0u64;
    if let Some(fid) = first_fid {
        net.reclaim(client, fid);
        for (_, _, e) in net.run() {
            if let PastOut::ReclaimCredited { freed, .. } = e {
                credited += freed;
            }
        }
    }

    // The freed quota admits a new insert.
    let content = ContentRef::synthetic(0, "after-reclaim", file_size);
    let reinsert = match net.insert(client, "after-reclaim", content, k) {
        Ok(_) => net
            .run()
            .iter()
            .any(|(_, _, e)| matches!(e, PastOut::InsertOk { .. })),
        Err(_) => false,
    };

    Result {
        accepted_before_exhaustion: accepted,
        refused_over_quota: refused,
        quota_after_exhaustion: quota_after,
        credited_by_reclaim: credited,
        reinsert_after_reclaim: reinsert,
        demand: net.broker.demand(),
        supply: net.broker.supply(),
    }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new("E12: smartcard quota lifecycle", &["check", "value"]);
        t.row(vec![
            "inserts before exhaustion".into(),
            self.accepted_before_exhaustion.to_string(),
        ]);
        t.row(vec![
            "over-quota refusals (by card)".into(),
            self.refused_over_quota.to_string(),
        ]);
        t.row(vec![
            "quota left at exhaustion".into(),
            bytes(self.quota_after_exhaustion),
        ]);
        t.row(vec![
            "credited by reclaim receipts".into(),
            bytes(self.credited_by_reclaim),
        ]);
        t.row(vec![
            "re-insert after reclaim".into(),
            self.reinsert_after_reclaim.to_string(),
        ]);
        t.row(vec![
            "broker demand (sum quotas)".into(),
            bytes(self.demand),
        ]);
        t.row(vec![
            "broker supply (contributions)".into(),
            bytes(self.supply),
        ]);
        t.note("paper: quota debit = size x k at issue; reclaim receipts credit it back");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_lifecycle() {
        let r = run(&Params::default());
        // 10 MiB quota, 2 MiB debit per insert -> exactly 5 inserts.
        assert_eq!(r.accepted_before_exhaustion, 5);
        assert!(r.refused_over_quota >= 1);
        assert_eq!(r.quota_after_exhaustion, 0);
        // Reclaiming one file (2 copies x 1 MiB) credits 2 MiB.
        assert_eq!(r.credited_by_reclaim, 2 << 20);
        assert!(r.reinsert_after_reclaim);
        // Supply >= demand: the broker's ledger balances.
        assert!(r.supply >= r.demand);
    }
}
