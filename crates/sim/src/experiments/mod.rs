//! One module per experiment; see DESIGN.md §5 for the per-experiment
//! index mapping each module to the paper claim it reproduces.

pub mod balance;
pub mod baselines_cmp;
pub mod caching;
pub mod failure;
pub mod hops;
pub mod join_cost;
pub mod locality;
pub mod malicious;
pub mod quota;
pub mod replicas;
pub mod security;
pub mod state_size;
pub mod storage_util;

/// The default Pastry configuration shared by the table-generating bench.
pub fn pastry_config_default() -> past_pastry::Config {
    past_pastry::Config::default()
}
