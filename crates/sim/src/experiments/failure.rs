//! E5 — delivery under simultaneous node failures.
//!
//! Paper claim: "With concurrent node failures, eventual delivery is
//! guaranteed unless ⌊l/2⌋ nodes with adjacent nodeIds fail
//! simultaneously (l is a configuration parameter with typical value
//! 32)."

use crate::common::pastry_joined;
use crate::report::{pct, ExpTable};
use past_pastry::{Config, Id};
use std::collections::HashSet;

/// Parameters for E5.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Random-failure fractions to sweep.
    pub fail_fractions: Vec<f64>,
    /// Probe routes per scenario.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Pastry configuration (leaf size drives the adjacency bound).
    pub cfg: Config,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 400,
            fail_fractions: vec![0.05, 0.10, 0.20],
            trials: 300,
            seed: 82,
            cfg: Config::default(),
        }
    }
}

impl Params {
    /// Paper-scale run.
    pub fn paper() -> Params {
        Params {
            n: 2_000,
            fail_fractions: vec![0.05, 0.10, 0.20, 0.30],
            trials: 1_000,
            ..Params::default()
        }
    }
}

/// One scenario row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Scenario label.
    pub scenario: String,
    /// Fraction of routes delivered (anywhere live) without repair.
    pub delivered_no_repair: f64,
    /// Fraction delivered at the *correct* live root after repair.
    pub correct_after_repair: f64,
}

/// E5 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// One row per scenario.
    pub rows: Vec<Row>,
    /// The ⌊l/2⌋ adjacency bound in force.
    pub adjacency_bound: usize,
}

fn probe(
    sim: &mut past_pastry::PastrySim<past_pastry::NullApp, past_netsim::Sphere>,
    trials: usize,
    check_root: bool,
) -> f64 {
    let n = sim.engine.len();
    let mut ok = 0usize;
    for _ in 0..trials {
        let key = Id(sim.engine.rng().random());
        let from = loop {
            let f = sim.engine.rng().random_range(0..n);
            if sim.engine.is_alive(f) {
                break f;
            }
        };
        sim.route(from, key, ());
        let recs = sim.drain_deliveries();
        if let Some(rec) = recs.first() {
            if !check_root {
                ok += 1;
            } else if Some(rec.delivered_at) == sim.true_root(&key).map(|h| h.addr) {
                ok += 1;
            }
        }
    }
    ok as f64 / trials as f64
}

/// Runs E5.
pub fn run(p: &Params) -> Result {
    let mut rows = Vec::new();
    let half = p.cfg.leaf_len / 2;

    // Random simultaneous failures at each fraction.
    for (i, &frac) in p.fail_fractions.iter().enumerate() {
        let mut sim = pastry_joined(p.n, p.seed + i as u64, p.cfg);
        let kill_count = ((p.n as f64) * frac) as usize;
        let mut killed = HashSet::new();
        while killed.len() < kill_count {
            let v = sim.engine.rng().random_range(0..p.n);
            if killed.insert(v) {
                sim.engine.kill(v);
            }
        }
        let no_repair = probe(&mut sim, p.trials, false);
        sim.stabilize();
        sim.stabilize();
        let after = probe(&mut sim, p.trials, true);
        rows.push(Row {
            scenario: format!("random {:.0}% fail", frac * 100.0),
            delivered_no_repair: no_repair,
            correct_after_repair: after,
        });
    }

    // Adjacent-run failure just below the ⌊l/2⌋ bound: kill (l/2 − 1)
    // ring-adjacent nodes. Delivery must still hold.
    {
        let mut sim = pastry_joined(p.n, p.seed + 1_000, p.cfg);
        let mut handles = sim.live_handles();
        handles.sort_by_key(|h| h.id.0);
        let start = sim.engine.rng().random_range(0..p.n);
        for j in 0..half.saturating_sub(1) {
            sim.engine.kill(handles[(start + j) % p.n].addr);
        }
        let no_repair = probe(&mut sim, p.trials, false);
        sim.stabilize();
        sim.stabilize();
        let after = probe(&mut sim, p.trials, true);
        rows.push(Row {
            scenario: format!("{} adjacent fail (< l/2)", half.saturating_sub(1)),
            delivered_no_repair: no_repair,
            correct_after_repair: after,
        });
    }

    Result {
        rows,
        adjacency_bound: half,
    }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            format!(
                "E5: delivery under simultaneous failures (bound: {} adjacent)",
                self.adjacency_bound
            ),
            &[
                "scenario",
                "delivered (no repair)",
                "correct root (after repair)",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.scenario.clone(),
                pct(r.delivered_no_repair),
                pct(r.correct_after_repair),
            ]);
        }
        t.note("paper: eventual delivery unless floor(l/2) adjacent nodes fail at once");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_restores_full_delivery() {
        let p = Params {
            n: 200,
            fail_fractions: vec![0.10],
            trials: 120,
            ..Params::default()
        };
        let r = run(&p);
        for row in &r.rows {
            assert!(
                row.delivered_no_repair > 0.90,
                "{}: {} without repair",
                row.scenario,
                row.delivered_no_repair
            );
            assert!(
                row.correct_after_repair > 0.99,
                "{}: {} after repair",
                row.scenario,
                row.correct_after_repair
            );
        }
    }
}
