//! E9 — randomized routing around malicious nodes.
//!
//! Paper claim: "the routing is actually randomized ... In the event of a
//! malicious or failed node along the path, the query may have to be
//! repeated several times by the client, until a route is chosen that
//! avoids the bad node", and "a retried operation will eventually be
//! routed around the malicious node".

use crate::common::pastry_joined;
use crate::report::{pct, ExpTable};
use past_pastry::{Behavior, Config, Id};
use std::collections::HashSet;

/// Parameters for E9.
#[derive(Clone, Debug)]
pub struct Params {
    /// Network size.
    pub n: usize,
    /// Malicious-node fractions to sweep.
    pub malicious_fractions: Vec<f64>,
    /// Distinct keys probed per scenario.
    pub keys: usize,
    /// Retries allowed per key.
    pub retries: usize,
    /// Randomization strength for the randomized variant.
    pub randomization: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Pastry configuration.
    pub cfg: Config,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            n: 400,
            malicious_fractions: vec![0.05, 0.15, 0.30],
            keys: 150,
            retries: 8,
            randomization: 0.5,
            seed: 122,
            cfg: Config::default(),
        }
    }
}

impl Params {
    /// Paper-scale run.
    pub fn paper() -> Params {
        Params {
            n: 2_000,
            keys: 500,
            ..Params::default()
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Fraction of malicious nodes.
    pub malicious: f64,
    /// Success within the retry budget, deterministic routing.
    pub deterministic: f64,
    /// Success within the retry budget, randomized routing.
    pub randomized: f64,
    /// Mean retries needed on randomized successes.
    pub mean_retries: f64,
}

/// E9 result.
#[derive(Clone, Debug)]
pub struct Result {
    /// One row per malicious fraction.
    pub rows: Vec<Row>,
    /// Retry budget used.
    pub retries: usize,
}

/// Runs E9.
pub fn run(p: &Params) -> Result {
    let mut rows = Vec::new();
    for (i, &frac) in p.malicious_fractions.iter().enumerate() {
        let mut sim = pastry_joined(p.n, p.seed + i as u64, p.cfg);
        // Mark malicious nodes.
        let bad_count = ((p.n as f64) * frac) as usize;
        let mut bad = HashSet::new();
        while bad.len() < bad_count {
            let v = sim.engine.rng().random_range(0..p.n);
            if bad.insert(v) {
                sim.engine.node_mut(v).behavior = Behavior::DropRoutes;
            }
        }
        // Choose keys with honest roots and honest origins.
        let mut probes = Vec::new();
        while probes.len() < p.keys {
            let key = Id(sim.engine.rng().random());
            let from = sim.engine.rng().random_range(0..p.n);
            let root = sim.true_root(&key).expect("nodes exist").addr;
            if !bad.contains(&from) && !bad.contains(&root) {
                probes.push((key, from));
            }
        }

        let mut run_mode = |randomization: f64| -> (f64, f64) {
            for a in 0..p.n {
                sim.engine.node_mut(a).state.cfg.route_randomization = randomization;
            }
            let mut ok = 0usize;
            let mut retry_sum = 0usize;
            for &(key, from) in &probes {
                for attempt in 0..p.retries {
                    sim.route(from, key, ());
                    if !sim.drain_deliveries().is_empty() {
                        ok += 1;
                        retry_sum += attempt;
                        break;
                    }
                }
            }
            (
                ok as f64 / probes.len() as f64,
                retry_sum as f64 / ok.max(1) as f64,
            )
        };

        let (det, _) = run_mode(0.0);
        let (rand_ok, mean_retries) = run_mode(p.randomization);
        rows.push(Row {
            malicious: frac,
            deterministic: det,
            randomized: rand_ok,
            mean_retries,
        });
    }
    Result {
        rows,
        retries: p.retries,
    }
}

impl Result {
    /// Renders the table.
    pub fn table(&self) -> ExpTable {
        let mut t = ExpTable::new(
            format!(
                "E9: routing around malicious nodes ({} retries)",
                self.retries
            ),
            &["malicious", "deterministic", "randomized", "mean retries"],
        );
        for r in &self.rows {
            t.row(vec![
                pct(r.malicious),
                pct(r.deterministic),
                pct(r.randomized),
                format!("{:.2}", r.mean_retries),
            ]);
        }
        t.note("paper: randomized retries eventually route around bad nodes");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomization_beats_deterministic_under_attack() {
        let p = Params {
            n: 250,
            malicious_fractions: vec![0.20],
            keys: 80,
            ..Params::default()
        };
        let r = run(&p);
        let row = &r.rows[0];
        assert!(
            row.randomized > row.deterministic,
            "randomized {} should beat deterministic {}",
            row.randomized,
            row.deterministic
        );
        assert!(
            row.randomized > 0.9,
            "randomized success too low: {}",
            row.randomized
        );
    }
}
