//! Shared builders for the experiment suite.

use past_core::{BuildMode, PastConfig, PastNetwork};
use past_crypto::rng::Rng;
use past_netsim::Sphere;
use past_pastry::{random_ids, static_build, Config, Id, NullApp, PastrySim};

/// Generates `n` distinct node ids from `seed`.
pub fn ids(n: usize, seed: u64) -> Vec<Id> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x4944);
    random_ids(n, &mut rng)
}

/// A routing-only Pastry network built statically on a sphere.
pub fn pastry_static(
    n: usize,
    seed: u64,
    cfg: Config,
    locality_samples: usize,
) -> PastrySim<NullApp, Sphere> {
    let ids = ids(n, seed);
    static_build(
        Sphere::new(n, seed),
        cfg,
        seed,
        &ids,
        |_| NullApp,
        locality_samples,
    )
}

/// A routing-only Pastry network built by sequential protocol joins.
pub fn pastry_joined(n: usize, seed: u64, cfg: Config) -> PastrySim<NullApp, Sphere> {
    let ids = ids(n, seed);
    let mut sim = PastrySim::new(Sphere::new(n, seed), cfg, seed);
    sim.build_by_joins(&ids, |_| NullApp, 16);
    sim
}

/// A full PAST network on a sphere with uniform capacities and quotas.
pub fn past_network(
    n: usize,
    seed: u64,
    pastry_cfg: Config,
    past_cfg: PastConfig,
    capacity: u64,
    quota: u64,
    mode: BuildMode,
) -> PastNetwork<Sphere> {
    let ids = ids(n, seed);
    PastNetwork::build(
        Sphere::new(n, seed),
        pastry_cfg,
        past_cfg,
        seed,
        &ids,
        &vec![capacity; n],
        &vec![quota; n],
        mode,
    )
}

/// A full PAST network with per-node capacities.
pub fn past_network_caps(
    n: usize,
    seed: u64,
    pastry_cfg: Config,
    past_cfg: PastConfig,
    capacities: &[u64],
    quota: u64,
    mode: BuildMode,
) -> PastNetwork<Sphere> {
    let ids = ids(n, seed);
    PastNetwork::build(
        Sphere::new(n, seed),
        pastry_cfg,
        past_cfg,
        seed,
        &ids,
        capacities,
        &vec![quota; n],
        mode,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_and_deterministic() {
        let a = ids(100, 7);
        let b = ids(100, 7);
        assert_eq!(a, b);
        let set: std::collections::HashSet<u128> = a.iter().map(|i| i.0).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn builders_produce_working_networks() {
        let mut s = pastry_static(200, 1, Config::default(), 2);
        s.route(0, Id(42), ());
        assert_eq!(s.drain_deliveries().len(), 1);
    }
}
