//! Canned simulation scenarios for the CI invariant gate.
//!
//! Each scenario builds a PAST deployment, drives a workload to
//! quiescence, snapshots the whole system, and returns every I1–I5
//! violation found (an empty vector means the gate passes). The same
//! scenarios back the `invariants` binary run by `scripts/ci.sh`.

use crate::{check_all, Violation};
use past_core::{
    BuildMode, ContentRef, PastApp, PastConfig, PastNetwork, PastOut, ShardedPastNetwork,
};
use past_crypto::rng::Rng;
use past_netsim::{
    FaultConfig, SeriesConfig, ShardConfig, SimBackend, SimTime, Sphere, TraceConfig, Tracer,
};
use past_pastry::{random_ids, Config as PastryConfig, Id, PastryNode, RecoveryConfig};
use std::collections::BTreeSet;

const MB: u64 = 1 << 20;

/// Delay floor (and shard window) for sharded scenarios: the sharded
/// engine requires `window_us ≤ min_delay_us`, and `Sphere::new` has a
/// 1 µs floor, so sharded runs use the floored variant.
const SHARD_FLOOR_US: u64 = 2_000;

fn pastry_cfg() -> PastryConfig {
    // l = 16 keeps k ≤ l/2 for k = 5 (the paper's configuration): a k-set
    // member must be able to see the whole k-set inside its own leaf set,
    // or it cannot tell whether it still belongs to it.
    PastryConfig {
        leaf_len: 16,
        neighborhood_len: 8,
        ..PastryConfig::default()
    }
}

/// Builds an `n`-node network over a topology with `slots ≥ n` seats
/// (spare seats allow later joins).
fn build_net(
    slots: usize,
    n: usize,
    seed: u64,
    capacity: u64,
    quota: u64,
    past_cfg: PastConfig,
) -> (PastNetwork<Sphere>, Vec<Id>) {
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(slots, &mut rng);
    let net = PastNetwork::build(
        Sphere::new(slots, seed),
        pastry_cfg(),
        past_cfg,
        seed,
        &ids[..n],
        &vec![capacity; n],
        &vec![quota; n],
        BuildMode::ProtocolJoins,
    );
    (net, ids)
}

/// Like [`build_net`], but on the sharded backend (4 shards over a
/// delay-floored sphere so the shard window is sound).
fn build_net_sharded(
    slots: usize,
    n: usize,
    seed: u64,
    capacity: u64,
    quota: u64,
    past_cfg: PastConfig,
) -> (ShardedPastNetwork<Sphere>, Vec<Id>) {
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(slots, &mut rng);
    let net = PastNetwork::build_sharded(
        Sphere::with_delay_floor(slots, seed, SHARD_FLOOR_US),
        pastry_cfg(),
        past_cfg,
        seed,
        &ids[..n],
        &vec![capacity; n],
        &vec![quota; n],
        BuildMode::ProtocolJoins,
        ShardConfig {
            shards: 4,
            window_us: SHARD_FLOOR_US,
        },
    )
    .expect("window equals the delay floor, so the sharded build is sound");
    (net, ids)
}

fn check_at<B>(context: &str, net: &PastNetwork<Sphere, B>, out: &mut Vec<Violation>)
where
    B: SimBackend<PastryNode<PastApp>, Topo = Sphere>,
{
    for mut v in check_all(&net.snapshot()) {
        v.detail = format!("[{context}] {}", v.detail);
        out.push(v);
    }
}

/// Scenario 1 — bulk join: 40 protocol joins, an insert/lookup workload,
/// and a duplicate insert (which must conserve quota via zero-`stored`
/// receipts).
pub fn bulk_join(seed: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (mut net, _) = build_net(40, 40, seed, 200 * MB, 2_000 * MB, PastConfig::default());
    net.run();
    check_at("after bulk join", &net, &mut violations);

    let mut fids = Vec::new();
    for i in 0..8u64 {
        let name = format!("bulk-{i}");
        let content = ContentRef::synthetic(seed as usize, &name, (1 + i % 3) * MB);
        let client = (i as usize * 5) % 40;
        if net.insert(client, &name, content, 5).is_ok() {
            let events = net.run();
            for (_, _, e) in events {
                if let past_core::PastOut::InsertOk { file_id, .. } = e {
                    fids.push((client, name.clone(), content, file_id));
                }
            }
        }
    }
    for (_, fid) in fids.iter().map(|(c, _, _, f)| (c, f)) {
        net.lookup(7, *fid);
    }
    net.run();
    check_at("after insert/lookup workload", &net, &mut violations);

    // Re-insert an existing file: holders answer with zero-`stored`
    // receipts and the duplicate debit must be returned in full.
    if let Some((client, name, content, _)) = fids.first() {
        // The duplicate submission itself must be accepted (holders
        // reject it later with zero-`stored` receipts); a checker must
        // fail loudly if it cannot even be issued (rule E1).
        net.insert(*client, name, *content, 5)
            .expect("duplicate insert submission accepted");
        net.run();
        check_at("after duplicate insert", &net, &mut violations);
    }
    violations
}

/// Scenario 2 — churn: an insert workload, then node failures, repair,
/// recoveries and fresh joins, checking at every quiesce point.
pub fn churn(seed: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (mut net, ids) = build_net(48, 40, seed, 200 * MB, 2_000 * MB, PastConfig::default());

    for i in 0..6u64 {
        let name = format!("churn-{i}");
        let content = ContentRef::synthetic((seed ^ 1) as usize, &name, MB);
        net.insert((i as usize) % 6, &name, content, 5)
            .expect("churn insert submission accepted");
    }
    net.run();
    check_at("after insert workload", &net, &mut violations);

    // Fail 5 nodes (disjoint from the client set 0..6).
    for a in 20..25 {
        net.sim.engine.kill(a);
    }
    net.sim.stabilize();
    net.sim.stabilize();
    net.run();
    check_at("after failing 5 nodes", &net, &mut violations);

    // Two failed nodes come back with their old state...
    for a in 20..22 {
        net.sim.recover_node(a);
    }
    net.sim.stabilize();
    net.run();
    check_at("after recovering 2 nodes", &net, &mut violations);

    // ...and 3 brand-new nodes join.
    for (j, id) in ids[40..43].iter().enumerate() {
        let card = net
            .broker
            .issue_card(format!("late-{j}").as_bytes(), 2_000 * MB, 200 * MB);
        let app = PastApp::new(net.past_cfg(), card, 200 * MB, &net.broker);
        net.sim.join_node_nearby(*id, app, 4);
        net.run();
    }
    net.sim.stabilize();
    net.run();
    check_at("after 3 fresh joins", &net, &mut violations);
    violations
}

/// Scenario 3 — quota/reclaim under storage pressure: tiny disks force
/// replica diversion (pointers), then reclaims must settle every card's
/// quota exactly.
pub fn quota_reclaim(seed: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    let cfg = PastConfig {
        t_pri: 0.6,
        t_div: 0.55,
        ..PastConfig::default()
    };
    let (mut net, _) = build_net(30, 30, seed, 12 * MB, 10_000 * MB, cfg);

    let mut rng = Rng::seed_from_u64(seed ^ 2);
    let mut inserted = Vec::new();
    for i in 0..20u64 {
        let name = format!("press-{i}");
        let content = ContentRef::synthetic((seed ^ 3) as usize, &name, 4 * MB);
        let client = rng.random_range(0..30);
        if net.insert(client, &name, content, 3).is_err() {
            continue;
        }
        let events = net.run();
        for (_, _, e) in events {
            if let past_core::PastOut::InsertOk { file_id, .. } = e {
                inserted.push((client, file_id));
            }
        }
    }
    check_at("after pressure workload", &net, &mut violations);

    // Reclaim every other successful insert.
    for (client, fid) in inserted.iter().step_by(2) {
        net.reclaim(*client, *fid);
        net.run();
    }
    check_at("after reclaims", &net, &mut violations);
    violations
}

/// Scenario 4 — lossy churn: the churn scenario's shape re-run over a
/// faulty network (5% loss, 1% duplication, 20 ms jitter) with the
/// recovery machinery on. Beyond I1–I5 at every quiesce point, it
/// asserts liveness: every client operation issued under loss must
/// terminate in an explicit success or failure event (reported as a
/// synthetic "OP" violation otherwise — a hung request).
pub fn lossy_churn(seed: u64) -> Vec<Violation> {
    // Tracing never perturbs the simulation, so delegating with tracing
    // off yields exactly the violations a dedicated untraced run would.
    lossy_churn_traced(seed, TraceConfig::off()).0
}

/// [`lossy_churn`] with a trace sink attached: returns the violations
/// plus the tracer holding the run's records (fed to `tracecheck` by
/// the CI gate).
pub fn lossy_churn_traced(seed: u64, trace: TraceConfig) -> (Vec<Violation>, Tracer) {
    let (mut net, ids) = build_net(48, 40, seed, 400 * MB, 4_000 * MB, lossy_cfg());
    drive_lossy_churn(&mut net, &ids, seed, trace)
}

/// Scenario 6 — lossy churn on the sharded backend: the same workload as
/// [`lossy_churn`] driven through `ShardedEngine` (4 shards over a
/// delay-floored sphere). I1–I5 and the liveness check must hold there
/// exactly as on the sequential engine.
pub fn lossy_churn_sharded(seed: u64) -> Vec<Violation> {
    lossy_churn_sharded_traced(seed, TraceConfig::off()).0
}

/// [`lossy_churn_sharded`] with a trace sink attached.
pub fn lossy_churn_sharded_traced(seed: u64, trace: TraceConfig) -> (Vec<Violation>, Tracer) {
    let (mut net, ids) = build_net_sharded(48, 40, seed, 400 * MB, 4_000 * MB, lossy_cfg());
    drive_lossy_churn(&mut net, &ids, seed, trace)
}

fn lossy_cfg() -> PastConfig {
    PastConfig {
        request_timeout_us: Some(800_000),
        request_attempts: 5,
        ..PastConfig::default()
    }
}

/// The lossy-churn workload, generic over the simulation backend:
/// inserts under loss, node failures, recoveries, fresh joins, lookups
/// and reclaims, with I1–I5 checked at every quiesce point and explicit
/// termination demanded for every issued operation.
fn drive_lossy_churn<B>(
    net: &mut PastNetwork<Sphere, B>,
    ids: &[Id],
    seed: u64,
    trace: TraceConfig,
) -> (Vec<Violation>, Tracer)
where
    B: SimBackend<PastryNode<PastApp>, Topo = Sphere>,
{
    let mut violations = Vec::new();
    // Ample disks and quotas (set by the builders): this scenario
    // stresses message loss, not storage pressure.
    net.sim.engine.set_tracing(trace);
    if trace.any() {
        // Traced runs also carry the flight recorder so `obsreport` can
        // gate the scenario's health series in CI.
        net.sim.engine.set_series(SeriesConfig::new(1_000_000));
    }
    net.run();

    // Switch the overlay into loss-recovery mode, then turn the faults on.
    net.sim.set_recovery(RecoveryConfig::default());
    net.sim.engine.set_faults(
        FaultConfig {
            loss: 0.05,
            duplicate: 0.01,
            jitter_us: 20_000,
        },
        seed ^ 0xfa17,
    );

    let mut events: Vec<past_core::PastEvent> = Vec::new();
    let mut insert_reqs = BTreeSet::new();
    for i in 0..8u64 {
        let name = format!("lossy-{i}");
        let content = ContentRef::synthetic((seed ^ 4) as usize, &name, (1 + i % 3) * MB);
        if let Ok(req) = net.insert((i as usize) % 8, &name, content, 5) {
            insert_reqs.insert(req);
        }
        events.extend(net.run());
    }
    net.sim.stabilize();
    events.extend(net.run());
    check_at("lossy: after insert workload", &net, &mut violations);

    // Fail 5 nodes; failure detection now needs missed-ack rounds, so run
    // enough heartbeat rounds for every neighbor to pass the limit and
    // for the anti-entropy traffic to heal the holes.
    for a in 20..25 {
        net.sim.engine.kill(a);
    }
    for _ in 0..5 {
        net.sim.stabilize();
    }
    events.extend(net.run());
    check_at("lossy: after failing 5 nodes", &net, &mut violations);

    // Two failed nodes recover with their old state and three brand-new
    // nodes join through the retried join protocol.
    for a in 20..22 {
        net.sim.recover_node(a);
    }
    for _ in 0..3 {
        net.sim.stabilize();
    }
    events.extend(net.run());
    for (j, id) in ids[40..43].iter().enumerate() {
        let card =
            net.broker
                .issue_card(format!("lossy-late-{j}").as_bytes(), 4_000 * MB, 400 * MB);
        let app = PastApp::new(net.past_cfg(), card, 400 * MB, &net.broker);
        net.sim.join_node_nearby(*id, app, 4);
        events.extend(net.run());
    }
    net.sim.stabilize();
    events.extend(net.run());
    check_at(
        "lossy: after recoveries and fresh joins",
        &net,
        &mut violations,
    );

    // Look up everything inserted, reclaim every other file, and demand
    // explicit termination for each operation.
    let inserted: Vec<_> = events
        .iter()
        .filter_map(|(_, _, e)| match e {
            PastOut::InsertOk { file_id, .. } => Some(*file_id),
            _ => None,
        })
        .collect();
    for fid in &inserted {
        net.lookup(7, *fid);
        events.extend(net.run());
    }
    let reclaimed: Vec<_> = inserted.iter().copied().step_by(2).collect();
    for fid in &reclaimed {
        net.reclaim(1, *fid);
        events.extend(net.run());
    }
    net.sim.stabilize();
    net.sim.stabilize();
    events.extend(net.run());
    check_at("lossy: final", &net, &mut violations);

    // Liveness: every issued operation produced a terminal event.
    let mut insert_done = BTreeSet::new();
    let mut lookup_done = BTreeSet::new();
    let mut reclaim_done = BTreeSet::new();
    for (_, _, e) in &events {
        match e {
            PastOut::InsertOk { request_id, .. } | PastOut::InsertFailed { request_id, .. } => {
                insert_done.insert(*request_id);
            }
            PastOut::LookupOk { file_id, .. } | PastOut::LookupFailed { file_id } => {
                lookup_done.insert(*file_id);
            }
            PastOut::ReclaimCredited { file_id, .. }
            | PastOut::ReclaimDenied { file_id }
            | PastOut::ReclaimFailed { file_id } => {
                reclaim_done.insert(*file_id);
            }
            _ => {}
        }
    }
    for req in &insert_reqs {
        if !insert_done.contains(req) {
            violations.push(Violation {
                invariant: "OP",
                addr: None,
                detail: format!("[lossy] insert request {req} never terminated"),
            });
        }
    }
    for fid in &inserted {
        if !lookup_done.contains(fid) {
            violations.push(Violation {
                invariant: "OP",
                addr: None,
                detail: format!("[lossy] lookup of {fid:?} never terminated"),
            });
        }
    }
    for fid in &reclaimed {
        if !reclaim_done.contains(fid) {
            violations.push(Violation {
                invariant: "OP",
                addr: None,
                detail: format!("[lossy] reclaim of {fid:?} never terminated"),
            });
        }
    }
    (violations, net.sim.engine.take_tracer())
}

/// Scenario 5 — wheel horizon: rides the deployment across timer-wheel
/// cascade boundaries. The hierarchical wheel re-files pending events
/// whenever the clock crosses a `64^k` µs slot edge, so those ticks are
/// where a filing bug would reorder or drop timers; it would surface
/// here as stuck heartbeats, failed repair (I1–I5 violations) or a
/// lookup that never completes.
pub fn wheel_horizon(seed: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (mut net, _) = build_net(40, 40, seed, 200 * MB, 2_000 * MB, PastConfig::default());
    net.run();
    check_at("wheel: after build", &net, &mut violations);

    // Cross a level-1 (64² µs), level-2 (64³ µs) and level-3
    // (64⁴ µs ≈ 17 s of simulated time) slot edge in turn, each with a
    // fresh insert in flight and a lookup issued on the far side.
    for (round, span) in [4_096u64, 262_144, 16_777_216].into_iter().enumerate() {
        let name = format!("horizon-{round}");
        let content = ContentRef::synthetic(seed as usize, &name, MB);
        let mut fid = None;
        if net.insert((round * 11) % 40, &name, content, 5).is_ok() {
            for (_, _, e) in net.run() {
                if let PastOut::InsertOk { file_id, .. } = e {
                    fid = Some(file_id);
                }
            }
        }
        // Park the clock exactly on the next slot edge of this level,
        // then keep going: everything pending must survive the cascade.
        let edge = (net.sim.engine.now().as_micros() / span + 1) * span;
        net.sim.engine.run_until(SimTime::from_micros(edge));
        net.sim.stabilize();
        let mut found = fid.is_none();
        if let Some(fid) = fid {
            net.lookup((round * 7 + 1) % 40, fid);
        }
        for (_, _, e) in net.run() {
            if matches!(e, PastOut::LookupOk { .. }) {
                found = true;
            }
        }
        if !found {
            violations.push(Violation {
                invariant: "OP",
                addr: None,
                detail: format!("[wheel] lookup issued after the {span} µs edge never succeeded"),
            });
        }
        check_at(
            &format!("wheel: after the {span} µs edge"),
            &net,
            &mut violations,
        );
    }
    violations
}

/// Runs every scenario with its default seed; `(name, violations)` pairs.
pub fn run_all() -> Vec<(&'static str, Vec<Violation>)> {
    vec![
        ("bulk-join", bulk_join(1)),
        ("churn", churn(2)),
        ("quota-reclaim", quota_reclaim(3)),
        ("lossy-churn", lossy_churn(4)),
        ("wheel-horizon", wheel_horizon(5)),
        ("lossy-churn-sharded", lossy_churn_sharded(6)),
    ]
}
