//! Canned simulation scenarios for the CI invariant gate.
//!
//! Each scenario builds a PAST deployment, drives a workload to
//! quiescence, snapshots the whole system, and returns every I1–I5
//! violation found (an empty vector means the gate passes). The same
//! scenarios back the `invariants` binary run by `scripts/ci.sh`.

use crate::{check_all, Violation};
use past_core::{BuildMode, ContentRef, PastApp, PastConfig, PastNetwork};
use past_crypto::rng::Rng;
use past_netsim::Sphere;
use past_pastry::{random_ids, Config as PastryConfig, Id};

const MB: u64 = 1 << 20;

fn pastry_cfg() -> PastryConfig {
    // l = 16 keeps k ≤ l/2 for k = 5 (the paper's configuration): a k-set
    // member must be able to see the whole k-set inside its own leaf set,
    // or it cannot tell whether it still belongs to it.
    PastryConfig {
        leaf_len: 16,
        neighborhood_len: 8,
        ..PastryConfig::default()
    }
}

/// Builds an `n`-node network over a topology with `slots ≥ n` seats
/// (spare seats allow later joins).
fn build_net(
    slots: usize,
    n: usize,
    seed: u64,
    capacity: u64,
    quota: u64,
    past_cfg: PastConfig,
) -> (PastNetwork<Sphere>, Vec<Id>) {
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(slots, &mut rng);
    let net = PastNetwork::build(
        Sphere::new(slots, seed),
        pastry_cfg(),
        past_cfg,
        seed,
        &ids[..n],
        &vec![capacity; n],
        &vec![quota; n],
        BuildMode::ProtocolJoins,
    );
    (net, ids)
}

fn check_at(context: &str, net: &PastNetwork<Sphere>, out: &mut Vec<Violation>) {
    for mut v in check_all(&net.snapshot()) {
        v.detail = format!("[{context}] {}", v.detail);
        out.push(v);
    }
}

/// Scenario 1 — bulk join: 40 protocol joins, an insert/lookup workload,
/// and a duplicate insert (which must conserve quota via zero-`stored`
/// receipts).
pub fn bulk_join(seed: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (mut net, _) = build_net(40, 40, seed, 200 * MB, 2_000 * MB, PastConfig::default());
    net.run();
    check_at("after bulk join", &net, &mut violations);

    let mut fids = Vec::new();
    for i in 0..8u64 {
        let name = format!("bulk-{i}");
        let content = ContentRef::synthetic(seed as usize, &name, (1 + i % 3) * MB);
        let client = (i as usize * 5) % 40;
        if net.insert(client, &name, content, 5).is_ok() {
            let events = net.run();
            for (_, _, e) in events {
                if let past_core::PastOut::InsertOk { file_id, .. } = e {
                    fids.push((client, name.clone(), content, file_id));
                }
            }
        }
    }
    for (_, fid) in fids.iter().map(|(c, _, _, f)| (c, f)) {
        net.lookup(7, *fid);
    }
    net.run();
    check_at("after insert/lookup workload", &net, &mut violations);

    // Re-insert an existing file: holders answer with zero-`stored`
    // receipts and the duplicate debit must be returned in full.
    if let Some((client, name, content, _)) = fids.first() {
        let _ = net.insert(*client, name, *content, 5);
        net.run();
        check_at("after duplicate insert", &net, &mut violations);
    }
    violations
}

/// Scenario 2 — churn: an insert workload, then node failures, repair,
/// recoveries and fresh joins, checking at every quiesce point.
pub fn churn(seed: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (mut net, ids) = build_net(48, 40, seed, 200 * MB, 2_000 * MB, PastConfig::default());

    for i in 0..6u64 {
        let name = format!("churn-{i}");
        let content = ContentRef::synthetic((seed ^ 1) as usize, &name, MB);
        let _ = net.insert((i as usize) % 6, &name, content, 5);
    }
    net.run();
    check_at("after insert workload", &net, &mut violations);

    // Fail 5 nodes (disjoint from the client set 0..6).
    for a in 20..25 {
        net.sim.engine.kill(a);
    }
    net.sim.stabilize();
    net.sim.stabilize();
    net.run();
    check_at("after failing 5 nodes", &net, &mut violations);

    // Two failed nodes come back with their old state...
    for a in 20..22 {
        net.sim.recover_node(a);
    }
    net.sim.stabilize();
    net.run();
    check_at("after recovering 2 nodes", &net, &mut violations);

    // ...and 3 brand-new nodes join.
    for (j, id) in ids[40..43].iter().enumerate() {
        let card = net
            .broker
            .issue_card(format!("late-{j}").as_bytes(), 2_000 * MB, 200 * MB);
        let app = PastApp::new(net.past_cfg(), card, 200 * MB, &net.broker);
        net.sim.join_node_nearby(*id, app, 4);
        net.run();
    }
    net.sim.stabilize();
    net.run();
    check_at("after 3 fresh joins", &net, &mut violations);
    violations
}

/// Scenario 3 — quota/reclaim under storage pressure: tiny disks force
/// replica diversion (pointers), then reclaims must settle every card's
/// quota exactly.
pub fn quota_reclaim(seed: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    let cfg = PastConfig {
        t_pri: 0.6,
        t_div: 0.55,
        ..PastConfig::default()
    };
    let (mut net, _) = build_net(30, 30, seed, 12 * MB, 10_000 * MB, cfg);

    let mut rng = Rng::seed_from_u64(seed ^ 2);
    let mut inserted = Vec::new();
    for i in 0..20u64 {
        let name = format!("press-{i}");
        let content = ContentRef::synthetic((seed ^ 3) as usize, &name, 4 * MB);
        let client = rng.random_range(0..30);
        if net.insert(client, &name, content, 3).is_err() {
            continue;
        }
        let events = net.run();
        for (_, _, e) in events {
            if let past_core::PastOut::InsertOk { file_id, .. } = e {
                inserted.push((client, file_id));
            }
        }
    }
    check_at("after pressure workload", &net, &mut violations);

    // Reclaim every other successful insert.
    for (client, fid) in inserted.iter().step_by(2) {
        net.reclaim(*client, *fid);
        net.run();
    }
    check_at("after reclaims", &net, &mut violations);
    violations
}

/// Runs every scenario with its default seed; `(name, violations)` pairs.
pub fn run_all() -> Vec<(&'static str, Vec<Violation>)> {
    vec![
        ("bulk-join", bulk_join(1)),
        ("churn", churn(2)),
        ("quota-reclaim", quota_reclaim(3)),
    ]
}
