//! Protocol-invariant checker over quiesced simulation snapshots.
//!
//! The paper's correctness argument leans on structural properties that
//! every honest deployment maintains once join/repair traffic quiesces.
//! This crate checks them mechanically against the snapshots exposed by
//! [`past_pastry::PastrySim::snapshot_overlay`] and
//! `past_core::PastNetwork::snapshot`:
//!
//! - **I1 — leaf-set symmetry.** If node A lists node B in its leaf set,
//!   then B lists A (membership is mutual once joins quiesce), every
//!   listed handle names a real node, and no node is listed twice.
//! - **I2 — leaf-set correctness.** Each half of a node's leaf set holds
//!   exactly the true `l/2` numerically nearest *live* ids on that side
//!   of the global ring, nearest-first ("the set of nodes with the l/2
//!   numerically closest larger nodeIds, and the l/2 nodes with
//!   numerically closest smaller nodeIds").
//! - **I3 — routing-table prefix validity.** The entry at row `i`,
//!   column `c` shares exactly an `i`-digit prefix with the owner and has
//!   `c` as its `i+1`-th digit. Entries may be stale (dead) — repair is
//!   lazy — but never mis-filed.
//! - **I4 — store accounting.** `used` equals the sum of stored
//!   certificate sizes, the cache's accounting is exact and fits in free
//!   space, and diversion pointers / cache entries never alias a locally
//!   stored file.
//! - **I5 — quota conservation.** Per smartcard: cumulative debits minus
//!   cumulative credits equals the bytes currently stored on the card's
//!   behalf (across all live nodes) plus bytes still in flight; credits
//!   never exceed debits (no double-credit).
//!
//! Checks run at quiesce points; transient states mid-join or mid-repair
//! are allowed to violate them.

pub mod scenarios;

use past_core::PastSnapshot;
use past_netsim::Addr;
use past_pastry::{Id, NodeSnapshot, OverlaySnapshot};
use std::collections::BTreeMap;

/// One invariant violation: which invariant, where, and a counterexample.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Invariant id ("I1".."I5").
    pub invariant: &'static str,
    /// The node the violation was observed at, if any.
    pub addr: Option<Addr>,
    /// Human-readable counterexample.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.addr {
            Some(a) => write!(f, "{} @node {}: {}", self.invariant, a, self.detail),
            None => write!(f, "{} (global): {}", self.invariant, self.detail),
        }
    }
}

fn hex(id: &Id) -> String {
    format!("{:032x}", id.0)
}

/// The ring side of `id` relative to `own`, mirroring
/// [`past_pastry::LeafSet::side_of`]: larger iff the clockwise distance
/// does not exceed the counter-clockwise one.
fn is_larger_side(own: &Id, id: &Id) -> bool {
    own.cw_dist(id) <= id.cw_dist(own)
}

/// Checks I1–I3 over an overlay snapshot.
pub fn check_overlay(snap: &OverlaySnapshot) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Ground truth: id of every node (live or not) and the live-joined set.
    let id_of: BTreeMap<Addr, Id> = snap.nodes.iter().map(|n| (n.addr, n.id)).collect();
    let live: Vec<&NodeSnapshot> = snap.live_joined().collect();
    let member_of: BTreeMap<Addr, &NodeSnapshot> = live.iter().map(|n| (n.addr, *n)).collect();

    for node in &live {
        check_leaf_handles(node, &id_of, &member_of, &mut violations);
        check_leaf_contents(node, &live, &mut violations);
        check_table_prefixes(node, &id_of, &mut violations);
    }
    violations
}

/// I1: handle identity, no duplicates, and symmetry of live members.
fn check_leaf_handles(
    node: &NodeSnapshot,
    id_of: &BTreeMap<Addr, Id>,
    member_of: &BTreeMap<Addr, &NodeSnapshot>,
    violations: &mut Vec<Violation>,
) {
    let mut seen_addrs = BTreeMap::new();
    let mut seen_ids = BTreeMap::new();
    for m in node.leaf_smaller.iter().chain(&node.leaf_larger) {
        match id_of.get(&m.addr) {
            None => violations.push(Violation {
                invariant: "I1",
                addr: Some(node.addr),
                detail: format!("leaf set lists nonexistent node {}", m.addr),
            }),
            Some(true_id) if *true_id != m.id => violations.push(Violation {
                invariant: "I1",
                addr: Some(node.addr),
                detail: format!(
                    "leaf handle for node {} carries id {} but that node's id is {}",
                    m.addr,
                    hex(&m.id),
                    hex(true_id)
                ),
            }),
            Some(_) => {}
        }
        if seen_addrs.insert(m.addr, ()).is_some() {
            violations.push(Violation {
                invariant: "I1",
                addr: Some(node.addr),
                detail: format!("leaf set lists node {} twice", m.addr),
            });
        }
        if seen_ids.insert(m.id.0, ()).is_some() {
            violations.push(Violation {
                invariant: "I1",
                addr: Some(node.addr),
                detail: format!("leaf set lists id {} twice", hex(&m.id)),
            });
        }
        if let Some(peer) = member_of.get(&m.addr) {
            let mutual = peer
                .leaf_smaller
                .iter()
                .chain(&peer.leaf_larger)
                .any(|pm| pm.addr == node.addr);
            if !mutual {
                violations.push(Violation {
                    invariant: "I1",
                    addr: Some(node.addr),
                    detail: format!(
                        "lists node {} in its leaf set, but {} does not list {} back",
                        m.addr, m.addr, node.addr
                    ),
                });
            }
        }
    }
}

/// I2: each half equals the true `l/2` nearest live ids, nearest-first.
fn check_leaf_contents(
    node: &NodeSnapshot,
    live: &[&NodeSnapshot],
    violations: &mut Vec<Violation>,
) {
    let own = node.id;
    let mut larger: Vec<Id> = Vec::new();
    let mut smaller: Vec<Id> = Vec::new();
    for other in live {
        if other.addr == node.addr {
            continue;
        }
        if is_larger_side(&own, &other.id) {
            larger.push(other.id);
        } else {
            smaller.push(other.id);
        }
    }
    larger.sort_by_key(|id| own.cw_dist(id));
    smaller.sort_by_key(|id| id.cw_dist(&own));
    larger.truncate(node.leaf_half);
    smaller.truncate(node.leaf_half);

    for (side, expected, actual) in [
        ("larger", &larger, &node.leaf_larger),
        ("smaller", &smaller, &node.leaf_smaller),
    ] {
        let got: Vec<Id> = actual.iter().map(|m| m.id).collect();
        if got != *expected {
            violations.push(Violation {
                invariant: "I2",
                addr: Some(node.addr),
                detail: format!(
                    "{side} half is [{}] but the true nearest live ids are [{}]",
                    got.iter().map(hex).collect::<Vec<_>>().join(", "),
                    expected.iter().map(hex).collect::<Vec<_>>().join(", ")
                ),
            });
        }
    }
}

/// I3: every routing-table entry sits in the slot its id prescribes.
fn check_table_prefixes(
    node: &NodeSnapshot,
    id_of: &BTreeMap<Addr, Id>,
    violations: &mut Vec<Violation>,
) {
    for (row, col, h) in &node.table_slots {
        match id_of.get(&h.addr) {
            None => violations.push(Violation {
                invariant: "I3",
                addr: Some(node.addr),
                detail: format!("table[{row}][{col}] names nonexistent node {}", h.addr),
            }),
            Some(true_id) if *true_id != h.id => violations.push(Violation {
                invariant: "I3",
                addr: Some(node.addr),
                detail: format!(
                    "table[{row}][{col}] handle for node {} carries id {} but that node's id is {}",
                    h.addr,
                    hex(&h.id),
                    hex(true_id)
                ),
            }),
            Some(_) => {}
        }
        let shared = node.id.prefix_len(&h.id, node.b);
        if shared != *row {
            violations.push(Violation {
                invariant: "I3",
                addr: Some(node.addr),
                detail: format!(
                    "table[{row}][{col}] entry {} shares a {shared}-digit prefix with owner {} (want exactly {row})",
                    hex(&h.id),
                    hex(&node.id)
                ),
            });
            continue;
        }
        let digit = h.id.digit(*row, node.b) as usize;
        if digit != *col {
            violations.push(Violation {
                invariant: "I3",
                addr: Some(node.addr),
                detail: format!(
                    "table[{row}][{col}] entry {} has digit {digit} at position {row}, not {col}",
                    hex(&h.id)
                ),
            });
        }
    }
}

/// Checks I4 (store accounting) over a full snapshot.
pub fn check_storage(snap: &PastSnapshot) -> Vec<Violation> {
    let mut violations = Vec::new();
    for st in &snap.stores {
        let sum: u64 = st.files.iter().map(|f| f.size).sum();
        if st.used != sum {
            violations.push(Violation {
                invariant: "I4",
                addr: Some(st.addr),
                detail: format!(
                    "store claims {} bytes used but holds {} bytes of certificates",
                    st.used, sum
                ),
            });
        }
        let cache_sum: u64 = st.cached.iter().map(|(_, s)| s).sum();
        if st.cache_used != cache_sum {
            violations.push(Violation {
                invariant: "I4",
                addr: Some(st.addr),
                detail: format!(
                    "cache claims {} bytes used but holds {} bytes of entries",
                    st.cache_used, cache_sum
                ),
            });
        }
        let free = st.capacity.saturating_sub(st.used);
        if st.cache_used > free {
            violations.push(Violation {
                invariant: "I4",
                addr: Some(st.addr),
                detail: format!(
                    "cache occupies {} bytes but only {} bytes are free",
                    st.cache_used, free
                ),
            });
        }
        for (fid, holder) in &st.pointers {
            if st.files.iter().any(|f| f.file_id == *fid) {
                violations.push(Violation {
                    invariant: "I4",
                    addr: Some(st.addr),
                    detail: format!(
                        "diversion pointer for {fid:?} (to node {holder}) aliases a locally stored file"
                    ),
                });
            }
        }
        for (fid, _) in &st.cached {
            if st.files.iter().any(|f| f.file_id == *fid) {
                violations.push(Violation {
                    invariant: "I4",
                    addr: Some(st.addr),
                    detail: format!("cache entry for {fid:?} aliases a locally stored file"),
                });
            }
        }
    }
    violations
}

/// Checks I5 (quota conservation) over a full snapshot.
///
/// For every smartcard: `debited_total − credited_total` must equal the
/// bytes stored on the card's behalf across all live nodes plus the bytes
/// of its in-flight insertions, and credits must never exceed debits.
pub fn check_quota(snap: &PastSnapshot) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut stored_by_card: BTreeMap<[u8; 32], u64> = BTreeMap::new();
    for st in &snap.stores {
        for f in &st.files {
            *stored_by_card.entry(f.owner).or_insert(0) += f.size;
        }
    }
    for card in &snap.cards {
        if card.credited_total > card.debited_total {
            violations.push(Violation {
                invariant: "I5",
                addr: Some(card.addr),
                detail: format!(
                    "card credited {} bytes but only ever debited {} (double-credit)",
                    card.credited_total, card.debited_total
                ),
            });
            continue;
        }
        let outstanding = card.debited_total - card.credited_total;
        let stored = stored_by_card.get(&card.card_key).copied().unwrap_or(0);
        let backed = stored + card.pending_insert_bytes;
        if outstanding != backed {
            violations.push(Violation {
                invariant: "I5",
                addr: Some(card.addr),
                detail: format!(
                    "outstanding debit is {outstanding} bytes but only {backed} are accounted for \
                     ({stored} stored on the card's behalf + {} in flight)",
                    card.pending_insert_bytes
                ),
            });
        }
    }
    violations
}

/// Runs every invariant (I1–I5) over a full PAST snapshot.
pub fn check_all(snap: &PastSnapshot) -> Vec<Violation> {
    let mut v = check_overlay(&snap.overlay);
    v.extend(check_storage(snap));
    v.extend(check_quota(snap));
    v
}

/// Panics with a readable report if any violation is present (test glue).
///
/// # Panics
///
/// Panics when `violations` is non-empty, listing every violation.
pub fn assert_clean(context: &str, violations: &[Violation]) {
    if violations.is_empty() {
        return;
    }
    let report: Vec<String> = violations.iter().map(|v| format!("  {v}")).collect();
    panic!(
        "{} invariant violation(s) at {context}:\n{}",
        violations.len(),
        report.join("\n")
    );
}
