//! CI gate: run the canned scenarios and fail on any invariant violation.
//!
//! Each violation is reported as `<invariant> @node <addr>: <detail>`.

fn main() {
    let mut failed = false;
    for (name, violations) in past_invariants::scenarios::run_all() {
        if violations.is_empty() {
            println!("invariants: scenario {name:<14} ok (I1-I5 hold at every quiesce point)");
        } else {
            failed = true;
            println!(
                "invariants: scenario {name:<14} FAILED with {} violation(s):",
                violations.len()
            );
            for v in &violations {
                println!("  {v}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
