//! CI gate: run the canned scenarios and fail on any invariant violation.
//!
//! Each violation is reported as `<invariant> @node <addr>: <detail>`.
//!
//! With `--emit-trace PATH`, the lossy-churn scenario runs with the
//! operation-lifecycle trace classes enabled and its trace is written to
//! `PATH` as JSONL, ready for `tracecheck --require-clean`.
//! `--emit-trace-sharded PATH` does the same for the lossy-churn
//! scenario on the sharded backend. `--emit-series PATH` /
//! `--emit-series-sharded PATH` additionally write the flight-recorder
//! series of those traced runs as JSONL, ready for
//! `obsreport --require-slo`.

use past_invariants::scenarios::{
    bulk_join, churn, lossy_churn, lossy_churn_sharded, lossy_churn_sharded_traced,
    lossy_churn_traced, quota_reclaim, wheel_horizon,
};
use past_netsim::{TraceConfig, Tracer};

/// Writes the tracer's flight-recorder series to `path` as JSONL.
fn write_series(tracer: &Tracer, path: &str) {
    let Some(series) = tracer.series() else {
        eprintln!("invariants: traced run produced no series for {path}");
        std::process::exit(2);
    };
    if let Err(e) = std::fs::write(path, series.to_jsonl()) {
        eprintln!("invariants: cannot write series to {path}: {e}");
        std::process::exit(2);
    }
    println!(
        "invariants: wrote {} series window(s) to {path}",
        series.len()
    );
}

fn main() {
    let mut emit_trace: Option<String> = None;
    let mut emit_trace_sharded: Option<String> = None;
    let mut emit_series: Option<String> = None;
    let mut emit_series_sharded: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--emit-trace" => {
                let Some(path) = args.next() else {
                    eprintln!("invariants: --emit-trace needs a path");
                    std::process::exit(2);
                };
                emit_trace = Some(path);
            }
            "--emit-trace-sharded" => {
                let Some(path) = args.next() else {
                    eprintln!("invariants: --emit-trace-sharded needs a path");
                    std::process::exit(2);
                };
                emit_trace_sharded = Some(path);
            }
            "--emit-series" => {
                let Some(path) = args.next() else {
                    eprintln!("invariants: --emit-series needs a path");
                    std::process::exit(2);
                };
                emit_series = Some(path);
            }
            "--emit-series-sharded" => {
                let Some(path) = args.next() else {
                    eprintln!("invariants: --emit-series-sharded needs a path");
                    std::process::exit(2);
                };
                emit_series_sharded = Some(path);
            }
            other => {
                eprintln!("invariants: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut results = vec![
        ("bulk-join", bulk_join(1)),
        ("churn", churn(2)),
        ("quota-reclaim", quota_reclaim(3)),
    ];
    if emit_trace.is_some() || emit_series.is_some() {
        let (violations, tracer) = lossy_churn_traced(4, TraceConfig::lifecycle());
        if let Some(path) = &emit_trace {
            if let Err(e) = std::fs::write(path, tracer.to_jsonl()) {
                eprintln!("invariants: cannot write trace to {path}: {e}");
                std::process::exit(2);
            }
            println!(
                "invariants: wrote {} trace record(s) to {path}",
                tracer.records().len()
            );
        }
        if let Some(path) = &emit_series {
            write_series(&tracer, path);
        }
        results.push(("lossy-churn", violations));
    } else {
        results.push(("lossy-churn", lossy_churn(4)));
    }
    results.push(("wheel-horizon", wheel_horizon(5)));
    if emit_trace_sharded.is_some() || emit_series_sharded.is_some() {
        let (violations, tracer) = lossy_churn_sharded_traced(6, TraceConfig::lifecycle());
        if let Some(path) = &emit_trace_sharded {
            if let Err(e) = std::fs::write(path, tracer.to_jsonl()) {
                eprintln!("invariants: cannot write trace to {path}: {e}");
                std::process::exit(2);
            }
            println!(
                "invariants: wrote {} trace record(s) to {path}",
                tracer.records().len()
            );
        }
        if let Some(path) = &emit_series_sharded {
            write_series(&tracer, path);
        }
        results.push(("lossy-churn-sharded", violations));
    } else {
        results.push(("lossy-churn-sharded", lossy_churn_sharded(6)));
    }

    let mut failed = false;
    for (name, violations) in results {
        if violations.is_empty() {
            println!("invariants: scenario {name:<14} ok (I1-I5 hold at every quiesce point)");
        } else {
            failed = true;
            println!(
                "invariants: scenario {name:<14} FAILED with {} violation(s):",
                violations.len()
            );
            for v in &violations {
                println!("  {v}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
