//! Unit tests for the I1–I5 checkers: each test hand-builds a snapshot
//! with one planted defect and asserts that exactly the right invariant
//! fires (and that the clean baseline passes everything).

use past_core::{CardSnapshot, FileId, FileSnapshot, PastSnapshot, StoreSnapshot};
use past_crypto::digest::Digest160;
use past_invariants::{assert_clean, check_overlay, check_quota, check_storage, Violation};
use past_netsim::Addr;
use past_pastry::{Id, NodeHandle, NodeSnapshot, OverlaySnapshot};

const Q: u128 = 1 << 126;

fn handle(addr: Addr) -> NodeHandle {
    NodeHandle::new(Id(addr as u128 * Q), addr)
}

fn node(addr: Addr, smaller: &[Addr], larger: &[Addr]) -> NodeSnapshot {
    NodeSnapshot {
        addr,
        id: Id(addr as u128 * Q),
        live: true,
        joined: true,
        b: 4,
        leaf_half: 2,
        leaf_smaller: smaller.iter().map(|&a| handle(a)).collect(),
        leaf_larger: larger.iter().map(|&a| handle(a)).collect(),
        table_slots: Vec::new(),
    }
}

/// Four nodes evenly spaced at 0, Q, 2Q, 3Q with `leaf_half = 2`. Ties in
/// ring distance fall on the larger side, so each node sees two larger
/// members and one smaller member; the layout is fully symmetric.
fn clean_overlay() -> OverlaySnapshot {
    OverlaySnapshot {
        nodes: vec![
            node(0, &[3], &[1, 2]),
            node(1, &[0], &[2, 3]),
            node(2, &[1], &[3, 0]),
            node(3, &[2], &[0, 1]),
        ],
    }
}

fn fid(tag: u8) -> FileId {
    FileId(Digest160([tag; 20]))
}

fn store(addr: Addr) -> StoreSnapshot {
    StoreSnapshot {
        addr,
        used: 0,
        capacity: 100,
        cache_used: 0,
        files: Vec::new(),
        cached: Vec::new(),
        pointers: Vec::new(),
    }
}

fn file(tag: u8, size: u64, owner_tag: u8) -> FileSnapshot {
    FileSnapshot {
        file_id: fid(tag),
        size,
        owner: [owner_tag; 32],
        diverted: false,
    }
}

fn card(addr: Addr, owner_tag: u8, debited: u64, credited: u64, pending: u64) -> CardSnapshot {
    CardSnapshot {
        addr,
        card_key: [owner_tag; 32],
        quota_issued: 1_000,
        quota_remaining: 1_000 - debited + credited,
        debited_total: debited,
        credited_total: credited,
        pending_insert_bytes: pending,
    }
}

fn full(
    overlay: OverlaySnapshot,
    stores: Vec<StoreSnapshot>,
    cards: Vec<CardSnapshot>,
) -> PastSnapshot {
    PastSnapshot {
        overlay,
        stores,
        cards,
    }
}

fn invariants(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.invariant).collect()
}

#[test]
fn clean_snapshot_passes_every_invariant() {
    let mut st = store(0);
    st.files.push(file(7, 40, 9));
    st.used = 40;
    st.cached.push((fid(8), 10));
    st.cache_used = 10;
    st.pointers.push((fid(9), 3));
    let snap = full(clean_overlay(), vec![st], vec![card(1, 9, 40, 0, 0)]);
    assert_clean("clean baseline", &past_invariants::check_all(&snap));
}

#[test]
fn i1_detects_nonexistent_member() {
    let mut snap = clean_overlay();
    snap.nodes[0].leaf_larger[0] = NodeHandle::new(Id(Q / 2), 9);
    let v = check_overlay(&snap);
    assert!(
        v.iter()
            .any(|v| v.invariant == "I1" && v.detail.contains("nonexistent")),
        "got {v:?}"
    );
}

#[test]
fn i1_detects_stale_handle_id() {
    let mut snap = clean_overlay();
    snap.nodes[0].leaf_larger[0].id = Id(Q + 1);
    let v = check_overlay(&snap);
    assert!(
        v.iter()
            .any(|v| v.invariant == "I1" && v.detail.contains("carries id")),
        "got {v:?}"
    );
}

#[test]
fn i1_detects_duplicate_member() {
    let mut snap = clean_overlay();
    snap.nodes[0].leaf_larger[1] = handle(1); // node 1 now listed twice
    let v = check_overlay(&snap);
    assert!(
        v.iter()
            .any(|v| v.invariant == "I1" && v.detail.contains("twice")),
        "got {v:?}"
    );
}

#[test]
fn i1_detects_asymmetry() {
    let mut snap = clean_overlay();
    // Node 1 forgets node 0, but node 0 still lists node 1.
    snap.nodes[1].leaf_smaller.clear();
    let v = check_overlay(&snap);
    assert!(
        v.iter().any(|v| {
            v.invariant == "I1" && v.addr == Some(0) && v.detail.contains("does not list")
        }),
        "got {v:?}"
    );
}

#[test]
fn i2_detects_misordered_half() {
    let mut snap = clean_overlay();
    // Same members, wrong order: nearest-first is part of the invariant.
    snap.nodes[0].leaf_larger.swap(0, 1);
    let v = check_overlay(&snap);
    assert_eq!(invariants(&v), vec!["I2"], "got {v:?}");
}

#[test]
fn i2_detects_missing_true_neighbor() {
    let mut snap = clean_overlay();
    // Node 0 dropped its smaller-side member even though node 3 is live.
    snap.nodes[0].leaf_smaller.clear();
    let v = check_overlay(&snap);
    assert!(
        v.iter()
            .any(|v| v.invariant == "I2" && v.addr == Some(0) && v.detail.contains("smaller half")),
        "got {v:?}"
    );
}

#[test]
fn i3_detects_misfiled_table_entry() {
    let mut snap = clean_overlay();
    // Node 1's id shares no 4-bit digit with node 0, so row 1 is wrong...
    snap.nodes[0].table_slots.push((1, 0, handle(1)));
    // ...and in row 0 it must sit in the column of its first digit (4).
    snap.nodes[0].table_slots.push((0, 0, handle(1)));
    let v = check_overlay(&snap);
    assert!(
        v.iter()
            .any(|v| v.invariant == "I3" && v.detail.contains("prefix")),
        "got {v:?}"
    );
    assert!(
        v.iter()
            .any(|v| v.invariant == "I3" && v.detail.contains("digit")),
        "got {v:?}"
    );
}

#[test]
fn i3_accepts_correctly_filed_entry() {
    let mut snap = clean_overlay();
    snap.nodes[0].table_slots.push((0, 4, handle(1)));
    assert!(check_overlay(&snap).is_empty());
}

#[test]
fn i4_detects_used_mismatch() {
    let mut st = store(0);
    st.files.push(file(1, 30, 9));
    st.used = 31; // off by one
    let snap = full(clean_overlay(), vec![st], Vec::new());
    assert!(invariants(&check_storage(&snap)).contains(&"I4"));
}

#[test]
fn i4_detects_cache_overflow_and_aliasing() {
    let mut st = store(0);
    st.files.push(file(1, 90, 9));
    st.used = 90;
    // 20 cached bytes but only 10 free.
    st.cached.push((fid(2), 20));
    st.cache_used = 20;
    // A pointer and a cache entry both alias the stored file.
    st.pointers.push((fid(1), 3));
    st.cached.push((fid(1), 0));
    st.cache_used += 0;
    let v = check_storage(&full(clean_overlay(), vec![st], Vec::new()));
    assert!(v.iter().any(|v| v.detail.contains("free")), "got {v:?}");
    assert!(
        v.iter()
            .any(|v| v.detail.contains("pointer") && v.detail.contains("aliases")),
        "got {v:?}"
    );
    assert!(
        v.iter()
            .any(|v| v.detail.contains("cache entry") && v.detail.contains("aliases")),
        "got {v:?}"
    );
}

#[test]
fn i5_detects_double_credit() {
    let snap = full(clean_overlay(), Vec::new(), vec![card(0, 9, 10, 20, 0)]);
    let v = check_quota(&snap);
    assert!(
        v.iter()
            .any(|v| v.invariant == "I5" && v.detail.contains("double-credit")),
        "got {v:?}"
    );
}

#[test]
fn i5_detects_unbacked_debit() {
    // Card 9 debited 50 but only 30 are stored on its behalf and nothing
    // is in flight: 20 bytes of quota leaked.
    let mut st = store(0);
    st.files.push(file(1, 30, 9));
    st.used = 30;
    let snap = full(clean_overlay(), vec![st], vec![card(1, 9, 50, 0, 0)]);
    let v = check_quota(&snap);
    assert_eq!(invariants(&v), vec!["I5"], "got {v:?}");
    assert!(
        v[0].detail.contains("50") && v[0].detail.contains("30"),
        "got {v:?}"
    );
}

#[test]
fn i5_counts_in_flight_bytes_as_backed() {
    let snap = full(clean_overlay(), Vec::new(), vec![card(0, 9, 50, 0, 50)]);
    assert!(check_quota(&snap).is_empty());
}

#[test]
#[should_panic(expected = "invariant violation")]
fn assert_clean_panics_with_report() {
    let snap = full(clean_overlay(), Vec::new(), vec![card(0, 9, 10, 20, 0)]);
    assert_clean("unit test", &check_quota(&snap));
}
