//! The flight recorder: sim-time windowed counters, gauges and
//! histogram snapshots.
//!
//! A [`TimeSeries`] buckets every observation into fixed windows of
//! [`SeriesConfig::window_us`] simulated microseconds. Producers feed
//! it from instrumentation hooks (the [`Tracer`](crate::Tracer)
//! message/route/op hooks, engine samplers, harness samplers); every
//! record call takes the simulated time explicitly, so the series can
//! never observe a wall clock and is bit-reproducible across runs.
//!
//! Series merge across shards: counters sum, gauges follow a
//! latest-sample-wins-or-sum rule (see [`TimeSeries::merge`]), and
//! histograms sum buckets. The merge is commutative and associative,
//! so the combined series is identical under any shard count or merge
//! order. Per-shard diagnostics (`shard_bump`/`shard_gauge`) are kept
//! separately and are *excluded* from the [`fingerprint`]: they
//! legitimately differ between a 1-shard and an N-shard run of the
//! same simulation, while everything fingerprinted must not.
//!
//! [`fingerprint`]: TimeSeries::fingerprint

use std::collections::BTreeMap;

use crate::{fnv1a, json, wfmt, Histogram};

/// Flight-recorder configuration: the sampling window, in simulated
/// microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesConfig {
    /// Window width in simulated microseconds (must be positive).
    pub window_us: u64,
}

impl SeriesConfig {
    /// A config with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window_us` is zero.
    pub fn new(window_us: u64) -> SeriesConfig {
        assert!(window_us > 0, "series window must be positive");
        SeriesConfig { window_us }
    }
}

/// A gauge sample: the newest observation wins, carrying the time it
/// was taken so merges across series can arbitrate (see
/// [`TimeSeries::merge`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct GaugeCell {
    /// Simulated time of the newest sample.
    t: u64,
    /// Sampled value.
    v: u64,
}

/// Histogram shape registry: series histograms must agree on shape
/// across shards so windows merge; shapes are fixed by name here.
/// `route_latency_us` mirrors the `Metrics` registry histogram (1 ms
/// buckets up to 512 ms); everything else gets width-1 with 64
/// buckets.
fn hist_shape(name: &str) -> (u64, usize) {
    match name {
        "route_latency_us" => (1_000, 512),
        _ => (1, 64),
    }
}

/// One sampling window: counters, gauges and histograms keyed by
/// static names, plus per-shard diagnostics keyed by `(shard, name)`.
#[derive(Clone, Debug, Default)]
pub struct Window {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, GaugeCell>,
    hists: BTreeMap<&'static str, Histogram>,
    shard_counters: BTreeMap<(usize, &'static str), u64>,
    shard_gauges: BTreeMap<(usize, &'static str), GaugeCell>,
}

impl Window {
    /// Reads a counter (0 if never bumped in this window).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge's newest sampled value in this window.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).map(|c| c.v)
    }

    /// Reads a histogram recorded in this window.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All counters in this window, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Reads a per-shard diagnostic counter.
    pub fn shard_counter(&self, shard: usize, name: &str) -> u64 {
        self.shard_counters
            .get(&(shard, name))
            .copied()
            .unwrap_or(0)
    }

    /// Per-shard diagnostic counters, in `(shard, name)` order.
    pub fn shard_counters(&self) -> impl Iterator<Item = (usize, &'static str, u64)> + '_ {
        self.shard_counters.iter().map(|(&(s, k), &v)| (s, k, v))
    }
}

/// Records one gauge sample locally: the latest sample wins, and a
/// re-sample of the same instant *overwrites* (a producer taking two
/// looks at the same simulated time reports one value, not a sum).
fn record_gauge<K: Ord>(map: &mut BTreeMap<K, GaugeCell>, key: K, cell: GaugeCell) {
    match map.entry(key) {
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(cell);
        }
        std::collections::btree_map::Entry::Occupied(mut e) => {
            if cell.t >= e.get().t {
                *e.get_mut() = cell;
            }
        }
    }
}

/// Merges one gauge sample into a cell map under merge semantics:
/// the newer sample wins outright; *equal-time* samples sum, because
/// shards sampling the same global instant each contribute a partial
/// value (queue depth, arena occupancy) whose total is the global one.
/// This rule is commutative and associative, so shard merge order
/// cannot change the result.
fn merge_gauge<K: Ord>(map: &mut BTreeMap<K, GaugeCell>, key: K, cell: GaugeCell) {
    match map.entry(key) {
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(cell);
        }
        std::collections::btree_map::Entry::Occupied(mut e) => {
            let cur = e.get_mut();
            match cell.t.cmp(&cur.t) {
                std::cmp::Ordering::Greater => *cur = cell,
                std::cmp::Ordering::Equal => cur.v += cell.v,
                std::cmp::Ordering::Less => {}
            }
        }
    }
}

/// The windowed time series. See the module docs for semantics.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    window_us: u64,
    windows: BTreeMap<u64, Window>,
}

impl TimeSeries {
    /// An empty series with the given window width.
    pub fn new(cfg: SeriesConfig) -> TimeSeries {
        assert!(cfg.window_us > 0, "series window must be positive");
        TimeSeries {
            window_us: cfg.window_us,
            windows: BTreeMap::new(),
        }
    }

    /// Window width in simulated microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Drops all windows, keeping the configuration.
    pub fn clear(&mut self) {
        self.windows.clear();
    }

    /// Number of populated windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True if no window has any data.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows in time order, as `(window_start_us, window)`.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &Window)> + '_ {
        self.windows.iter().map(|(&t, w)| (t, w))
    }

    fn window_mut(&mut self, t: u64) -> &mut Window {
        let start = t - t % self.window_us;
        self.windows.entry(start).or_default()
    }

    /// Adds `by` to a named counter in the window containing `t`.
    pub fn bump(&mut self, t: u64, name: &'static str, by: u64) {
        *self.window_mut(t).counters.entry(name).or_insert(0) += by;
    }

    /// Bumps the `events` progress counter; returns `true` if this was
    /// the first event in its window (producers use this to take one
    /// gauge sample per window without tracking window edges
    /// themselves).
    pub fn note_event(&mut self, t: u64) -> bool {
        let c = self.window_mut(t).counters.entry("events").or_insert(0);
        *c += 1;
        *c == 1
    }

    /// Records a gauge sample at time `t`. Within one series the
    /// *latest* sample wins (ties overwrite: re-sampling the same
    /// instant replaces, never double-counts).
    pub fn gauge(&mut self, t: u64, name: &'static str, v: u64) {
        record_gauge(&mut self.window_mut(t).gauges, name, GaugeCell { t, v });
    }

    /// Records one histogram sample (shape fixed per name by the
    /// series shape registry).
    pub fn hist(&mut self, t: u64, name: &'static str, sample: u64) {
        let h = self.window_mut(t).hists.entry(name).or_insert_with(|| {
            let (w, n) = hist_shape(name);
            Histogram::new(w, n)
        });
        h.record(sample);
    }

    /// Adds `by` to a per-shard diagnostic counter (excluded from the
    /// fingerprint).
    pub fn shard_bump(&mut self, t: u64, shard: usize, name: &'static str, by: u64) {
        *self
            .window_mut(t)
            .shard_counters
            .entry((shard, name))
            .or_insert(0) += by;
    }

    /// Records a per-shard diagnostic gauge sample (excluded from the
    /// fingerprint). Latest sample wins, as with [`TimeSeries::gauge`].
    pub fn shard_gauge(&mut self, t: u64, shard: usize, name: &'static str, v: u64) {
        record_gauge(
            &mut self.window_mut(t).shard_gauges,
            (shard, name),
            GaugeCell { t, v },
        );
    }

    /// Folds another series into this one: counters and histograms
    /// sum, gauges take the newest sample — with *equal-time* samples
    /// summing, so shards that sampled partial values (their share of
    /// queue depth or in-flight messages) at the same global instant
    /// combine into the global value. Both rules are commutative and
    /// associative: any merge order yields the same series.
    ///
    /// # Panics
    ///
    /// Panics if the two series have different window widths.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert!(
            self.window_us == other.window_us,
            "cannot merge series with different windows"
        );
        for (&start, w) in &other.windows {
            let mine = self.windows.entry(start).or_default();
            for (&k, &v) in &w.counters {
                *mine.counters.entry(k).or_insert(0) += v;
            }
            for (&k, &cell) in &w.gauges {
                merge_gauge(&mut mine.gauges, k, cell);
            }
            for (&k, h) in &w.hists {
                mine.hists
                    .entry(k)
                    .or_insert_with(|| {
                        let (wd, n) = hist_shape(k);
                        Histogram::new(wd, n)
                    })
                    .merge(h)
                    .expect("series histograms share shape by the name registry");
            }
            for (&k, &v) in &w.shard_counters {
                *mine.shard_counters.entry(k).or_insert(0) += v;
            }
            for (&k, &cell) in &w.shard_gauges {
                merge_gauge(&mut mine.shard_gauges, k, cell);
            }
        }
    }

    /// Writes one window as a flat JSONL object (the format
    /// [`analyze::parse_line`](crate::analyze::parse_line) reads:
    /// no spaces, no escapes). `shards` controls whether per-shard
    /// diagnostic fields are included — the fingerprint hashes the
    /// line *without* them.
    fn write_window_line(&self, out: &mut String, start: u64, w: &Window, shards: bool) {
        wfmt(
            out,
            format_args!("{{\"t\":{start},\"op\":0,\"ev\":\"window\""),
        );
        for (&k, &v) in &w.counters {
            wfmt(out, format_args!(",\"{k}\":{v}"));
        }
        for (&k, cell) in &w.gauges {
            wfmt(out, format_args!(",\"{k}\":{}", cell.v));
        }
        for (&k, h) in &w.hists {
            wfmt(
                out,
                format_args!(
                    ",\"{k}_count\":{},\"{k}_p50\":{},\"{k}_p95\":{},\"{k}_p99\":{}",
                    h.count(),
                    h.percentile(50).unwrap_or(0),
                    h.percentile(95).unwrap_or(0),
                    h.percentile(99).unwrap_or(0),
                ),
            );
        }
        if shards {
            for (&(s, k), &v) in &w.shard_counters {
                wfmt(out, format_args!(",\"shard{s}.{k}\":{v}"));
            }
            for (&(s, k), cell) in &w.shard_gauges {
                wfmt(out, format_args!(",\"shard{s}.{k}\":{}", cell.v));
            }
        }
        out.push('}');
    }

    /// A 64-bit FNV-1a fingerprint of the series content that must be
    /// shard-count invariant: window width plus every window line
    /// *without* the per-shard diagnostic fields. Two runs whose
    /// fingerprints match produced identical windowed counters,
    /// gauges and histogram summaries.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonical_lines().as_bytes())
    }

    /// The exact byte stream the [`fingerprint`](Self::fingerprint)
    /// hashes: the window width plus one line per window *without*
    /// per-shard diagnostics. Differential tests compare this across
    /// shard counts — unlike the bare fingerprint, a mismatch shows
    /// *which* window diverged.
    pub fn canonical_lines(&self) -> String {
        let mut buf = String::new();
        wfmt(&mut buf, format_args!("window_us={}\n", self.window_us));
        for (&start, w) in &self.windows {
            self.write_window_line(&mut buf, start, w, false);
            buf.push('\n');
        }
        buf
    }

    /// Serializes the series as JSONL: one `ev:"series"` header line
    /// (window width, window count, fingerprint), then one flat
    /// `ev:"window"` line per window including per-shard diagnostics.
    /// Parses back through
    /// [`analyze::parse_jsonl`](crate::analyze::parse_jsonl).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        wfmt(
            &mut out,
            format_args!(
                "{{\"t\":0,\"op\":0,\"ev\":\"series\",\"window_us\":{},\"windows\":{},\"fp\":{}}}\n",
                self.window_us,
                self.windows.len(),
                self.fingerprint(),
            ),
        );
        for (&start, w) in &self.windows {
            self.write_window_line(&mut out, start, w, true);
            out.push('\n');
        }
        out
    }

    /// Serializes the series as one `past-series/v1` JSON document
    /// (for `BENCH_series.json`-style archives).
    pub fn to_json(&self) -> String {
        let windows = json::array(self.windows.iter().map(|(&start, w)| {
            let mut o = json::Obj::new().int("t", start);
            for (&k, &v) in &w.counters {
                o = o.int(k, v);
            }
            for (&k, cell) in &w.gauges {
                o = o.int(k, cell.v);
            }
            for (&k, h) in &w.hists {
                o = o
                    .int(&format!("{k}_count"), h.count())
                    .int(&format!("{k}_p50"), h.percentile(50).unwrap_or(0))
                    .int(&format!("{k}_p95"), h.percentile(95).unwrap_or(0))
                    .int(&format!("{k}_p99"), h.percentile(99).unwrap_or(0));
            }
            for (&(s, k), &v) in &w.shard_counters {
                o = o.int(&format!("shard{s}.{k}"), v);
            }
            for (&(s, k), cell) in &w.shard_gauges {
                o = o.int(&format!("shard{s}.{k}"), cell.v);
            }
            o.build()
        }));
        json::Obj::new()
            .str("schema", "past-series/v1")
            .int("window_us", self.window_us)
            .int("fp", self.fingerprint())
            .raw("windows", &windows)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;

    fn cfg() -> SeriesConfig {
        SeriesConfig::new(1_000)
    }

    #[test]
    fn counters_land_in_their_windows() {
        let mut s = TimeSeries::new(cfg());
        s.bump(10, "sent", 1);
        s.bump(999, "sent", 2);
        s.bump(1_000, "sent", 5);
        let w: Vec<(u64, u64)> = s.windows().map(|(t, w)| (t, w.counter("sent"))).collect();
        assert_eq!(w, vec![(0, 3), (1_000, 5)]);
    }

    #[test]
    fn gauge_latest_sample_wins_and_resample_overwrites() {
        let mut s = TimeSeries::new(cfg());
        s.gauge(100, "depth", 7);
        s.gauge(500, "depth", 3);
        assert_eq!(s.windows().next().unwrap().1.gauge("depth"), Some(3));
        // Re-sampling the same instant replaces, never double-counts.
        s.gauge(500, "depth", 9);
        assert_eq!(s.windows().next().unwrap().1.gauge("depth"), Some(9));
        // An older sample arriving late is ignored.
        s.gauge(200, "depth", 1);
        assert_eq!(s.windows().next().unwrap().1.gauge("depth"), Some(9));
    }

    #[test]
    fn windowed_histograms_snapshot_and_merge() {
        let mut a = TimeSeries::new(cfg());
        for v in [100, 200, 5_000] {
            a.hist(10, "route_latency_us", v);
        }
        let mut b = TimeSeries::new(cfg());
        b.hist(20, "route_latency_us", 300_000);
        a.merge(&b);
        let (_, w) = a.windows().next().unwrap();
        let h = w.hist("route_latency_us").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.percentile(50).unwrap(), 0);
        assert_eq!(h.percentile(99).unwrap(), 300_000);
    }

    #[test]
    fn merge_is_order_independent() {
        let build = |order: &[usize]| {
            let mk = |i: usize| {
                let mut s = TimeSeries::new(cfg());
                s.bump(i as u64 * 10, "events", i as u64 + 1);
                // Same-instant partial gauges must sum; an older sample
                // must lose regardless of merge order.
                s.gauge(500, "depth", (i as u64 + 1) * 100);
                s.gauge(400 + i as u64 * 50, "stale", i as u64);
                s.hist(100, "lat", i as u64);
                s.shard_bump(100, i, "batch", 1);
                s
            };
            let mut acc = mk(order[0]);
            for &i in &order[1..] {
                acc.merge(&mk(i));
            }
            acc.to_jsonl()
        };
        let a = build(&[0, 1, 2]);
        let b = build(&[2, 0, 1]);
        let c = build(&[1, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Equal-time partials summed: 100 + 200 + 300.
        assert!(a.contains("\"depth\":600"), "{a}");
        // Newest sample won: shard 2 sampled "stale" at t=500.
        assert!(a.contains("\"stale\":2"), "{a}");
    }

    #[test]
    fn fingerprint_is_deterministic_and_ignores_shard_diagnostics() {
        let mk = |shard_noise: bool| {
            let mut s = TimeSeries::new(cfg());
            s.bump(10, "sent", 4);
            s.gauge(700, "depth", 11);
            s.hist(10, "route_latency_us", 2_500);
            if shard_noise {
                s.shard_bump(10, 0, "events", 3);
                s.shard_bump(10, 1, "events", 1);
                s.shard_gauge(700, 1, "stall_us", 40);
            }
            s
        };
        assert_eq!(mk(false).fingerprint(), mk(false).fingerprint());
        assert_eq!(
            mk(false).fingerprint(),
            mk(true).fingerprint(),
            "per-shard diagnostics must not affect the series fingerprint"
        );
        let mut other = mk(false);
        other.bump(10, "sent", 1);
        assert_ne!(mk(false).fingerprint(), other.fingerprint());
    }

    #[test]
    fn jsonl_round_trips_through_the_analyzer() {
        let mut s = TimeSeries::new(cfg());
        s.bump(10, "sent", 4);
        s.note_event(10);
        s.gauge(700, "queue_depth", 11);
        s.hist(10, "route_latency_us", 2_500);
        s.shard_bump(10, 0, "batch_msgs", 3);
        let recs = analyze::parse_jsonl(&s.to_jsonl()).expect("series JSONL must parse");
        assert_eq!(recs[0].ev, "series");
        assert_eq!(recs[0].u("window_us"), Some(1_000));
        assert_eq!(recs[0].u("windows"), Some(1));
        assert_eq!(recs[0].u("fp"), Some(s.fingerprint()));
        assert_eq!(recs[1].ev, "window");
        assert_eq!(recs[1].t, 0);
        assert_eq!(recs[1].u("sent"), Some(4));
        assert_eq!(recs[1].u("events"), Some(1));
        assert_eq!(recs[1].u("queue_depth"), Some(11));
        assert_eq!(recs[1].u("route_latency_us_count"), Some(1));
        assert_eq!(recs[1].u("route_latency_us_p99"), Some(2_000));
        assert_eq!(recs[1].u("shard0.batch_msgs"), Some(3));
    }

    #[test]
    fn note_event_reports_first_event_per_window() {
        let mut s = TimeSeries::new(cfg());
        assert!(s.note_event(10));
        assert!(!s.note_event(999));
        assert!(s.note_event(1_000));
        assert_eq!(s.windows().next().unwrap().1.counter("events"), 2);
    }

    #[test]
    fn json_document_validates() {
        let mut s = TimeSeries::new(cfg());
        s.bump(10, "sent", 4);
        s.gauge(700, "depth", 11);
        s.hist(10, "lat", 3);
        s.shard_gauge(700, 2, "stall_us", 5);
        let doc = s.to_json();
        json::validate(&doc).expect("series JSON must validate");
        assert!(doc.contains("\"schema\": \"past-series/v1\""));
    }

    #[test]
    #[should_panic(expected = "different windows")]
    fn merge_rejects_mismatched_windows() {
        let mut a = TimeSeries::new(SeriesConfig::new(1_000));
        let b = TimeSeries::new(SeriesConfig::new(2_000));
        a.merge(&b);
    }
}
