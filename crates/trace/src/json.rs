//! Minimal JSON emission and validation.
//!
//! Both the trace/metrics exports of this crate and the bench binaries'
//! `BENCH_*.json` documents (re-exported as `past_bench::json`) are
//! produced through this module. The workspace is hermetic (no serde),
//! so it provides the ~hundred lines actually needed: an object/array
//! writer with correct string escaping, and a recursive-descent
//! validator callers run over their own output before writing it.

/// Escapes a string for inclusion in a JSON document (quotes included).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An incremental JSON object writer.
#[derive(Default)]
pub struct Obj {
    body: String,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.body.is_empty() {
            self.body.push_str(", ");
        }
        self.body.push_str(&quote(k));
        self.body.push_str(": ");
        &mut self.body
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        let q = quote(v);
        self.key(k).push_str(&q);
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, k: &str, v: u64) -> Obj {
        self.key(k).push_str(&v.to_string());
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Obj {
        self.key(k).push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a float field (one decimal, JSON-finite).
    pub fn num(mut self, k: &str, v: f64) -> Obj {
        let v = if v.is_finite() { v } else { 0.0 };
        self.key(k).push_str(&format!("{v:.1}"));
        self
    }

    /// Adds an already-serialized JSON value.
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k).push_str(v);
        self
    }

    /// Closes the object and returns its JSON text.
    pub fn build(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Serializes an iterator of already-serialized values as a JSON array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(", "))
}

/// Validates that `s` is one complete, syntactically well-formed JSON
/// value. Returns a position-annotated error otherwise.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array_val(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("expected a JSON value at byte {pos}")),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array_val(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for i in 1..=4 {
                            if !b.get(*pos + i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_valid_json() {
        let doc = Obj::new()
            .str("schema", "past-bench/v1")
            .int("n", 10_000)
            .num("wall_ms", 12.345)
            .raw(
                "results",
                &array(vec![
                    Obj::new().str("name", "a/b").num("median_ns", 1.5).build(),
                    Obj::new().str("name", "c\"d\\e").int("count", 2).build(),
                ]),
            )
            .build();
        validate(&doc).expect("builder output must validate");
        assert!(doc.contains("\"schema\": \"past-bench/v1\""));
        assert!(doc.contains("\"wall_ms\": 12.3"));
    }

    #[test]
    fn escaping_round_trips_through_validator() {
        let doc = Obj::new()
            .str("k", "line\nbreak\ttab \"q\" \\ \u{1}")
            .build();
        validate(&doc).expect("escaped control chars must validate");
    }

    #[test]
    fn validator_accepts_plain_values() {
        for ok in [
            "{}",
            "[]",
            "[1, 2.5, -3e4, true, false, null]",
            "{\"a\": {\"b\": [\"c\"]}}",
            "  42  ",
        ] {
            assert!(validate(ok).is_ok(), "{ok} should validate");
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, ]",
            "{\"a\" 1}",
            "{} {}",
            "\"unterminated",
            "01e",
            "{\"a\": 1,}",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn nan_is_not_emitted() {
        let doc = Obj::new().num("x", f64::NAN).build();
        validate(&doc).expect("NaN must be mapped to a finite value");
        assert!(doc.contains("0.0"));
    }
}
