//! Deterministic structured tracing and metrics for the PAST simulator.
//!
//! The simulator's results used to be computed from end-state snapshots
//! and flat traffic counters; this crate gives it an *execution
//! history*. Three pieces:
//!
//! - a [`Tracer`] sink recording typed [`TraceEvent`]s (message
//!   send/recv/drop/duplicate, route hops with prefix-match depth, join
//!   phases, suspicion, operation lifecycle) stamped with **simulated
//!   time** — never wall clock — and a causal [`OpId`] so one client
//!   insert can be reconstructed hop by hop across nodes;
//! - a [`Metrics`] registry: per-message-kind and per-node counters,
//!   gauges, and fixed-bucket integer [`Histogram`]s (route latency,
//!   hop count, retry count) with exact rank-based percentile
//!   extraction;
//! - the analyzer ([`analyze`] + the `tracecheck` binary) that rebuilds
//!   per-operation timelines from a JSONL trace and reports stuck
//!   operations, replica fan-out vs. `k`, and the hop distribution vs.
//!   the `⌈log₂ᵇN⌉` bound.
//!
//! Determinism contract: with tracing **off** (the [`TraceConfig::off`]
//! default) every record method is a branch-and-return — no allocation,
//! no RNG draw, no behavioral change — so golden fingerprints stay
//! bit-identical. With tracing **on** the tracer still never draws
//! randomness or alters event order, so the same seed yields the same
//! trace ([`Tracer::fingerprint`]) and the same simulation outcome as
//! an untraced run.

pub mod analyze;
pub mod json;
pub mod timeseries;

use std::collections::BTreeMap;

pub use timeseries::{SeriesConfig, TimeSeries};

/// A causal operation identifier threaded through message envelopes.
///
/// `OpId(0)` ([`OpId::NONE`]) means "not part of a client operation":
/// analyzer passes ignore it. Ids are allocated unconditionally by the
/// harness (a plain counter, no RNG), so enabling tracing never changes
/// id assignment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl OpId {
    /// The "no operation" id.
    pub const NONE: OpId = OpId(0);

    /// True for [`OpId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Which event classes a [`Tracer`] records.
///
/// The all-false default records nothing; `metrics` additionally gates
/// the counter/histogram registry so a pure event trace stays cheap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Per-message events: send, recv, drop, duplicate, dead-dest fail.
    pub messages: bool,
    /// Per-hop routing events: hop (with prefix depth), deliver, drop.
    pub routes: bool,
    /// Overlay maintenance events: join phases, suspicion.
    pub overlay: bool,
    /// Operation lifecycle: start, retry, end, replica stored.
    pub ops: bool,
    /// Counter/gauge/histogram registry updates.
    pub metrics: bool,
}

impl TraceConfig {
    /// Records nothing (the default).
    pub fn off() -> TraceConfig {
        TraceConfig::default()
    }

    /// Records every event class and the metrics registry.
    pub fn full() -> TraceConfig {
        TraceConfig {
            messages: true,
            routes: true,
            overlay: true,
            ops: true,
            metrics: true,
        }
    }

    /// Operation lifecycle plus routing events — what `tracecheck`
    /// needs to judge liveness, fan-out and the hop bound.
    pub fn lifecycle() -> TraceConfig {
        TraceConfig {
            routes: true,
            ops: true,
            ..TraceConfig::default()
        }
    }

    /// Only the metrics registry, no event records.
    pub fn metrics_only() -> TraceConfig {
        TraceConfig {
            metrics: true,
            ..TraceConfig::default()
        }
    }

    /// True if any class is enabled.
    pub fn any(&self) -> bool {
        self.messages || self.routes || self.overlay || self.ops || self.metrics
    }
}

/// One typed trace event. Message kinds are stored as indices into the
/// engine's `Message::KINDS` table (the [`Tracer`] holds the table for
/// name resolution at serialization time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was accounted and scheduled.
    MsgSend {
        /// Sender address.
        from: usize,
        /// Destination address.
        to: usize,
        /// `Message::kind_id()`.
        kind: usize,
        /// Wire size in bytes.
        bytes: u64,
    },
    /// A message reached a live destination's handler.
    MsgRecv {
        /// Sender address.
        from: usize,
        /// Destination address.
        to: usize,
        /// `Message::kind_id()`.
        kind: usize,
    },
    /// Fault injection silently dropped a message.
    MsgDrop {
        /// Sender address.
        from: usize,
        /// Destination address.
        to: usize,
        /// `Message::kind_id()`.
        kind: usize,
    },
    /// Fault injection scheduled an extra delivery.
    MsgDup {
        /// Sender address.
        from: usize,
        /// Destination address.
        to: usize,
        /// `Message::kind_id()`.
        kind: usize,
    },
    /// A message reached a dead destination (send-failure bounce).
    MsgFail {
        /// Sender address.
        from: usize,
        /// Destination address.
        to: usize,
        /// `Message::kind_id()`.
        kind: usize,
    },
    /// A node forwarded a routed message one hop closer to the key.
    RouteHop {
        /// The forwarding node.
        node: usize,
        /// Destination key.
        key: u128,
        /// Hop count so far (before this forward).
        hop: u32,
        /// Shared-prefix length (in digits) between node id and key.
        depth: u32,
    },
    /// A routed message reached its root and was delivered.
    RouteDeliver {
        /// The delivering node.
        node: usize,
        /// Destination key.
        key: u128,
        /// Total overlay hops taken.
        hops: u32,
        /// Accumulated path latency in microseconds.
        lat_us: u64,
    },
    /// A routed message exhausted its TTL and was dropped.
    RouteDrop {
        /// The dropping node.
        node: usize,
        /// Destination key.
        key: u128,
    },
    /// A node's join protocol changed phase
    /// (`start`/`retry`/`complete`/`failed`).
    JoinPhase {
        /// The joining node.
        node: usize,
        /// Phase label.
        phase: &'static str,
    },
    /// A node declared a peer failed after missed heartbeat acks.
    Suspect {
        /// The suspecting node.
        node: usize,
        /// The suspected peer.
        peer: usize,
        /// Consecutive heartbeat rounds without an ack.
        missed: u32,
    },
    /// A client operation (insert/lookup/reclaim) was issued.
    OpStart {
        /// The client node.
        node: usize,
        /// Operation kind label.
        kind: &'static str,
        /// The key the operation targets.
        key: u128,
        /// Requested replication factor (0 where not applicable).
        k: u32,
    },
    /// A client operation was retransmitted.
    OpRetry {
        /// The client node.
        node: usize,
        /// Operation kind label.
        kind: &'static str,
        /// Attempt number (1 = first retry).
        attempt: u32,
    },
    /// A client operation terminated explicitly.
    OpEnd {
        /// The client node.
        node: usize,
        /// Operation kind label.
        kind: &'static str,
        /// Success or explicit failure.
        ok: bool,
        /// Replicas confirmed (inserts; 0 where not applicable).
        fanout: u32,
    },
    /// A node accepted a replica of a file (directly or via diversion).
    ReplicaStored {
        /// The storing node.
        node: usize,
        /// The file's routing key.
        key: u128,
        /// True if stored through replica diversion.
        diverted: bool,
    },
}

/// A timestamped, operation-attributed trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time in microseconds.
    pub t: u64,
    /// The operation this record belongs to ([`OpId::NONE`] if none).
    pub op: OpId,
    /// The event.
    pub ev: TraceEvent,
}

/// A fixed-bucket integer histogram with a saturating last bucket.
///
/// Values land in bucket `min(v / width, n - 1)`; the final bucket
/// absorbs everything at or above `width * (n - 1)`. Percentiles are
/// rank-based — [`Histogram::percentile`] returns the lower bound of
/// the bucket containing the `⌈p/100 · count⌉`-th smallest sample,
/// which is *exact* for width-1 histograms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    buckets: Vec<u64>,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(1, 1)
    }
}

impl Histogram {
    /// A histogram of `nbuckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `nbuckets` is zero.
    pub fn new(width: u64, nbuckets: usize) -> Histogram {
        assert!(width > 0, "bucket width must be positive");
        assert!(nbuckets > 0, "need at least one bucket");
        Histogram {
            width,
            buckets: vec![0; nbuckets],
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let i = ((v / self.width) as usize).min(self.buckets.len() - 1);
        self.buckets[i] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket width.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Raw bucket counts (last bucket saturates).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// True if any sample landed in the saturating last bucket, i.e.
    /// reported upper percentiles may be clipped.
    pub fn saturated(&self) -> bool {
        self.buckets.last().is_some_and(|&c| c > 0)
    }

    /// Lower bound of the bucket holding the `⌈p/100 · count⌉`-th
    /// smallest sample (`p` in `1..=100`); `None` on an empty
    /// histogram.
    pub fn percentile(&self, p: u32) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // Rank in u128: `count * p` overflows u64 once count exceeds
        // u64::MAX / 100, which a long-lived aggregated histogram can
        // legitimately reach.
        let p = u128::from(p.clamp(1, 100));
        let rank = (u128::from(self.count) * p).div_ceil(100).max(1);
        let mut cum = 0u128;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += u128::from(c);
            if cum >= rank {
                return Some(i as u64 * self.width);
            }
        }
        Some((self.buckets.len() as u64 - 1) * self.width)
    }

    /// Folds another histogram into this one (summing buckets).
    ///
    /// Shape mismatches (different bucket width or count) are a
    /// caller bug — mixing scales would silently corrupt every
    /// percentile — so they surface as a typed [`ShapeMismatch`]
    /// error instead of blending; `self` is left untouched on error.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), ShapeMismatch> {
        if self.width != other.width || self.buckets.len() != other.buckets.len() {
            return Err(ShapeMismatch {
                expected: (self.width, self.buckets.len()),
                got: (other.width, other.buckets.len()),
            });
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        Ok(())
    }

    fn to_json(&self) -> String {
        let (p50, p95, p99) = (
            self.percentile(50).unwrap_or(0),
            self.percentile(95).unwrap_or(0),
            self.percentile(99).unwrap_or(0),
        );
        json::Obj::new()
            .int("width", self.width)
            .int("count", self.count)
            .int("p50", p50)
            .int("p95", p95)
            .int("p99", p99)
            // Clipped upper percentiles are invisible in the numbers
            // alone; readers must be able to see the last bucket
            // saturated without re-deriving it from `buckets`.
            .bool("saturated", self.saturated())
            .raw(
                "buckets",
                &json::array(self.buckets.iter().map(|c| c.to_string())),
            )
            .build()
    }
}

/// Two histograms with different bucket geometry were asked to merge
/// (see [`Histogram::merge`]). Shapes are `(bucket_width, buckets)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// Shape of the receiving histogram.
    pub expected: (u64, usize),
    /// Shape of the histogram being merged in.
    pub got: (u64, usize),
}

impl std::fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot merge histograms with different shapes: \
             width {} x {} buckets vs width {} x {} buckets",
            self.expected.0, self.expected.1, self.got.0, self.got.1
        )
    }
}

impl std::error::Error for ShapeMismatch {}

/// Per-node traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Messages sent by this node.
    pub sent: u64,
    /// Messages received by this node.
    pub recv: u64,
}

/// The metrics registry: per-kind and per-node counters, named gauges,
/// and the standard latency/hop/retry histograms. Updated by the
/// [`Tracer`] when [`TraceConfig::metrics`] is on.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    kinds: &'static [&'static str],
    sent_by_kind: Vec<u64>,
    recv_by_kind: Vec<u64>,
    dropped_by_kind: Vec<u64>,
    duplicated_by_kind: Vec<u64>,
    failed_by_kind: Vec<u64>,
    per_node: BTreeMap<usize, NodeCounters>,
    gauges: BTreeMap<(&'static str, usize), u64>,
    /// Route path latency, 1 ms buckets up to 512 ms.
    pub route_latency_us: Histogram,
    /// Overlay hops per delivered route, width 1.
    pub hop_count: Histogram,
    /// Retransmission attempt numbers, width 1.
    pub retry_count: Histogram,
}

impl Metrics {
    fn for_kinds(kinds: &'static [&'static str]) -> Metrics {
        Metrics {
            kinds,
            sent_by_kind: vec![0; kinds.len()],
            recv_by_kind: vec![0; kinds.len()],
            dropped_by_kind: vec![0; kinds.len()],
            duplicated_by_kind: vec![0; kinds.len()],
            failed_by_kind: vec![0; kinds.len()],
            per_node: BTreeMap::new(),
            gauges: BTreeMap::new(),
            route_latency_us: Histogram::new(1_000, 512),
            hop_count: Histogram::new(1, 32),
            retry_count: Histogram::new(1, 16),
        }
    }

    fn bump(v: &mut [u64], kind: usize) {
        if let Some(c) = v.get_mut(kind) {
            *c += 1;
        }
    }

    /// `(kind, count)` pairs for one per-kind counter family, in
    /// `Message::KINDS` order.
    fn kind_pairs<'a>(&'a self, v: &'a [u64]) -> impl Iterator<Item = (&'static str, u64)> + 'a {
        self.kinds.iter().copied().zip(v.iter().copied())
    }

    /// Messages sent per kind, in `Message::KINDS` order.
    pub fn sent_by_kind(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kind_pairs(&self.sent_by_kind)
    }

    /// Messages received per kind, in `Message::KINDS` order.
    pub fn recv_by_kind(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kind_pairs(&self.recv_by_kind)
    }

    /// Fault-injected drops per kind, in `Message::KINDS` order.
    pub fn dropped_by_kind(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kind_pairs(&self.dropped_by_kind)
    }

    /// Fault-injected duplicates per kind, in `Message::KINDS` order.
    pub fn duplicated_by_kind(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kind_pairs(&self.duplicated_by_kind)
    }

    /// Dead-destination failures per kind, in `Message::KINDS` order.
    pub fn failed_by_kind(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kind_pairs(&self.failed_by_kind)
    }

    /// Per-node sent/received counters.
    pub fn node_counters(&self) -> impl Iterator<Item = (usize, NodeCounters)> + '_ {
        self.per_node.iter().map(|(&a, &c)| (a, c))
    }

    /// Folds another registry into this one: counters and histograms
    /// sum, per-node counters add, and gauges combine under an explicit
    /// **monotonic max** policy — the merged gauge is the maximum of
    /// the two values. "Other wins" would make a merged gauge depend on
    /// shard merge order; max is commutative and associative, so any
    /// merge order yields the same registry. (Within one registry,
    /// [`Metrics::set_gauge`] stays last-write-wins.) Per-node counter
    /// keys are disjoint across shards, so the combination is
    /// order-independent there too.
    ///
    /// # Panics
    ///
    /// Panics if the two registries count different kind tables.
    pub fn merge(&mut self, other: &Metrics) {
        assert!(
            self.kinds == other.kinds,
            "cannot merge metrics over different kind tables"
        );
        let sum = |mine: &mut Vec<u64>, theirs: &[u64]| {
            for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                *m += t;
            }
        };
        sum(&mut self.sent_by_kind, &other.sent_by_kind);
        sum(&mut self.recv_by_kind, &other.recv_by_kind);
        sum(&mut self.dropped_by_kind, &other.dropped_by_kind);
        sum(&mut self.duplicated_by_kind, &other.duplicated_by_kind);
        sum(&mut self.failed_by_kind, &other.failed_by_kind);
        for (&node, c) in &other.per_node {
            let mine = self.per_node.entry(node).or_default();
            mine.sent += c.sent;
            mine.recv += c.recv;
        }
        for (&key, &v) in &other.gauges {
            let mine = self.gauges.entry(key).or_insert(0);
            *mine = (*mine).max(v);
        }
        // The registry constructs every histogram with a fixed shape,
        // so a mismatch here is unreachable.
        self.route_latency_us
            .merge(&other.route_latency_us)
            .expect("registry histograms share shape by construction");
        self.hop_count
            .merge(&other.hop_count)
            .expect("registry histograms share shape by construction");
        self.retry_count
            .merge(&other.retry_count)
            .expect("registry histograms share shape by construction");
    }

    /// Sets a named per-node gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, node: usize, value: u64) {
        self.gauges.insert((name, node), value);
    }

    /// Reads a named per-node gauge.
    pub fn gauge(&self, name: &'static str, node: usize) -> Option<u64> {
        self.gauges.get(&(name, node)).copied()
    }

    /// Serializes the registry as one `past-trace/v1` JSON document.
    pub fn to_json(&self) -> String {
        let kind_obj = |v: &[u64]| {
            let mut o = json::Obj::new();
            for (k, c) in self.kind_pairs(v) {
                if c > 0 {
                    o = o.int(k, c);
                }
            }
            o.build()
        };
        json::Obj::new()
            .str("schema", "past-trace/v1")
            .raw("sent_by_kind", &kind_obj(&self.sent_by_kind))
            .raw("recv_by_kind", &kind_obj(&self.recv_by_kind))
            .raw("dropped_by_kind", &kind_obj(&self.dropped_by_kind))
            .raw("duplicated_by_kind", &kind_obj(&self.duplicated_by_kind))
            .raw("failed_by_kind", &kind_obj(&self.failed_by_kind))
            .raw(
                "nodes",
                &json::array(self.per_node.iter().map(|(&a, c)| {
                    json::Obj::new()
                        .int("node", a as u64)
                        .int("sent", c.sent)
                        .int("recv", c.recv)
                        .build()
                })),
            )
            .raw(
                "gauges",
                &json::array(self.gauges.iter().map(|(&(name, node), &v)| {
                    json::Obj::new()
                        .str("name", name)
                        .int("node", node as u64)
                        .int("value", v)
                        .build()
                })),
            )
            .raw("route_latency_us", &self.route_latency_us.to_json())
            .raw("hop_count", &self.hop_count.to_json())
            .raw("retry_count", &self.retry_count.to_json())
            .build()
    }
}

/// FNV-1a 64-bit hash (trace fingerprints).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The trace sink: an append-only record buffer plus the [`Metrics`]
/// registry, both gated by a [`TraceConfig`]. Owned by the engine; all
/// record methods take the simulated time explicitly so the tracer can
/// never consult a wall clock.
#[derive(Debug, Default)]
pub struct Tracer {
    cfg: TraceConfig,
    kinds: &'static [&'static str],
    records: Vec<TraceRecord>,
    /// The metrics registry (read directly by harnesses).
    pub metrics: Metrics,
    /// The flight recorder, when sampling is enabled. Fed by the same
    /// hooks as the record buffer, but gated only on its own presence
    /// — a series can run with every trace class off.
    series: Option<TimeSeries>,
    /// Per-kind mask: true for repair-plane message kinds (kind name
    /// contains `repair`), so the series can count repair traffic
    /// without string-matching on the hot path.
    series_repair: Vec<bool>,
}

/// Formats into the output string. `fmt::Write` for `String` is
/// infallible, so this swallows no real error — it exists so the
/// serializer never discards a `Result` with `let _ =` (rule E1).
pub(crate) fn wfmt(out: &mut String, args: std::fmt::Arguments<'_>) {
    use std::fmt::Write as _;
    out.write_fmt(args)
        .expect("formatting into a String cannot fail");
}

impl Tracer {
    /// A disabled tracer bound to a message-kind table.
    pub fn for_kinds(kinds: &'static [&'static str]) -> Tracer {
        Tracer {
            cfg: TraceConfig::off(),
            kinds,
            records: Vec::new(),
            metrics: Metrics::for_kinds(kinds),
            series: None,
            series_repair: Vec::new(),
        }
    }

    /// Sets which event classes are recorded (existing records are
    /// kept; use [`Tracer::clear`] to reset).
    pub fn configure(&mut self, cfg: TraceConfig) {
        self.cfg = cfg;
    }

    /// The configuration in force.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// True if any event class is enabled or a series is attached —
    /// engines use this to gate their instrumentation hook calls, so
    /// a series-only tracer (all classes off) must still count as
    /// enabled or the flight recorder would see no message plane.
    pub fn enabled(&self) -> bool {
        self.cfg.any() || self.series.is_some()
    }

    /// Attaches a flight recorder with the given window. An existing
    /// series (and its windows) is replaced.
    pub fn set_series(&mut self, cfg: SeriesConfig) {
        self.series = Some(TimeSeries::new(cfg));
        self.series_repair = self.kinds.iter().map(|k| k.contains("repair")).collect();
    }

    /// The attached flight recorder, if any.
    pub fn series(&self) -> Option<&TimeSeries> {
        self.series.as_ref()
    }

    /// Mutable access to the flight recorder (harness-side samplers
    /// record store/overlay gauges through this).
    pub fn series_mut(&mut self) -> Option<&mut TimeSeries> {
        self.series.as_mut()
    }

    /// True if a flight recorder is attached.
    pub fn series_enabled(&self) -> bool {
        self.series.is_some()
    }

    /// All records so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Drops all records, resets the metrics registry, and empties the
    /// series windows (keeping the series configuration).
    pub fn clear(&mut self) {
        self.records.clear();
        self.metrics = Metrics::for_kinds(self.kinds);
        if let Some(s) = &mut self.series {
            s.clear();
        }
    }

    // -- message plane -------------------------------------------------

    /// A message was accounted and scheduled.
    #[inline]
    pub fn msg_send(&mut self, t: u64, op: OpId, from: usize, to: usize, kind: usize, bytes: u64) {
        if self.cfg.metrics {
            Metrics::bump(&mut self.metrics.sent_by_kind, kind);
            self.metrics.per_node.entry(from).or_default().sent += 1;
        }
        if let Some(s) = &mut self.series {
            s.bump(t, "sent", 1);
            s.bump(t, "sent_bytes", bytes);
            if self.series_repair.get(kind).copied().unwrap_or(false) {
                s.bump(t, "repair_msgs", 1);
                s.bump(t, "repair_bytes", bytes);
            }
        }
        if self.cfg.messages {
            self.push(
                t,
                op,
                TraceEvent::MsgSend {
                    from,
                    to,
                    kind,
                    bytes,
                },
            );
        }
    }

    /// A message reached a live destination.
    #[inline]
    pub fn msg_recv(&mut self, t: u64, op: OpId, from: usize, to: usize, kind: usize) {
        if self.cfg.metrics {
            Metrics::bump(&mut self.metrics.recv_by_kind, kind);
            self.metrics.per_node.entry(to).or_default().recv += 1;
        }
        if let Some(s) = &mut self.series {
            s.bump(t, "recv", 1);
        }
        if self.cfg.messages {
            self.push(t, op, TraceEvent::MsgRecv { from, to, kind });
        }
    }

    /// Fault injection dropped a message.
    #[inline]
    pub fn msg_drop(&mut self, t: u64, op: OpId, from: usize, to: usize, kind: usize) {
        if self.cfg.metrics {
            Metrics::bump(&mut self.metrics.dropped_by_kind, kind);
        }
        if let Some(s) = &mut self.series {
            s.bump(t, "dropped", 1);
        }
        if self.cfg.messages {
            self.push(t, op, TraceEvent::MsgDrop { from, to, kind });
        }
    }

    /// Fault injection duplicated a message.
    #[inline]
    pub fn msg_dup(&mut self, t: u64, op: OpId, from: usize, to: usize, kind: usize) {
        if self.cfg.metrics {
            Metrics::bump(&mut self.metrics.duplicated_by_kind, kind);
        }
        if let Some(s) = &mut self.series {
            s.bump(t, "duplicated", 1);
        }
        if self.cfg.messages {
            self.push(t, op, TraceEvent::MsgDup { from, to, kind });
        }
    }

    /// A message hit a dead destination.
    #[inline]
    pub fn msg_fail(&mut self, t: u64, op: OpId, from: usize, to: usize, kind: usize) {
        if self.cfg.metrics {
            Metrics::bump(&mut self.metrics.failed_by_kind, kind);
        }
        if let Some(s) = &mut self.series {
            s.bump(t, "failed_sends", 1);
        }
        if self.cfg.messages {
            self.push(t, op, TraceEvent::MsgFail { from, to, kind });
        }
    }

    // -- routing plane -------------------------------------------------

    /// A node forwarded a routed message.
    #[inline]
    pub fn route_hop(&mut self, t: u64, op: OpId, node: usize, key: u128, hop: u32, depth: u32) {
        if self.cfg.routes {
            self.push(
                t,
                op,
                TraceEvent::RouteHop {
                    node,
                    key,
                    hop,
                    depth,
                },
            );
        }
    }

    /// A routed message was delivered at its root.
    #[inline]
    pub fn route_deliver(
        &mut self,
        t: u64,
        op: OpId,
        node: usize,
        key: u128,
        hops: u32,
        lat_us: u64,
    ) {
        if self.cfg.metrics {
            self.metrics.hop_count.record(u64::from(hops));
            self.metrics.route_latency_us.record(lat_us);
        }
        if let Some(s) = &mut self.series {
            s.bump(t, "delivered", 1);
            s.hist(t, "route_latency_us", lat_us);
        }
        if self.cfg.routes {
            self.push(
                t,
                op,
                TraceEvent::RouteDeliver {
                    node,
                    key,
                    hops,
                    lat_us,
                },
            );
        }
    }

    /// A routed message exhausted its TTL.
    #[inline]
    pub fn route_drop(&mut self, t: u64, op: OpId, node: usize, key: u128) {
        if self.cfg.routes {
            self.push(t, op, TraceEvent::RouteDrop { node, key });
        }
    }

    // -- overlay plane -------------------------------------------------

    /// A join protocol phase transition.
    #[inline]
    pub fn join_phase(&mut self, t: u64, node: usize, phase: &'static str) {
        if self.cfg.overlay {
            self.push(t, OpId::NONE, TraceEvent::JoinPhase { node, phase });
        }
    }

    /// A peer was declared failed after missed heartbeat acks.
    #[inline]
    pub fn suspect(&mut self, t: u64, node: usize, peer: usize, missed: u32) {
        if let Some(s) = &mut self.series {
            s.bump(t, "suspicions", 1);
        }
        if self.cfg.overlay {
            self.push(t, OpId::NONE, TraceEvent::Suspect { node, peer, missed });
        }
    }

    // -- operation plane -----------------------------------------------

    /// A client operation was issued.
    #[inline]
    pub fn op_start(
        &mut self,
        t: u64,
        op: OpId,
        node: usize,
        kind: &'static str,
        key: u128,
        k: u32,
    ) {
        if self.cfg.ops && !op.is_none() {
            self.push(t, op, TraceEvent::OpStart { node, kind, key, k });
        }
    }

    /// A client operation was retransmitted.
    #[inline]
    pub fn op_retry(&mut self, t: u64, op: OpId, node: usize, kind: &'static str, attempt: u32) {
        if self.cfg.metrics {
            self.metrics.retry_count.record(u64::from(attempt));
        }
        if let Some(s) = &mut self.series {
            s.bump(t, "retries", 1);
        }
        if self.cfg.ops && !op.is_none() {
            self.push(
                t,
                op,
                TraceEvent::OpRetry {
                    node,
                    kind,
                    attempt,
                },
            );
        }
    }

    /// A client operation terminated explicitly.
    #[inline]
    pub fn op_end(
        &mut self,
        t: u64,
        op: OpId,
        node: usize,
        kind: &'static str,
        ok: bool,
        fanout: u32,
    ) {
        if self.cfg.ops && !op.is_none() {
            self.push(
                t,
                op,
                TraceEvent::OpEnd {
                    node,
                    kind,
                    ok,
                    fanout,
                },
            );
        }
    }

    /// A node stored a replica on behalf of an insert.
    #[inline]
    pub fn replica_stored(&mut self, t: u64, op: OpId, node: usize, key: u128, diverted: bool) {
        if let Some(s) = &mut self.series {
            s.bump(t, "replicas_stored", 1);
            if diverted {
                s.bump(t, "diversions", 1);
            }
        }
        if self.cfg.ops && !op.is_none() {
            self.push(
                t,
                op,
                TraceEvent::ReplicaStored {
                    node,
                    key,
                    diverted,
                },
            );
        }
    }

    /// Folds another tracer's records and metrics into this one. The
    /// combined record buffer is a concatenation; call
    /// [`Tracer::sort_canonical`] afterwards if a deterministic order
    /// is needed (e.g. after merging per-shard tracers).
    pub fn absorb(&mut self, mut other: Tracer) {
        self.records.append(&mut other.records);
        self.metrics.merge(&other.metrics);
        if let Some(theirs) = other.series.take() {
            match &mut self.series {
                Some(mine) => mine.merge(&theirs),
                None => {
                    self.series = Some(theirs);
                    self.series_repair = std::mem::take(&mut other.series_repair);
                }
            }
        }
    }

    /// Sorts the record buffer into the canonical order `(t, causal
    /// rank, serialized line)`. Records with equal time and equal
    /// content are identical, so this order depends only on the
    /// *multiset* of records — two runs that produced the same records
    /// in different interleavings (e.g. one shard vs. many) serialize
    /// and fingerprint identically after this call.
    ///
    /// The causal rank keeps same-microsecond lifecycles analyzable:
    /// `op_start` sorts before the records it caused and `op_end` after
    /// them (a lookup satisfied from the local store starts and ends at
    /// the same `t`; plain lexicographic order would put the end first
    /// and the analyzer would call the op stuck).
    pub fn sort_canonical(&mut self) {
        fn rank(ev: &TraceEvent) -> u8 {
            match ev {
                TraceEvent::OpStart { .. } => 0,
                TraceEvent::OpEnd { .. } => 2,
                _ => 1,
            }
        }
        let records = std::mem::take(&mut self.records);
        let mut keyed: Vec<(String, TraceRecord)> = records
            .into_iter()
            .map(|r| {
                let mut line = String::new();
                self.write_line(&mut line, &r);
                (line, r)
            })
            .collect();
        keyed.sort_by(|a, b| {
            (a.1.t, rank(&a.1.ev), a.0.as_str()).cmp(&(b.1.t, rank(&b.1.ev), b.0.as_str()))
        });
        self.records = keyed.into_iter().map(|(_, r)| r).collect();
    }

    fn push(&mut self, t: u64, op: OpId, ev: TraceEvent) {
        self.records.push(TraceRecord { t, op, ev });
    }

    fn kind_name(&self, kind: usize) -> &'static str {
        self.kinds.get(kind).copied().unwrap_or("?")
    }

    /// Serializes the record stream as JSONL (one flat object per
    /// line, stable field order — the fingerprint hashes these bytes).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            self.write_line(&mut out, r);
            out.push('\n');
        }
        out
    }

    fn write_line(&self, out: &mut String, r: &TraceRecord) {
        let head = |out: &mut String, ev: &str| {
            wfmt(
                out,
                format_args!("{{\"t\":{},\"op\":{},\"ev\":\"{ev}\"", r.t, r.op.0),
            );
        };
        let msg = |out: &mut String, ev: &str, from: usize, to: usize, kind: usize| {
            head(out, ev);
            wfmt(
                out,
                format_args!(
                    ",\"from\":{from},\"to\":{to},\"kind\":\"{}\"",
                    self.kind_name(kind)
                ),
            );
        };
        match &r.ev {
            TraceEvent::MsgSend {
                from,
                to,
                kind,
                bytes,
            } => {
                msg(out, "send", *from, *to, *kind);
                wfmt(out, format_args!(",\"bytes\":{bytes}"));
            }
            TraceEvent::MsgRecv { from, to, kind } => msg(out, "recv", *from, *to, *kind),
            TraceEvent::MsgDrop { from, to, kind } => msg(out, "drop", *from, *to, *kind),
            TraceEvent::MsgDup { from, to, kind } => msg(out, "dup", *from, *to, *kind),
            TraceEvent::MsgFail { from, to, kind } => msg(out, "fail", *from, *to, *kind),
            TraceEvent::RouteHop {
                node,
                key,
                hop,
                depth,
            } => {
                head(out, "hop");
                wfmt(
                    out,
                    format_args!(
                        ",\"node\":{node},\"key\":\"{key:032x}\",\"hop\":{hop},\"depth\":{depth}"
                    ),
                );
            }
            TraceEvent::RouteDeliver {
                node,
                key,
                hops,
                lat_us,
            } => {
                head(out, "deliver");
                wfmt(
                    out,
                    format_args!(",\"node\":{node},\"key\":\"{key:032x}\",\"hops\":{hops},\"lat_us\":{lat_us}"),
                );
            }
            TraceEvent::RouteDrop { node, key } => {
                head(out, "route_drop");
                wfmt(out, format_args!(",\"node\":{node},\"key\":\"{key:032x}\""));
            }
            TraceEvent::JoinPhase { node, phase } => {
                head(out, "join");
                wfmt(out, format_args!(",\"node\":{node},\"phase\":\"{phase}\""));
            }
            TraceEvent::Suspect { node, peer, missed } => {
                head(out, "suspect");
                wfmt(
                    out,
                    format_args!(",\"node\":{node},\"peer\":{peer},\"missed\":{missed}"),
                );
            }
            TraceEvent::OpStart { node, kind, key, k } => {
                head(out, "op_start");
                wfmt(
                    out,
                    format_args!(
                        ",\"node\":{node},\"kind\":\"{kind}\",\"key\":\"{key:032x}\",\"k\":{k}"
                    ),
                );
            }
            TraceEvent::OpRetry {
                node,
                kind,
                attempt,
            } => {
                head(out, "op_retry");
                wfmt(
                    out,
                    format_args!(",\"node\":{node},\"kind\":\"{kind}\",\"attempt\":{attempt}"),
                );
            }
            TraceEvent::OpEnd {
                node,
                kind,
                ok,
                fanout,
            } => {
                head(out, "op_end");
                wfmt(
                    out,
                    format_args!(
                        ",\"node\":{node},\"kind\":\"{kind}\",\"ok\":{ok},\"fanout\":{fanout}"
                    ),
                );
            }
            TraceEvent::ReplicaStored {
                node,
                key,
                diverted,
            } => {
                head(out, "replica");
                wfmt(
                    out,
                    format_args!(",\"node\":{node},\"key\":\"{key:032x}\",\"diverted\":{diverted}"),
                );
            }
        }
        out.push('}');
    }

    /// FNV-1a 64 fingerprint of the JSONL serialization: the
    /// same-seed-same-trace determinism check compares these.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.to_jsonl().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: &[&str] = &["ping", "pong"];

    // -- histogram -----------------------------------------------------

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new(10, 4);
        // 0..=9 → bucket 0, 10..=19 → bucket 1, 29/30 straddle bucket 2/3,
        // and everything ≥ 30 saturates into the last bucket.
        for v in [0, 9, 10, 19, 20, 29, 30, 31, 1_000] {
            h.record(v);
        }
        assert_eq!(h.buckets(), &[2, 2, 2, 3]);
        assert_eq!(h.count(), 9);
        assert!(h.saturated());
    }

    #[test]
    fn percentile_on_empty_histogram_is_none() {
        let h = Histogram::new(1, 8);
        assert_eq!(h.percentile(50), None);
        assert_eq!(h.percentile(99), None);
        assert!(!h.saturated());
    }

    #[test]
    fn percentile_on_single_element() {
        let mut h = Histogram::new(1, 8);
        h.record(5);
        for p in [1, 50, 95, 99, 100] {
            assert_eq!(h.percentile(p), Some(5));
        }
    }

    #[test]
    fn percentiles_are_exact_at_width_one() {
        let mut h = Histogram::new(1, 101);
        for v in 1..=100u64 {
            h.record(v);
        }
        // Rank-based: p-th percentile of 1..=100 is exactly p.
        assert_eq!(h.percentile(50), Some(50));
        assert_eq!(h.percentile(95), Some(95));
        assert_eq!(h.percentile(99), Some(99));
        assert_eq!(h.percentile(100), Some(100));
    }

    #[test]
    fn percentile_on_saturated_histogram_clips_to_last_bucket() {
        let mut h = Histogram::new(10, 3);
        for _ in 0..10 {
            h.record(500); // all land in the saturating bucket at 20+
        }
        assert!(h.saturated());
        assert_eq!(h.percentile(50), Some(20));
        assert_eq!(h.percentile(99), Some(20));
        assert!(h.to_json().contains("\"saturated\": true"));
    }

    #[test]
    fn percentile_rank_survives_huge_counts() {
        // A count near u64::MAX used to overflow `count * p` and
        // panic (debug) or mis-rank (release); rank math is u128 now.
        let mut h = Histogram::new(1, 4);
        h.buckets = vec![u64::MAX / 2, u64::MAX / 2 - 2, 2, 1];
        h.count = u64::MAX;
        // rank(50) = 2^63, one past the first bucket's 2^63 - 1.
        assert_eq!(h.percentile(50), Some(1));
        assert_eq!(h.percentile(99), Some(1));
        assert_eq!(h.percentile(100), Some(3));
    }

    #[test]
    fn histogram_json_validates() {
        let mut h = Histogram::new(2, 4);
        h.record(0);
        h.record(3);
        h.record(5);
        let doc = h.to_json();
        json::validate(&doc).expect("histogram JSON must validate");
        assert!(doc.contains("\"saturated\": false"));
    }

    // -- tracer gating -------------------------------------------------

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::for_kinds(KINDS);
        t.msg_send(1, OpId(1), 0, 1, 0, 64);
        t.route_deliver(2, OpId(1), 1, 42, 3, 999);
        t.op_start(3, OpId(1), 0, "insert", 42, 5);
        assert!(t.records().is_empty());
        assert_eq!(t.metrics.hop_count.count(), 0);
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn class_filters_gate_independently() {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::lifecycle());
        t.msg_send(1, OpId::NONE, 0, 1, 0, 64); // messages: off
        t.route_hop(2, OpId(7), 3, 42, 0, 1); // routes: on
        t.op_start(3, OpId(7), 0, "insert", 42, 5); // ops: on
        t.join_phase(4, 9, "start"); // overlay: off
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.metrics.sent_by_kind().map(|(_, c)| c).sum::<u64>(), 0);
    }

    #[test]
    fn op_events_with_no_op_id_are_skipped() {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::full());
        t.op_start(1, OpId::NONE, 0, "reclaim", 42, 0);
        t.op_end(2, OpId::NONE, 0, "reclaim", true, 0);
        t.replica_stored(3, OpId::NONE, 1, 42, false);
        assert!(t.records().is_empty());
    }

    #[test]
    fn metrics_only_counts_without_recording() {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::metrics_only());
        t.msg_send(1, OpId::NONE, 0, 1, 0, 64);
        t.msg_send(2, OpId::NONE, 0, 1, 1, 32);
        t.msg_recv(3, OpId::NONE, 0, 1, 0);
        t.msg_drop(4, OpId::NONE, 0, 1, 1);
        t.msg_dup(5, OpId::NONE, 0, 1, 1);
        t.route_deliver(6, OpId::NONE, 1, 42, 3, 2_500);
        assert!(t.records().is_empty());
        let dropped: Vec<_> = t.metrics.dropped_by_kind().collect();
        assert_eq!(dropped, vec![("ping", 0), ("pong", 1)]);
        let dup: u64 = t.metrics.duplicated_by_kind().map(|(_, c)| c).sum();
        assert_eq!(dup, 1);
        assert_eq!(t.metrics.hop_count.percentile(50), Some(3));
        assert_eq!(t.metrics.route_latency_us.percentile(50), Some(2_000));
        let nodes: Vec<_> = t.metrics.node_counters().collect();
        assert_eq!(nodes[0], (0, NodeCounters { sent: 2, recv: 0 }));
        assert_eq!(nodes[1], (1, NodeCounters { sent: 0, recv: 1 }));
    }

    #[test]
    fn gauges_read_back_last_write() {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::metrics_only());
        t.metrics.set_gauge("used_bytes", 3, 100);
        t.metrics.set_gauge("used_bytes", 3, 250);
        assert_eq!(t.metrics.gauge("used_bytes", 3), Some(250));
        assert_eq!(t.metrics.gauge("used_bytes", 4), None);
    }

    // -- serialization -------------------------------------------------

    #[test]
    fn jsonl_lines_are_valid_json_and_fingerprint_is_stable() {
        let build = || {
            let mut t = Tracer::for_kinds(KINDS);
            t.configure(TraceConfig::full());
            t.msg_send(10, OpId(1), 0, 1, 0, 64);
            t.msg_recv(20, OpId(1), 0, 1, 0);
            t.route_hop(20, OpId(1), 1, 0xfeed_beef, 0, 2);
            t.route_deliver(30, OpId(1), 2, 0xfeed_beef, 1, 12_345);
            t.join_phase(40, 7, "complete");
            t.suspect(50, 7, 8, 3);
            t.op_start(60, OpId(1), 0, "insert", 0xfeed_beef, 5);
            t.op_retry(70, OpId(1), 0, "insert", 1);
            t.op_end(80, OpId(1), 0, "insert", true, 5);
            t.replica_stored(80, OpId(1), 2, 0xfeed_beef, true);
            t
        };
        let t = build();
        for line in t.to_jsonl().lines() {
            json::validate(line).expect("every trace line must be valid JSON");
        }
        assert_eq!(t.fingerprint(), build().fingerprint());
        assert_ne!(t.fingerprint(), fnv1a(b""));
    }

    #[test]
    fn metrics_json_validates() {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::full());
        t.msg_send(1, OpId::NONE, 0, 1, 0, 64);
        t.metrics.set_gauge("used_bytes", 0, 9);
        json::validate(&t.metrics.to_json()).expect("metrics JSON must validate");
    }

    // -- merging -------------------------------------------------------

    #[test]
    fn histogram_merge_sums_buckets_and_count() {
        let mut a = Histogram::new(10, 4);
        let mut b = Histogram::new(10, 4);
        for v in [0, 15, 500] {
            a.record(v);
        }
        for v in [5, 15] {
            b.record(v);
        }
        a.merge(&b).expect("same-shape merge must succeed");
        assert_eq!(a.buckets(), &[2, 2, 0, 1]);
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn histogram_merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(10, 4);
        a.record(7);
        let err = a
            .merge(&Histogram::new(5, 4))
            .expect_err("width mismatch must be rejected");
        assert_eq!(err.expected, (10, 4));
        assert_eq!(err.got, (5, 4));
        assert!(err.to_string().contains("different shapes"));
        let err = a
            .merge(&Histogram::new(10, 8))
            .expect_err("bucket-count mismatch must be rejected");
        assert_eq!(err.got, (10, 8));
        // The receiver is untouched on error.
        assert_eq!(a.count(), 1);
        assert_eq!(a.buckets(), &[1, 0, 0, 0]);
    }

    /// Merged gauges follow the max policy, so shard merge order
    /// cannot change the combined registry.
    #[test]
    fn metrics_gauge_merge_is_order_independent() {
        let mk = |v0: u64, v2: u64| {
            let mut m = Metrics::for_kinds(KINDS);
            m.set_gauge("used", 0, v0);
            m.set_gauge("used", 2, v2);
            m
        };
        let (a, b) = (mk(10, 3), mk(4, 90));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for m in [&ab, &ba] {
            assert_eq!(m.gauge("used", 0), Some(10));
            assert_eq!(m.gauge("used", 2), Some(90));
        }
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn metrics_merge_combines_all_families() {
        let mut a = Tracer::for_kinds(KINDS);
        a.configure(TraceConfig::metrics_only());
        a.msg_send(1, OpId::NONE, 0, 1, 0, 64);
        a.route_deliver(2, OpId::NONE, 1, 42, 3, 2_500);
        a.metrics.set_gauge("used", 0, 10);
        let mut b = Tracer::for_kinds(KINDS);
        b.configure(TraceConfig::metrics_only());
        b.msg_send(3, OpId::NONE, 2, 0, 0, 64);
        b.msg_send(3, OpId::NONE, 0, 2, 1, 32);
        b.msg_drop(4, OpId::NONE, 2, 0, 1);
        b.metrics.set_gauge("used", 2, 7);
        a.metrics.merge(&b.metrics);
        let sent: Vec<_> = a.metrics.sent_by_kind().collect();
        assert_eq!(sent, vec![("ping", 2), ("pong", 1)]);
        let dropped: u64 = a.metrics.dropped_by_kind().map(|(_, c)| c).sum();
        assert_eq!(dropped, 1);
        let nodes: Vec<_> = a.metrics.node_counters().collect();
        assert_eq!(nodes[0], (0, NodeCounters { sent: 2, recv: 0 }));
        assert_eq!(nodes[1], (2, NodeCounters { sent: 1, recv: 0 }));
        assert_eq!(a.metrics.hop_count.count(), 1);
        assert_eq!(a.metrics.gauge("used", 0), Some(10));
        assert_eq!(a.metrics.gauge("used", 2), Some(7));
    }

    /// Splitting one record stream across two tracers, absorbing, and
    /// canonically sorting must reproduce the single-tracer
    /// serialization bit for bit — the property the sharded engine's
    /// per-shard tracers rely on.
    #[test]
    fn absorb_plus_canonical_sort_is_partition_independent() {
        let record = |t: &mut Tracer, which: usize| {
            if which == 0 {
                t.msg_send(10, OpId(1), 0, 1, 0, 64);
                t.route_hop(20, OpId(1), 1, 42, 0, 1);
                t.op_start(20, OpId(1), 0, "insert", 42, 3);
            } else {
                t.msg_send(10, OpId(2), 2, 3, 1, 32);
                t.msg_recv(20, OpId(2), 2, 3, 1);
                t.join_phase(30, 3, "start");
            }
        };
        let mut whole = Tracer::for_kinds(KINDS);
        whole.configure(TraceConfig::full());
        record(&mut whole, 0);
        record(&mut whole, 1);
        whole.sort_canonical();
        // Partitioned: each half in its own tracer, absorbed in the
        // opposite order.
        let mut half_a = Tracer::for_kinds(KINDS);
        half_a.configure(TraceConfig::full());
        record(&mut half_a, 1);
        let mut half_b = Tracer::for_kinds(KINDS);
        half_b.configure(TraceConfig::full());
        record(&mut half_b, 0);
        half_a.absorb(half_b);
        half_a.sort_canonical();
        assert_eq!(whole.to_jsonl(), half_a.to_jsonl());
        assert_eq!(whole.fingerprint(), half_a.fingerprint());
    }

    /// A same-microsecond lifecycle (op served from the local store)
    /// must stay `op_start` → work → `op_end` after the canonical sort,
    /// even though "op_end" < "op_start" lexicographically.
    #[test]
    fn canonical_sort_keeps_same_time_lifecycles_causal() {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::full());
        t.op_end(50, OpId(1), 0, "lookup", true, 0);
        t.msg_send(50, OpId(1), 0, 1, 0, 64);
        t.op_start(50, OpId(1), 0, "lookup", 42, 1);
        t.sort_canonical();
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().map(|l| l.trim()).collect();
        assert!(lines[0].contains("op_start"), "got {:?}", lines[0]);
        assert!(lines[1].contains("send"), "got {:?}", lines[1]);
        assert!(lines[2].contains("op_end"), "got {:?}", lines[2]);
    }

    /// A series-only tracer (all trace classes off) still reports
    /// enabled, collects windowed counters from the hooks, and merges
    /// across tracers in `absorb` — the sharded-engine path.
    #[test]
    fn series_flows_through_hooks_and_absorb() {
        let mk = || {
            let mut t = Tracer::for_kinds(KINDS);
            t.set_series(SeriesConfig::new(1_000));
            t
        };
        let mut a = mk();
        assert!(a.enabled(), "series-only tracer must count as enabled");
        assert!(!a.config().any());
        a.msg_send(10, OpId(1), 0, 1, 0, 64);
        a.route_deliver(30, OpId(1), 2, 42, 1, 12_345);
        let mut b = mk();
        b.msg_send(1_500, OpId(2), 2, 3, 1, 32);
        b.msg_drop(1_600, OpId(2), 2, 3, 1);
        a.absorb(b);
        assert!(a.records().is_empty(), "no classes on, no records");
        let s = a.series().expect("series survives absorb");
        let w: Vec<(u64, u64, u64, u64)> = s
            .windows()
            .map(|(t, w)| {
                (
                    t,
                    w.counter("sent"),
                    w.counter("dropped"),
                    w.counter("delivered"),
                )
            })
            .collect();
        assert_eq!(w, vec![(0, 1, 0, 1), (1_000, 1, 1, 0)]);
    }

    #[test]
    fn clear_resets_records_and_metrics() {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::full());
        t.msg_send(1, OpId(1), 0, 1, 0, 64);
        t.clear();
        assert!(t.records().is_empty());
        assert_eq!(t.metrics.sent_by_kind().map(|(_, c)| c).sum::<u64>(), 0);
        // Still bound to the kind table after a clear.
        t.msg_send(2, OpId(1), 0, 1, 1, 32);
        assert_eq!(t.metrics.sent_by_kind().map(|(_, c)| c).sum::<u64>(), 1);
    }
}
