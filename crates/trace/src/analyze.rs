//! Trace analysis: JSONL parsing, per-operation timelines, liveness
//! and fan-out checks, and the hop-count bound.
//!
//! This is the library half of the `tracecheck` binary, kept here so
//! the checks are unit-testable and usable in-process. The input is
//! the flat JSONL produced by [`Tracer::to_jsonl`](crate::Tracer):
//! one object per line, string/integer/boolean fields only.

use std::collections::{BTreeMap, BTreeSet};

/// One parsed field value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Val {
    /// A non-negative integer.
    U(u64),
    /// A string (keys are 032x-hex strings).
    S(String),
    /// A boolean.
    B(bool),
}

impl Val {
    /// The integer value, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Val::U(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::S(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed trace record: the common header plus remaining fields.
#[derive(Clone, Debug)]
pub struct Rec {
    /// Simulated time in microseconds.
    pub t: u64,
    /// Operation id (0 = none).
    pub op: u64,
    /// Event name (`send`, `hop`, `op_start`, ...).
    pub ev: String,
    /// Event-specific fields.
    pub fields: BTreeMap<String, Val>,
}

impl Rec {
    /// Integer field accessor.
    pub fn u(&self, k: &str) -> Option<u64> {
        self.fields.get(k).and_then(Val::as_u64)
    }

    /// String field accessor.
    pub fn s(&self, k: &str) -> Option<&str> {
        self.fields.get(k).and_then(Val::as_str)
    }
}

/// Parses one flat JSON object line (as written by the tracer).
pub fn parse_line(line: &str) -> Result<Rec, String> {
    let b = line.as_bytes();
    let mut pos = 0usize;
    let fail = |what: &str, pos: usize| format!("{what} at byte {pos}");
    let expect = |b: &[u8], pos: &mut usize, c: u8| -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    };
    let string = |b: &[u8], pos: &mut usize| -> Result<String, String> {
        expect(b, pos, b'"')?;
        let start = *pos;
        while *pos < b.len() && b[*pos] != b'"' {
            if b[*pos] == b'\\' {
                return Err(fail("escapes unsupported in trace lines", *pos));
            }
            *pos += 1;
        }
        if *pos >= b.len() {
            return Err("unterminated string".into());
        }
        let s = String::from_utf8_lossy(&b[start..*pos]).into_owned();
        *pos += 1;
        Ok(s)
    };
    let mut fields = BTreeMap::new();
    expect(b, &mut pos, b'{')?;
    loop {
        let key = string(b, &mut pos)?;
        expect(b, &mut pos, b':')?;
        let val = match b.get(pos) {
            Some(b'"') => Val::S(string(b, &mut pos)?),
            Some(b't') if b[pos..].starts_with(b"true") => {
                pos += 4;
                Val::B(true)
            }
            Some(b'f') if b[pos..].starts_with(b"false") => {
                pos += 5;
                Val::B(false)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = pos;
                while b.get(pos).is_some_and(u8::is_ascii_digit) {
                    pos += 1;
                }
                let digits =
                    std::str::from_utf8(&b[start..pos]).map_err(|_| fail("bad number", start))?;
                Val::U(digits.parse().map_err(|_| fail("bad number", start))?)
            }
            _ => return Err(fail("expected a value", pos)),
        };
        fields.insert(key, val);
        match b.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            _ => return Err(fail("expected ',' or '}'", pos)),
        }
    }
    if pos != b.len() {
        return Err(fail("trailing data", pos));
    }
    let t = fields
        .remove("t")
        .and_then(|v| v.as_u64())
        .ok_or("missing \"t\"")?;
    let op = fields
        .remove("op")
        .and_then(|v| v.as_u64())
        .ok_or("missing \"op\"")?;
    let ev = match fields.remove("ev") {
        Some(Val::S(s)) => s,
        _ => return Err("missing \"ev\"".into()),
    };
    Ok(Rec { t, op, ev, fields })
}

/// Parses a whole JSONL document (blank lines ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<Rec>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// The reconstructed lifecycle of one client operation.
#[derive(Clone, Debug)]
pub struct OpInfo {
    /// Operation id.
    pub op: u64,
    /// Operation kind (`insert`/`lookup`/`reclaim`).
    pub kind: String,
    /// Issuing client node.
    pub node: u64,
    /// Target key (032x hex).
    pub key: String,
    /// Requested replication factor (0 where not applicable).
    pub k: u64,
    /// Simulated time the operation was issued.
    pub start_t: u64,
    /// Simulated time it terminated, if it did.
    pub end_t: Option<u64>,
    /// Terminal outcome, if it terminated.
    pub ok: Option<bool>,
    /// Replicas confirmed at termination (inserts).
    pub fanout: Option<u64>,
    /// Retransmissions observed.
    pub retries: u64,
    /// `ReplicaStored` events attributed to this operation.
    pub replicas: u64,
}

impl OpInfo {
    /// True if the operation was issued but never explicitly
    /// terminated — a hung request.
    pub fn stuck(&self) -> bool {
        self.end_t.is_none()
    }
}

/// The analyzer's verdict over one trace.
#[derive(Clone, Debug)]
pub struct Report {
    /// Total records analyzed.
    pub records: usize,
    /// Per-operation lifecycles, by op id.
    pub ops: BTreeMap<u64, OpInfo>,
    /// Ops issued but never terminated.
    pub stuck: Vec<u64>,
    /// Successful inserts whose confirmed fan-out ≠ requested `k`.
    pub bad_fanout: Vec<u64>,
    /// Hop-count distribution over delivered routes (index = hops).
    pub hop_hist: Vec<u64>,
    /// Delivered routes.
    pub deliveries: u64,
    /// Distinct node addresses seen anywhere in the trace.
    pub nodes_seen: usize,
    /// The paper's bound `⌈log₂ᵇ nodes_seen⌉` for the given `b`.
    pub hop_bound: u64,
    /// Deliveries that exceeded the bound.
    pub over_bound: u64,
}

impl Report {
    /// True if no op is stuck and every successful insert reached its
    /// full fan-out — the CI gate condition.
    pub fn clean(&self) -> bool {
        self.stuck.is_empty() && self.bad_fanout.is_empty()
    }
}

/// Smallest `h` with `(2^b)^h ≥ n` — the expected routing bound.
pub fn hop_bound(n: usize, b: u32) -> u64 {
    let mut h = 0u64;
    let mut reach = 1u128;
    while reach < n as u128 {
        reach = reach.saturating_mul(1u128 << b);
        h += 1;
    }
    h
}

/// Rebuilds per-op timelines and checks liveness, fan-out and the hop
/// bound. `b` is the overlay's digit width (bits per routing digit).
pub fn analyze(recs: &[Rec], b: u32) -> Report {
    let mut ops: BTreeMap<u64, OpInfo> = BTreeMap::new();
    let mut nodes: BTreeSet<u64> = BTreeSet::new();
    let mut hop_hist: Vec<u64> = Vec::new();
    let mut deliveries = 0u64;
    for r in recs {
        for f in ["node", "from", "to", "peer"] {
            if let Some(a) = r.u(f) {
                nodes.insert(a);
            }
        }
        match r.ev.as_str() {
            "op_start" => {
                ops.entry(r.op).or_insert_with(|| OpInfo {
                    op: r.op,
                    kind: r.s("kind").unwrap_or("?").to_string(),
                    node: r.u("node").unwrap_or(0),
                    key: r.s("key").unwrap_or("").to_string(),
                    k: r.u("k").unwrap_or(0),
                    start_t: r.t,
                    end_t: None,
                    ok: None,
                    fanout: None,
                    retries: 0,
                    replicas: 0,
                });
            }
            "op_retry" => {
                if let Some(info) = ops.get_mut(&r.op) {
                    info.retries += 1;
                }
            }
            "op_end" => {
                if let Some(info) = ops.get_mut(&r.op) {
                    info.end_t = Some(r.t);
                    info.ok = r.fields.get("ok").map(|v| v == &Val::B(true));
                    info.fanout = r.u("fanout");
                }
            }
            "replica" => {
                if let Some(info) = ops.get_mut(&r.op) {
                    info.replicas += 1;
                }
            }
            "deliver" => {
                deliveries += 1;
                let h = r.u("hops").unwrap_or(0) as usize;
                if hop_hist.len() <= h {
                    hop_hist.resize(h + 1, 0);
                }
                hop_hist[h] += 1;
            }
            _ => {}
        }
    }
    let stuck: Vec<u64> = ops.values().filter(|o| o.stuck()).map(|o| o.op).collect();
    let bad_fanout: Vec<u64> = ops
        .values()
        .filter(|o| o.kind == "insert" && o.ok == Some(true) && o.fanout != Some(o.k))
        .map(|o| o.op)
        .collect();
    let bound = hop_bound(nodes.len(), b);
    let over_bound = hop_hist
        .iter()
        .enumerate()
        .filter(|&(h, _)| h as u64 > bound)
        .map(|(_, &c)| c)
        .sum();
    Report {
        records: recs.len(),
        ops,
        stuck,
        bad_fanout,
        hop_hist,
        deliveries,
        nodes_seen: nodes.len(),
        hop_bound: bound,
        over_bound,
    }
}

/// Formats the full event timeline of one operation, one line per
/// record, in trace order — "follow one insert through the overlay".
pub fn timeline(recs: &[Rec], op: u64) -> Vec<String> {
    recs.iter()
        .filter(|r| r.op == op)
        .map(|r| {
            let mut line = format!("{:>12} µs  {:<10}", r.t, r.ev);
            for (k, v) in &r.fields {
                match v {
                    Val::U(n) => line.push_str(&format!(" {k}={n}")),
                    Val::S(s) => line.push_str(&format!(" {k}={s}")),
                    Val::B(x) => line.push_str(&format!(" {k}={x}")),
                }
            }
            line
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpId, TraceConfig, Tracer};

    const KINDS: &[&str] = &["route", "app_direct"];

    fn sample_trace() -> Tracer {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::full());
        // Op 1: an insert that completes with full fan-out after a retry.
        t.op_start(100, OpId(1), 0, "insert", 0xabc, 3);
        t.msg_send(100, OpId(1), 0, 0, 0, 80);
        t.route_hop(110, OpId(1), 4, 0xabc, 0, 1);
        t.route_deliver(120, OpId(1), 7, 0xabc, 2, 20);
        t.op_retry(900, OpId(1), 0, "insert", 1);
        t.replica_stored(950, OpId(1), 7, 0xabc, false);
        t.replica_stored(960, OpId(1), 8, 0xabc, true);
        t.replica_stored(970, OpId(1), 9, 0xabc, false);
        t.op_end(1_000, OpId(1), 0, "insert", true, 3);
        // Op 2: a lookup that never terminates (stuck).
        t.op_start(200, OpId(2), 1, "lookup", 0xdef, 0);
        // Op 3: a "successful" insert with short fan-out.
        t.op_start(300, OpId(3), 2, "insert", 0x123, 5);
        t.op_end(400, OpId(3), 2, "insert", true, 4);
        t
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let t = sample_trace();
        let recs = parse_jsonl(&t.to_jsonl()).expect("tracer output must parse");
        assert_eq!(recs.len(), t.records().len());
        assert_eq!(recs[0].ev, "op_start");
        assert_eq!(recs[0].s("kind"), Some("insert"));
        assert_eq!(recs[0].u("k"), Some(3));
        assert_eq!(recs[0].s("key"), Some("00000000000000000000000000000abc"));
        assert_eq!(recs[1].s("kind"), Some("route"));
        assert_eq!(recs[1].u("bytes"), Some(80));
    }

    #[test]
    fn analyzer_finds_stuck_ops_and_bad_fanout() {
        let t = sample_trace();
        let recs = parse_jsonl(&t.to_jsonl()).expect("parse");
        let rep = analyze(&recs, 4);
        assert_eq!(rep.ops.len(), 3);
        assert_eq!(rep.stuck, vec![2]);
        assert_eq!(rep.bad_fanout, vec![3]);
        assert!(!rep.clean());
        let op1 = &rep.ops[&1];
        assert_eq!(op1.retries, 1);
        assert_eq!(op1.replicas, 3);
        assert_eq!(op1.fanout, Some(3));
        assert_eq!(op1.end_t, Some(1_000));
        assert_eq!(rep.deliveries, 1);
        assert_eq!(rep.hop_hist, vec![0, 0, 1]);
    }

    #[test]
    fn clean_trace_passes() {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::lifecycle());
        t.op_start(1, OpId(9), 0, "insert", 0x9, 2);
        t.op_end(2, OpId(9), 0, "insert", true, 2);
        let recs = parse_jsonl(&t.to_jsonl()).expect("parse");
        let rep = analyze(&recs, 4);
        assert!(rep.clean());
        assert!(rep.stuck.is_empty() && rep.bad_fanout.is_empty());
    }

    #[test]
    fn failed_ops_are_terminated_not_stuck_and_fanout_is_not_checked() {
        let mut t = Tracer::for_kinds(KINDS);
        t.configure(TraceConfig::lifecycle());
        t.op_start(1, OpId(4), 0, "insert", 0x4, 5);
        t.op_end(2, OpId(4), 0, "insert", false, 1);
        let recs = parse_jsonl(&t.to_jsonl()).expect("parse");
        let rep = analyze(&recs, 4);
        assert!(rep.clean(), "explicit failure is a termination");
    }

    #[test]
    fn hop_bound_matches_ceil_log() {
        assert_eq!(hop_bound(1, 4), 0);
        assert_eq!(hop_bound(16, 4), 1);
        assert_eq!(hop_bound(17, 4), 2);
        assert_eq!(hop_bound(256, 4), 2);
        assert_eq!(hop_bound(512, 4), 3);
        assert_eq!(hop_bound(512, 1), 9);
    }

    #[test]
    fn timeline_is_ordered_and_op_scoped() {
        let t = sample_trace();
        let recs = parse_jsonl(&t.to_jsonl()).expect("parse");
        let lines = timeline(&recs, 1);
        assert_eq!(lines.len(), 9);
        assert!(lines[0].contains("op_start"));
        assert!(lines[8].contains("op_end"));
        assert!(lines.iter().all(|l| !l.contains("lookup")));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"t\":1}",
            "{\"t\":1,\"op\":2}",
            "{\"t\":1,\"op\":2,\"ev\":\"x\"} trailing",
            "{\"t\":-1,\"op\":2,\"ev\":\"x\"}",
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
