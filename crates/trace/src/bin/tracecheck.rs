//! `tracecheck` — analyze a JSONL trace produced by `past_trace::Tracer`.
//!
//! Usage:
//!
//! ```text
//! tracecheck [--b BITS] [--op ID] [--require-clean] TRACE.jsonl
//! ```
//!
//! Rebuilds per-operation timelines and reports:
//! - stuck operations (issued but never explicitly terminated),
//! - successful inserts whose replica fan-out ≠ the requested `k`,
//! - the hop-count distribution vs. the `⌈log₂ᵇN⌉` bound.
//!
//! With `--require-clean` (the CI gate mode) the process exits
//! non-zero if any op is stuck or any insert under-replicated. With
//! `--op ID` the full timeline of one operation is printed — "follow
//! one insert through the overlay".

use past_trace::analyze::{analyze, parse_jsonl, timeline};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: tracecheck [--b BITS] [--op ID] [--require-clean] TRACE.jsonl");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut b = 4u32;
    let mut show_op: Option<u64> = None;
    let mut require_clean = false;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--b" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => b = v,
                _ => return usage(),
            },
            "--op" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => show_op = Some(v),
                None => return usage(),
            },
            "--require-clean" => require_clean = true,
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recs = match parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tracecheck: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rep = analyze(&recs, b);

    println!("trace: {path}");
    println!(
        "  records={} nodes_seen={} ops={}",
        rep.records,
        rep.nodes_seen,
        rep.ops.len()
    );
    for kind in ["insert", "lookup", "reclaim"] {
        let of_kind: Vec<_> = rep.ops.values().filter(|o| o.kind == kind).collect();
        if of_kind.is_empty() {
            continue;
        }
        let ok = of_kind.iter().filter(|o| o.ok == Some(true)).count();
        let failed = of_kind.iter().filter(|o| o.ok == Some(false)).count();
        let stuck = of_kind.iter().filter(|o| o.stuck()).count();
        let retries: u64 = of_kind.iter().map(|o| o.retries).sum();
        println!(
            "  {kind}: issued={} ok={ok} failed={failed} stuck={stuck} retries={retries}",
            of_kind.len()
        );
    }
    println!(
        "  routes: delivered={} hop_hist={:?} bound=ceil(log2^{b}(N))={} over_bound={}",
        rep.deliveries, rep.hop_hist, rep.hop_bound, rep.over_bound
    );

    if let Some(op) = show_op {
        println!("timeline of op {op}:");
        let lines = timeline(&recs, op);
        if lines.is_empty() {
            println!("  (no records)");
        }
        for line in lines {
            println!("  {line}");
        }
    }

    for op in &rep.stuck {
        let o = &rep.ops[op];
        println!(
            "STUCK: op {op} ({} from node {} at t={}) never terminated",
            o.kind, o.node, o.start_t
        );
    }
    for op in &rep.bad_fanout {
        let o = &rep.ops[op];
        println!(
            "BAD FAN-OUT: op {op} (insert, key {}) confirmed {:?} replicas, wanted k={}",
            o.key, o.fanout, o.k
        );
    }

    if rep.clean() {
        println!(
            "tracecheck: clean ({} ops, no stuck, fan-out ok)",
            rep.ops.len()
        );
        ExitCode::SUCCESS
    } else if require_clean {
        eprintln!(
            "tracecheck: FAILED ({} stuck, {} bad fan-out)",
            rep.stuck.len(),
            rep.bad_fanout.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
