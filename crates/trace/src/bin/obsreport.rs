//! `obsreport` — health report over a flight-recorder series
//! (`past_trace::TimeSeries` JSONL).
//!
//! Usage:
//!
//! ```text
//! obsreport [--require-slo] [--slo-max-reject-bp N] [--slo-max-util-bp N]
//!           [--slo-max-imbalance X.Y] [--slo-p99-us N] SERIES.jsonl
//! ```
//!
//! Reads the windowed series emitted by `TimeSeries::to_jsonl` and
//! reports:
//! - stalled windows: zero events executed while the engine queue held
//!   pending work (always an SLO violation — a healthy engine cannot
//!   sample a window without executing its first event);
//! - the rejection-rate trajectory (`insert_failed` vs issued inserts),
//!   gated against `--slo-max-reject-bp` basis points (default 1000 =
//!   10%, PAST §2.3's <5% claim leaves headroom for lossy runs);
//! - the utilization trajectory (`store_used` / `store_capacity`),
//!   gated against `--slo-max-util-bp` (default 9800 = 98%);
//! - the shard load-imbalance factor (max/mean of per-shard event
//!   totals), gated only when `--slo-max-imbalance` is given;
//! - per-window route-latency percentiles, with the worst p99 gated
//!   only when `--slo-p99-us` is given.
//!
//! With `--require-slo` (the CI gate mode) the process exits non-zero
//! on any enforced violation; without it the report is informational.

use past_trace::analyze::{parse_jsonl, Rec};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: obsreport [--require-slo] [--slo-max-reject-bp N] \
         [--slo-max-util-bp N] [--slo-max-imbalance X.Y] \
         [--slo-p99-us N] SERIES.jsonl"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut require_slo = false;
    let mut max_reject_bp = 1_000u64;
    let mut max_util_bp = 9_800u64;
    let mut max_imbalance: Option<f64> = None;
    let mut max_p99_us: Option<u64> = None;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require-slo" => require_slo = true,
            "--slo-max-reject-bp" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_reject_bp = v,
                None => return usage(),
            },
            "--slo-max-util-bp" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_util_bp = v,
                None => return usage(),
            },
            "--slo-max-imbalance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1.0 => max_imbalance = Some(v),
                _ => return usage(),
            },
            "--slo-p99-us" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_p99_us = Some(v),
                None => return usage(),
            },
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsreport: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recs = match parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obsreport: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(header) = recs.iter().find(|r| r.ev == "series") else {
        eprintln!("obsreport: {path}: no series header line");
        return ExitCode::FAILURE;
    };
    let window_us = header.u("window_us").unwrap_or(0);
    let windows: Vec<&Rec> = recs.iter().filter(|r| r.ev == "window").collect();
    println!("series: {path}");
    println!(
        "  window_us={window_us} windows={} fp={}",
        windows.len(),
        header.u("fp").unwrap_or(0)
    );
    if windows.len() as u64 != header.u("windows").unwrap_or(0) {
        eprintln!(
            "obsreport: {path}: header claims {} windows, found {}",
            header.u("windows").unwrap_or(0),
            windows.len()
        );
        return ExitCode::FAILURE;
    }

    let mut violations: Vec<String> = Vec::new();

    // -- stalled windows: sampled but executed nothing with work queued.
    let stalled: Vec<u64> = windows
        .iter()
        .filter(|w| w.u("events").unwrap_or(0) == 0 && w.u("queue_depth").unwrap_or(0) > 0)
        .map(|w| w.t)
        .collect();
    println!("  stalled_windows={}", stalled.len());
    for t in &stalled {
        violations.push(format!(
            "stalled window at t={t}: zero events with pending work"
        ));
    }

    // -- rejection-rate trajectory.
    let sum = |name: &str| -> u64 { windows.iter().map(|w| w.u(name).unwrap_or(0)).sum() };
    let (ok, failed) = (sum("insert_ok"), sum("insert_failed"));
    if ok + failed > 0 {
        let reject_bp = failed * 10_000 / (ok + failed);
        println!("  inserts: ok={ok} failed={failed} reject_bp={reject_bp} (slo<={max_reject_bp})");
        if reject_bp > max_reject_bp {
            violations.push(format!(
                "rejection rate {reject_bp} bp exceeds SLO {max_reject_bp} bp"
            ));
        }
    }

    // -- utilization trajectory (per-window gauges; capacity can be 0
    //    in windows before any store sampler ran).
    let mut worst_util_bp = 0u64;
    let mut worst_util_t = 0u64;
    for w in &windows {
        let (used, cap) = (
            w.u("store_used").unwrap_or(0),
            w.u("store_capacity").unwrap_or(0),
        );
        if cap > 0 {
            let bp = used * 10_000 / cap;
            if bp >= worst_util_bp {
                (worst_util_bp, worst_util_t) = (bp, w.t);
            }
        }
    }
    if worst_util_bp > 0 {
        println!("  utilization: peak={worst_util_bp}bp at t={worst_util_t} (slo<={max_util_bp})");
        if worst_util_bp > max_util_bp {
            violations.push(format!(
                "utilization {worst_util_bp} bp at t={worst_util_t} exceeds SLO {max_util_bp} bp"
            ));
        }
    }

    // -- shard load imbalance: max/mean of per-shard event totals.
    let mut per_shard: BTreeMap<String, u64> = BTreeMap::new();
    for w in &windows {
        for (k, v) in &w.fields {
            if let (Some(shard), Some(n)) = (
                k.strip_prefix("shard")
                    .and_then(|s| s.strip_suffix(".events")),
                v.as_u64(),
            ) {
                *per_shard.entry(shard.to_string()).or_insert(0) += n;
            }
        }
    }
    if !per_shard.is_empty() {
        let max = per_shard.values().copied().max().unwrap_or(0);
        let mean = per_shard.values().sum::<u64>() as f64 / per_shard.len() as f64;
        let factor = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        println!(
            "  shard_imbalance: shards={} max_events={max} factor={factor:.3}",
            per_shard.len()
        );
        if let Some(limit) = max_imbalance {
            if factor > limit {
                violations.push(format!(
                    "shard imbalance factor {factor:.3} exceeds SLO {limit:.3}"
                ));
            }
        }
    }

    // -- route-latency percentiles per window; gate the worst p99.
    let mut worst_p99 = 0u64;
    let mut lat_windows = 0usize;
    for w in &windows {
        if let Some(n) = w.u("route_latency_us_count") {
            if n == 0 {
                continue;
            }
            lat_windows += 1;
            println!(
                "  route_latency t={}: n={n} p50={} p95={} p99={}",
                w.t,
                w.u("route_latency_us_p50").unwrap_or(0),
                w.u("route_latency_us_p95").unwrap_or(0),
                w.u("route_latency_us_p99").unwrap_or(0),
            );
            worst_p99 = worst_p99.max(w.u("route_latency_us_p99").unwrap_or(0));
        }
    }
    if lat_windows > 0 {
        let slo = max_p99_us.map_or(String::new(), |v| format!(" (slo<={v})"));
        println!("  route_latency: worst_p99={worst_p99}us over {lat_windows} windows{slo}");
        if let Some(limit) = max_p99_us {
            if worst_p99 > limit {
                violations.push(format!(
                    "route latency p99 {worst_p99} us exceeds SLO {limit} us"
                ));
            }
        }
    }

    for v in &violations {
        println!("SLO VIOLATION: {v}");
    }
    if violations.is_empty() {
        println!(
            "obsreport: healthy ({} windows, all SLOs met)",
            windows.len()
        );
        ExitCode::SUCCESS
    } else if require_slo {
        eprintln!("obsreport: FAILED ({} SLO violations)", violations.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
