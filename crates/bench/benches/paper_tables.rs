//! Regenerates every experiment table of the PAST reproduction (E1–E13)
//! at bench scale and prints them. Paper-scale variants live in
//! `src/bin/exp_*.rs`.
//!
//! Run: `cargo bench -p past-bench --bench paper_tables`

use past_sim::experiments::*;
use std::time::Instant;

fn timed<F: FnOnce() -> past_sim::ExpTable>(label: &str, f: F) {
    let start = Instant::now();
    let table = f();
    let secs = start.elapsed().as_secs_f64();
    println!("{table}");
    println!("  [{label} completed in {secs:.1}s]\n");
}

fn main() {
    println!("PAST reproduction — experiment tables (bench scale)");
    println!("====================================================\n");

    timed("E1", || {
        let r = hops::run(&hops::Params::default());
        println!("{}", r.distribution_table());
        r.table()
    });
    timed("E2", || {
        state_size::run(&state_size::Params::default()).table()
    });
    timed("E3", || locality::run(&locality::Params::default()).table());
    timed("E3b", || {
        locality::run_ablation(400, 300, 63, past_sim::experiments::pastry_config_default()).table()
    });
    timed("E4", || replicas::run(&replicas::Params::default()).table());
    timed("E5", || failure::run(&failure::Params::default()).table());
    timed("E6", || {
        join_cost::run(&join_cost::Params::default()).table()
    });
    timed("E7", || {
        storage_util::run(&storage_util::Params::default()).table()
    });
    timed("E8", || caching::run(&caching::Params::default()).table());
    timed("E9", || {
        malicious::run(&malicious::Params::default()).table()
    });
    timed("E10", || balance::run(&balance::Params::default()).table());
    timed("E11", || {
        baselines_cmp::run(&baselines_cmp::Params::default()).table()
    });
    timed("E12", || quota::run(&quota::Params::default()).table());
    timed("E13", || {
        security::run(&security::Params::default()).table()
    });

    println!("All 13 experiment tables regenerated.");
}
