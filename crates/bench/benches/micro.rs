//! Microbenchmarks of the hot primitives underlying the experiments:
//! hashing, signatures, identifier arithmetic, routing-step selection,
//! leaf-set maintenance, and cache operations.
//!
//! Run: `cargo bench -p past-bench --bench micro`

use past_bench::Bench;
use past_core::{Broker, ContentRef};
use past_crypto::rng::Rng;
use past_crypto::sha1::sha1;
use past_crypto::sha256::sha256;
use past_crypto::KeyPair;
use past_pastry::{next_hop, Config, Id, NodeHandle, PastryState};
use std::hint::black_box;

fn bench_hashes(b: &mut Bench) {
    b.group("crypto/hash");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        b.run_bytes(&format!("sha256/{size}"), size as u64, || {
            black_box(sha256(black_box(&data)))
        });
        b.run_bytes(&format!("sha1/{size}"), size as u64, || {
            black_box(sha1(black_box(&data)))
        });
    }
}

fn bench_signatures(b: &mut Bench) {
    b.group("crypto/schnorr");
    let kp = KeyPair::from_seed(b"bench");
    let msg = b"a store receipt-sized message for signing benchmarks";
    b.run("sign", || black_box(kp.sign(black_box(msg))));
    let sig = kp.sign(msg);
    b.run("verify", || {
        black_box(kp.public.verify(black_box(msg), black_box(&sig)))
    });
}

fn bench_certificates(b: &mut Bench) {
    b.group("past/certificates");
    let mut broker = Broker::new(b"bench");
    let content = ContentRef::synthetic(0, "bench", 1 << 20);
    let mut card = broker.issue_card(b"issuer", u64::MAX / 2, 0);
    let mut salt = 0u64;
    b.run("issue_file_certificate", || {
        salt += 1;
        black_box(
            card.issue_file_certificate("bench", &content, 3, salt, 0)
                .expect("quota"),
        )
    });
    let mut card2 = broker.issue_card(b"user2", u64::MAX / 2, 0);
    let cert = card2
        .issue_file_certificate("bench", &content, 3, 0, 0)
        .expect("quota");
    b.run("verify_file_certificate", || {
        black_box(cert.verify(black_box(&broker.public())))
    });
}

fn bench_id_ops(b: &mut Bench) {
    b.group("pastry/id");
    let a = Id(0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978);
    let b_ = Id(0x0123_4567_89ab_cde0_0000_0000_0000_0000);
    b.run("prefix_len", || {
        black_box(black_box(a).prefix_len(black_box(&b_), 4))
    });
    b.run("ring_dist", || {
        black_box(black_box(a).ring_dist(black_box(&b_)))
    });
    b.run("digit", || black_box(black_box(a).digit(black_box(17), 4)));
}

fn routing_state(n: usize, seed: u64) -> PastryState {
    let cfg = Config::default();
    let mut rng = Rng::seed_from_u64(seed);
    let mut st = PastryState::new(cfg, NodeHandle::new(Id(rng.random()), 0));
    for i in 1..n {
        st.add_node(
            NodeHandle::new(Id(rng.random()), i),
            rng.random_range(1..50_000),
        );
    }
    st
}

fn bench_routing_step(b: &mut Bench) {
    b.group("pastry/route");
    let st = routing_state(1_000, 7);
    let mut rng = Rng::seed_from_u64(9);
    let mut step_rng = Rng::seed_from_u64(1);
    b.run("next_hop", || {
        let key = Id(rng.random());
        black_box(next_hop(&st, &key, &mut step_rng))
    });
    let mut st_rand = routing_state(1_000, 8);
    st_rand.cfg.route_randomization = 0.5;
    b.run("next_hop_randomized", || {
        let key = Id(rng.random());
        black_box(next_hop(&st_rand, &key, &mut step_rng))
    });
}

fn bench_state_maintenance(b: &mut Bench) {
    b.group("pastry/state");
    let mut rng = Rng::seed_from_u64(11);
    let base = routing_state(200, 12);
    b.run("add_node", || {
        let mut st = base.clone();
        let h = NodeHandle::new(Id(rng.random()), 999);
        let d: u64 = rng.random_range(1..50_000);
        black_box(st.add_node(h, d));
    });
    let base2 = routing_state(200, 13);
    b.run("remove_addr", || {
        let mut st = base2.clone();
        black_box(st.remove_addr(100));
    });
}

fn bench_cache(b: &mut Bench) {
    b.group("past/cache");
    let mut broker = Broker::new(b"cache-bench");
    let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
    let certs: Vec<_> = (0..256u64)
        .map(|i| {
            let name = format!("c{i}");
            let content = ContentRef::synthetic(0, &name, 1 + (i * 37) % 10_000);
            card.issue_file_certificate(&name, &content, 1, i, 0)
                .expect("quota")
        })
        .collect();
    b.run("offer_evict_cycle", || {
        let mut cache = past_core::cache::Cache::new();
        for cert in &certs {
            black_box(cache.offer(cert, 100_000));
        }
        cache.len()
    });
    let mut warm = past_core::cache::Cache::new();
    for cert in &certs {
        warm.offer(cert, 1 << 30);
    }
    let probe = certs[17].file_id;
    b.run("lookup_hit", || black_box(warm.lookup(black_box(&probe))));
}

fn bench_whole_route(b: &mut Bench) {
    b.group("pastry/end_to_end");
    use past_netsim::Sphere;
    use past_pastry::{random_ids, static_build, NullApp};
    let n = 10_000;
    let mut rng = Rng::seed_from_u64(21);
    let ids = random_ids(n, &mut rng);
    let mut sim = static_build(
        Sphere::new(n, 21),
        Config::default(),
        21,
        &ids,
        |_| NullApp,
        2,
    );
    b.run("route_10k_nodes", || {
        let key = Id(rng.random());
        let from = rng.random_range(0..n);
        sim.route(from, key, ());
        black_box(sim.drain_deliveries().len())
    });
}

fn main() {
    let mut b = Bench::new();
    bench_hashes(&mut b);
    bench_signatures(&mut b);
    bench_certificates(&mut b);
    bench_id_ops(&mut b);
    bench_routing_step(&mut b);
    bench_state_maintenance(&mut b);
    bench_cache(&mut b);
    bench_whole_route(&mut b);
    println!("\n{} benchmarks completed.", b.results().len());
}
