//! Criterion microbenchmarks of the hot primitives underlying the
//! experiments: hashing, signatures, identifier arithmetic, routing-step
//! selection, leaf-set maintenance, and cache operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use past_core::{Broker, ContentRef};
use past_crypto::sha1::sha1;
use past_crypto::sha256::sha256;
use past_crypto::KeyPair;
use past_pastry::{next_hop, Config, Id, NodeHandle, PastryState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/hash");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}"), |b| {
            b.iter(|| black_box(sha256(black_box(&data))))
        });
        g.bench_function(format!("sha1/{size}"), |b| {
            b.iter(|| black_box(sha1(black_box(&data))))
        });
    }
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/schnorr");
    g.sample_size(20);
    let kp = KeyPair::from_seed(b"bench");
    let msg = b"a store receipt-sized message for signing benchmarks";
    g.bench_function("sign", |b| b.iter(|| black_box(kp.sign(black_box(msg)))));
    let sig = kp.sign(msg);
    g.bench_function("verify", |b| {
        b.iter(|| black_box(kp.public.verify(black_box(msg), black_box(&sig))))
    });
    g.finish();
}

fn bench_certificates(c: &mut Criterion) {
    let mut g = c.benchmark_group("past/certificates");
    g.sample_size(20);
    let mut broker = Broker::new(b"bench");
    let card = broker.issue_card(b"user", u64::MAX / 2, 0);
    let content = ContentRef::synthetic(0, "bench", 1 << 20);
    g.bench_function("issue_file_certificate", |b| {
        let mut card = broker.issue_card(b"issuer", u64::MAX / 2, 0);
        let mut salt = 0u64;
        b.iter(|| {
            salt += 1;
            black_box(
                card.issue_file_certificate("bench", &content, 3, salt, 0)
                    .expect("quota"),
            )
        })
    });
    let mut card2 = broker.issue_card(b"user2", u64::MAX / 2, 0);
    let cert = card2
        .issue_file_certificate("bench", &content, 3, 0, 0)
        .expect("quota");
    g.bench_function("verify_file_certificate", |b| {
        b.iter(|| black_box(cert.verify(black_box(&broker.public()))))
    });
    let _ = card;
    g.finish();
}

fn bench_id_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("pastry/id");
    let a = Id(0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978);
    let b_ = Id(0x0123_4567_89ab_cde0_0000_0000_0000_0000);
    g.bench_function("prefix_len", |b| {
        b.iter(|| black_box(black_box(a).prefix_len(black_box(&b_), 4)))
    });
    g.bench_function("ring_dist", |b| {
        b.iter(|| black_box(black_box(a).ring_dist(black_box(&b_))))
    });
    g.bench_function("digit", |b| {
        b.iter(|| black_box(black_box(a).digit(black_box(17), 4)))
    });
    g.finish();
}

fn routing_state(n: usize, seed: u64) -> PastryState {
    let cfg = Config::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut st = PastryState::new(cfg, NodeHandle::new(Id(rng.random()), 0));
    for i in 1..n {
        st.add_node(
            NodeHandle::new(Id(rng.random()), i),
            rng.random_range(1..50_000),
        );
    }
    st
}

fn bench_routing_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("pastry/route");
    let st = routing_state(1_000, 7);
    let mut rng = StdRng::seed_from_u64(9);
    g.bench_function("next_hop", |b| {
        b.iter_batched(
            || Id(rng.random()),
            |key| black_box(next_hop(&st, &key, &mut StdRng::seed_from_u64(1))),
            BatchSize::SmallInput,
        )
    });
    let mut st_rand = routing_state(1_000, 8);
    st_rand.cfg.route_randomization = 0.5;
    g.bench_function("next_hop_randomized", |b| {
        b.iter_batched(
            || Id(rng.random()),
            |key| black_box(next_hop(&st_rand, &key, &mut StdRng::seed_from_u64(1))),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_state_maintenance(c: &mut Criterion) {
    let mut g = c.benchmark_group("pastry/state");
    let mut rng = StdRng::seed_from_u64(11);
    g.bench_function("add_node", |b| {
        b.iter_batched(
            || {
                (
                    routing_state(200, 12),
                    NodeHandle::new(Id(rng.random()), 999),
                    rng.random_range(1..50_000u64),
                )
            },
            |(mut st, h, d)| {
                black_box(st.add_node(h, d));
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("remove_addr", |b| {
        b.iter_batched(
            || routing_state(200, 13),
            |mut st| {
                black_box(st.remove_addr(100));
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("past/cache");
    let mut broker = Broker::new(b"cache-bench");
    let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
    let certs: Vec<_> = (0..256u64)
        .map(|i| {
            let name = format!("c{i}");
            let content = ContentRef::synthetic(0, &name, 1 + (i * 37) % 10_000);
            card.issue_file_certificate(&name, &content, 1, i, 0)
                .expect("quota")
        })
        .collect();
    g.bench_function("offer_evict_cycle", |b| {
        b.iter(|| {
            let mut cache = past_core::cache::Cache::new();
            for cert in &certs {
                black_box(cache.offer(cert, 100_000));
            }
            cache.len()
        })
    });
    let mut warm = past_core::cache::Cache::new();
    for cert in &certs {
        warm.offer(cert, 1 << 30);
    }
    let probe = certs[17].file_id;
    g.bench_function("lookup_hit", |b| {
        b.iter(|| black_box(warm.lookup(black_box(&probe))))
    });
    g.finish();
}

fn bench_whole_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("pastry/end_to_end");
    g.sample_size(10);
    use past_netsim::Sphere;
    use past_pastry::{random_ids, static_build, NullApp};
    let n = 10_000;
    let mut rng = StdRng::seed_from_u64(21);
    let ids = random_ids(n, &mut rng);
    let mut sim = static_build(
        Sphere::new(n, 21),
        Config::default(),
        21,
        &ids,
        |_| NullApp,
        2,
    );
    g.bench_function("route_10k_nodes", |b| {
        b.iter(|| {
            let key = Id(rng.random());
            let from = rng.random_range(0..n);
            sim.route(from, key, ());
            black_box(sim.drain_deliveries().len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets =
    bench_hashes,
    bench_signatures,
    bench_certificates,
    bench_id_ops,
    bench_routing_step,
    bench_state_maintenance,
    bench_cache,
    bench_whole_route
}
criterion_main!(benches);
