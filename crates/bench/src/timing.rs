//! A minimal wall-clock benchmark harness.
//!
//! Replaces the external `criterion` dependency with the ~hundred lines
//! the workspace actually needs: warm-up, automatic iteration-count
//! calibration, a handful of timed samples, and a median/min report.
//! This is the one place in the workspace allowed to read the wall clock
//! (`std::time::Instant`); everything else is simulated time, and the
//! `xtask check` D1 rule enforces that mechanically via an allowlist
//! entry for this file.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark label (`group/name`).
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Optional throughput denominator (bytes processed per iteration).
    pub bytes: Option<u64>,
}

impl Measurement {
    /// Renders one human-readable report line.
    pub fn report(&self) -> String {
        let thru = match self.bytes {
            Some(b) if self.median_ns > 0.0 => {
                let mibs = b as f64 / self.median_ns * 1e9 / (1 << 20) as f64;
                format!("  {mibs:10.1} MiB/s")
            }
            _ => String::new(),
        };
        format!(
            "{:<44} {:>12} /iter  (min {:>12}){}",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            thru
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark runner: times closures and prints a report per entry.
pub struct Bench {
    group: String,
    /// Timed samples taken per benchmark.
    pub samples: usize,
    /// Target wall-clock duration of one sample, nanoseconds.
    pub target_sample_ns: u64,
    results: Vec<Measurement>,
}

impl Default for Bench {
    fn default() -> Bench {
        Bench::new()
    }
}

impl Bench {
    /// Creates a runner with the default budget (12 samples of ~10 ms).
    pub fn new() -> Bench {
        Bench {
            group: String::new(),
            samples: 12,
            target_sample_ns: 10_000_000,
            results: Vec::new(),
        }
    }

    /// Sets the group label prefixed to subsequent benchmark names.
    pub fn group(&mut self, name: &str) -> &mut Bench {
        self.group = name.to_string();
        println!("-- {name}");
        self
    }

    fn label(&self, name: &str) -> String {
        if self.group.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.group, name)
        }
    }

    /// Times `f`, printing and recording the measurement.
    pub fn run<T, F: FnMut() -> T>(&mut self, name: &str, f: F) -> &mut Bench {
        self.run_inner(name, None, f)
    }

    /// Times `f` and reports throughput for `bytes` processed per call.
    pub fn run_bytes<T, F: FnMut() -> T>(&mut self, name: &str, bytes: u64, f: F) -> &mut Bench {
        self.run_inner(name, Some(bytes), f)
    }

    fn run_inner<T, F: FnMut() -> T>(
        &mut self,
        name: &str,
        bytes: Option<u64>,
        mut f: F,
    ) -> &mut Bench {
        // Calibration: double the iteration count until one batch takes
        // at least ~1/10th of the target sample, then scale up.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= self.target_sample_ns / 10 || iters >= 1 << 30 {
                break elapsed.max(1) / iters;
            }
            iters *= 2;
        };
        let iters_per_sample = (self.target_sample_ns / per_iter_ns.max(1)).clamp(1, 1 << 30);

        let mut per_iter: Vec<f64> = (0..self.samples.max(1))
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let m = Measurement {
            name: self.label(name),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            iters_per_sample,
            bytes,
        };
        println!("{}", m.report());
        self.results.push(m);
        self
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut b = Bench::new();
        b.samples = 3;
        b.target_sample_ns = 100_000;
        b.group("test").run("sum", || (0..100u64).sum::<u64>());
        let r = &b.results()[0];
        assert_eq!(r.name, "test/sum");
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
    }

    #[test]
    fn throughput_formats() {
        let m = Measurement {
            name: "x".into(),
            median_ns: 1_000.0,
            min_ns: 900.0,
            iters_per_sample: 10,
            bytes: Some(1 << 20),
        };
        assert!(m.report().contains("MiB/s"));
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_500.0), "12.50 µs");
        assert_eq!(fmt_ns(12_500_000.0), "12.50 ms");
    }
}
