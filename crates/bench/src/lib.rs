//! Benchmark harness for the PAST reproduction.
//!
//! - [`timing`] is a minimal in-tree measurement harness (no external
//!   bench framework, so `cargo bench` needs no registry access).
//! - `benches/paper_tables.rs` regenerates every experiment table
//!   (E1–E13) at bench scale; run with `cargo bench -p past-bench`.
//! - `benches/micro.rs` holds microbenchmarks of the hot primitives
//!   (hashing, signatures, routing steps, cache ops).
//! - `src/bin/exp_*.rs` run individual experiments at paper scale.

pub use past_trace::json;
pub mod timing;

pub use timing::{Bench, Measurement};
