//! `bench_macro` — the end-to-end simulator benchmark, published as
//! `BENCH_macro.json` at the repository root.
//!
//! One run builds a 10 000-node Pastry overlay with the static builder on
//! the sphere topology, routes 10 000 seeded keys through it, then kills
//! 5 % of the nodes and runs a stabilize round — the three phases every
//! large experiment in EXPERIMENTS.md is built from. Wall-clock time per
//! phase plus the simulation's own counters (hops, messages, bytes) give
//! future PRs a macro-level perf trajectory; the counters double as a
//! coarse determinism check (same seed ⇒ same counters on any machine).
//!
//! Usage: `cargo run --release -p past-bench --bin bench_macro --
//! [--smoke] [--nodes N] [--shards K] [--out PATH]`. `--smoke` shrinks
//! the route count so CI can assert the binary runs and emits valid
//! JSON quickly; `--nodes N` overrides the network size independently,
//! so `--nodes 100000 --smoke` is the CI scale gate (big overlay, few
//! routes) and `--nodes 1000000` (no `--smoke`) is the EXPERIMENTS.md
//! million-node run. `--shards K` runs the overlay on the sharded
//! engine (K worker threads over a delay-floored sphere); with K > 1
//! the run is repeated at 1 shard to measure the churn-phase speedup
//! and to assert the two runs' simulation counters are identical —
//! shard-count independence measured in anger, not just in unit tests.

use past_bench::json;
use past_crypto::rng::Rng;
use past_netsim::{SeriesConfig, ShardConfig, SimBackend, Sphere};
use past_pastry::{
    random_ids, static_build, static_build_sharded, Config, Id, NullApp, PastryNode, PastrySim,
};
use std::time::Instant;

/// Delay floor (and shard window) for `--shards` runs: the sharded
/// engine requires `window_us ≤ min_delay_us` and `Sphere::new` has a
/// 1 µs floor, so sharded runs clamp short links to 5 ms. Sequential
/// runs keep the un-floored sphere so historical numbers stay
/// comparable.
const SHARD_FLOOR_US: u64 = 5_000;

/// Flight-recorder window for `--series` runs: one simulated second.
const SERIES_WINDOW_US: u64 = 1_000_000;

struct Phase {
    name: &'static str,
    wall_ms: f64,
}

/// Seeded simulation counters; identical across backends and shard
/// counts for the same topology and seeds.
#[derive(Debug, PartialEq, Eq)]
struct Counters {
    delivered: u64,
    total_hops: u64,
    route_msgs: u64,
    route_bytes: u64,
    total_msgs: u64,
    total_bytes: u64,
    final_us: u64,
}

/// Phases 2 and 3 (routes, churn + stabilize) on an already-built
/// overlay, generic over the simulation backend.
fn routes_and_churn<B>(
    sim: &mut PastrySim<NullApp, Sphere, B>,
    n: usize,
    routes: usize,
    kills: usize,
    phases: &mut Vec<Phase>,
) -> Counters
where
    B: SimBackend<PastryNode<NullApp>, Topo = Sphere>,
{
    // Phase 2: routes.
    let mut key_rng = Rng::seed_from_u64(42);
    let t = Instant::now();
    let mut delivered = 0u64;
    let mut total_hops = 0u64;
    for _ in 0..routes {
        let key = Id(key_rng.random());
        let from = key_rng.random_range(0..n);
        sim.route(from, key, ());
        for rec in sim.drain_deliveries() {
            delivered += 1;
            total_hops += rec.hops as u64;
        }
    }
    phases.push(Phase {
        name: "routes",
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    });
    let (route_msgs, route_bytes) = {
        let st = sim.engine.stats();
        (st.total_msgs, st.total_bytes)
    };

    // Phase 3: churn + stabilize.
    let t = Instant::now();
    for i in 0..kills {
        // Spread the failures deterministically across the address space.
        sim.engine.kill((i * 19 + 7) % n);
    }
    sim.stabilize();
    phases.push(Phase {
        name: "churn_stabilize",
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    });

    let (total_msgs, total_bytes) = {
        let st = sim.engine.stats();
        (st.total_msgs, st.total_bytes)
    };
    Counters {
        delivered,
        total_hops,
        route_msgs,
        route_bytes,
        total_msgs,
        total_bytes,
        final_us: sim.engine.now().as_micros(),
    }
}

/// One full run (build, routes, churn) on the sharded backend. With
/// `series` the flight recorder samples the run (observation only:
/// counters are unaffected) and its `past-series/v1` document is
/// returned.
fn sharded_run(
    n: usize,
    routes: usize,
    kills: usize,
    shards: usize,
    series: bool,
) -> (Vec<Phase>, Counters, Option<String>) {
    let mut rng = Rng::seed_from_u64(2001);
    let ids = random_ids(n, &mut rng);
    let mut phases = Vec::new();
    let t = Instant::now();
    let mut sim = static_build_sharded(
        Sphere::with_delay_floor(n, 2001, SHARD_FLOOR_US),
        Config::default(),
        2001,
        &ids,
        |_| NullApp,
        3,
        ShardConfig {
            shards,
            window_us: SHARD_FLOOR_US,
        },
    )
    .expect("window equals the delay floor, so the sharded build is sound");
    phases.push(Phase {
        name: "static_build",
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    });
    if series {
        sim.engine.set_series(SeriesConfig::new(SERIES_WINDOW_US));
    }
    let counters = routes_and_churn(&mut sim, n, routes, kills, &mut phases);
    let series_doc = if series {
        sim.engine.take_tracer().series().map(|s| s.to_json())
    } else {
        None
    };
    (phases, counters, series_doc)
}

fn main() {
    let mut smoke = false;
    let mut nodes: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut series: Option<String> = None;
    let mut out = format!("{}/../../BENCH_macro.json", env!("CARGO_MANIFEST_DIR"));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--nodes" => {
                let v = args.next().expect("--nodes needs a count");
                nodes = Some(v.parse().expect("--nodes must be an integer"));
            }
            "--shards" => {
                let v = args.next().expect("--shards needs a count");
                shards = Some(v.parse().expect("--shards must be an integer"));
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--series" => series = Some(args.next().expect("--series needs a path")),
            other => {
                panic!(
                    "unknown flag {other}; supported: --smoke, --nodes N, --shards K, \
                     --out PATH, --series PATH"
                )
            }
        }
    }
    let (mut n, routes) = if smoke { (300, 200) } else { (10_000, 10_000) };
    if let Some(v) = nodes {
        assert!(v > 0, "--nodes must be positive");
        n = v;
    }
    if let Some(k) = shards {
        assert!(k > 0, "--shards must be positive");
    }
    let kills = n / 20;

    let mut phases: Vec<Phase>;
    let counters: Counters;
    let series_doc: Option<String>;
    let mut ref_churn_ms: Option<f64> = None;
    match shards {
        None => {
            // Sequential engine on the un-floored sphere: the historical
            // configuration every BENCH_macro.json so far measured.
            let mut rng = Rng::seed_from_u64(2001);
            let ids = random_ids(n, &mut rng);
            phases = Vec::new();
            let t = Instant::now();
            let mut sim = static_build(
                Sphere::new(n, 2001),
                Config::default(),
                2001,
                &ids,
                |_| NullApp,
                3,
            );
            phases.push(Phase {
                name: "static_build",
                wall_ms: t.elapsed().as_secs_f64() * 1e3,
            });
            if series.is_some() {
                sim.engine.set_series(SeriesConfig::new(SERIES_WINDOW_US));
            }
            counters = routes_and_churn(&mut sim, n, routes, kills, &mut phases);
            series_doc = if series.is_some() {
                sim.engine.take_tracer().series().map(|s| s.to_json())
            } else {
                None
            };
        }
        Some(k) => {
            let (p, c, sd) = sharded_run(n, routes, kills, k, series.is_some());
            phases = p;
            counters = c;
            series_doc = sd;
            if k > 1 {
                // In-process 1-shard reference: same topology, same
                // seeds, one worker (no series: sampling is observation
                // only, so the counter comparison also checks that an
                // instrumented run equals an uninstrumented one). Its
                // counters must be bit-identical (shard-count
                // independence); its churn wall time is the speedup
                // baseline.
                let (ref_phases, ref_counters, _) = sharded_run(n, routes, kills, 1, false);
                assert_eq!(
                    counters, ref_counters,
                    "{k}-shard and 1-shard runs must produce identical counters"
                );
                ref_churn_ms = ref_phases
                    .iter()
                    .find(|p| p.name == "churn_stabilize")
                    .map(|p| p.wall_ms);
            }
        }
    }

    let mut doc = json::Obj::new()
        .str("schema", "past-bench/v1")
        .str("bench", "macro")
        .str("mode", if smoke { "smoke" } else { "full" })
        .int("nodes", n as u64)
        .int("routes", routes as u64)
        .int("kills", kills as u64)
        .int("shards", shards.unwrap_or(0) as u64)
        .raw(
            "phases",
            &json::array(phases.iter().map(|p| {
                json::Obj::new()
                    .str("name", p.name)
                    .num("wall_ms", p.wall_ms)
                    .build()
            })),
        )
        .raw(
            "sim",
            &json::Obj::new()
                .int("delivered", counters.delivered)
                .num(
                    "mean_hops",
                    counters.total_hops as f64 / counters.delivered.max(1) as f64,
                )
                .int("route_msgs", counters.route_msgs)
                .int("route_bytes", counters.route_bytes)
                .int("total_msgs", counters.total_msgs)
                .int("total_bytes", counters.total_bytes)
                .int("final_us", counters.final_us)
                .build(),
        );
    if let Some(ref_ms) = ref_churn_ms {
        let churn_ms = phases
            .iter()
            .find(|p| p.name == "churn_stabilize")
            .map(|p| p.wall_ms)
            .unwrap_or(0.0);
        doc = doc
            .num("churn_stabilize_1shard_ms", ref_ms)
            .num("churn_speedup", ref_ms / churn_ms.max(f64::MIN_POSITIVE));
    }
    let doc = doc.build();
    json::validate(&doc).expect("bench output must be valid JSON");
    std::fs::write(&out, format!("{doc}\n")).expect("write bench output");
    if let Some(series_path) = &series {
        let sdoc = series_doc.expect("series was enabled, so the tracer must carry one");
        json::validate(&sdoc).expect("series output must be valid JSON");
        std::fs::write(series_path, format!("{sdoc}\n")).expect("write series output");
        println!("wrote {series_path}");
    }
    for p in &phases {
        println!("{:<16} {:10.1} ms", p.name, p.wall_ms);
    }
    if let Some(ref_ms) = ref_churn_ms {
        let churn_ms = phases
            .iter()
            .find(|p| p.name == "churn_stabilize")
            .map(|p| p.wall_ms)
            .unwrap_or(0.0);
        println!(
            "churn 1-shard ref {ref_ms:8.1} ms (speedup {:.2}x, counters identical)",
            ref_ms / churn_ms.max(f64::MIN_POSITIVE)
        );
    }
    println!(
        "routes delivered {}, mean hops {:.3}",
        counters.delivered,
        counters.total_hops as f64 / counters.delivered.max(1) as f64
    );
    println!("wrote {out}");
}
