//! `bench_macro` — the end-to-end simulator benchmark, published as
//! `BENCH_macro.json` at the repository root.
//!
//! One run builds a 10 000-node Pastry overlay with the static builder on
//! the sphere topology, routes 10 000 seeded keys through it, then kills
//! 5 % of the nodes and runs a stabilize round — the three phases every
//! large experiment in EXPERIMENTS.md is built from. Wall-clock time per
//! phase plus the simulation's own counters (hops, messages, bytes) give
//! future PRs a macro-level perf trajectory; the counters double as a
//! coarse determinism check (same seed ⇒ same counters on any machine).
//!
//! Usage: `cargo run --release -p past-bench --bin bench_macro --
//! [--smoke] [--nodes N] [--out PATH]`. `--smoke` shrinks the route
//! count so CI can assert the binary runs and emits valid JSON
//! quickly; `--nodes N` overrides the network size independently, so
//! `--nodes 100000 --smoke` is the CI scale gate (big overlay, few
//! routes) and `--nodes 1000000` (no `--smoke`) is the EXPERIMENTS.md
//! million-node run.

use past_bench::json;
use past_crypto::rng::Rng;
use past_netsim::Sphere;
use past_pastry::{random_ids, static_build, Config, Id, NullApp};
use std::time::Instant;

struct Phase {
    name: &'static str,
    wall_ms: f64,
}

fn main() {
    let mut smoke = false;
    let mut nodes: Option<usize> = None;
    let mut out = format!("{}/../../BENCH_macro.json", env!("CARGO_MANIFEST_DIR"));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--nodes" => {
                let v = args.next().expect("--nodes needs a count");
                nodes = Some(v.parse().expect("--nodes must be an integer"));
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other}; supported: --smoke, --nodes N, --out PATH"),
        }
    }
    let (mut n, routes) = if smoke { (300, 200) } else { (10_000, 10_000) };
    if let Some(v) = nodes {
        assert!(v > 0, "--nodes must be positive");
        n = v;
    }
    let kills = n / 20;
    let mut phases: Vec<Phase> = Vec::new();

    // Phase 1: static build.
    let mut rng = Rng::seed_from_u64(2001);
    let ids = random_ids(n, &mut rng);
    let t = Instant::now();
    let mut sim = static_build(
        Sphere::new(n, 2001),
        Config::default(),
        2001,
        &ids,
        |_| NullApp,
        3,
    );
    phases.push(Phase {
        name: "static_build",
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    });

    // Phase 2: routes.
    let mut key_rng = Rng::seed_from_u64(42);
    let t = Instant::now();
    let mut delivered = 0u64;
    let mut total_hops = 0u64;
    for _ in 0..routes {
        let key = Id(key_rng.random());
        let from = key_rng.random_range(0..n);
        sim.route(from, key, ());
        for rec in sim.drain_deliveries() {
            delivered += 1;
            total_hops += rec.hops as u64;
        }
    }
    phases.push(Phase {
        name: "routes",
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    });
    let route_msgs = sim.engine.stats.total_msgs;
    let route_bytes = sim.engine.stats.total_bytes;

    // Phase 3: churn + stabilize.
    let t = Instant::now();
    for i in 0..kills {
        // Spread the failures deterministically across the address space.
        sim.engine.kill((i * 19 + 7) % n);
    }
    sim.stabilize();
    phases.push(Phase {
        name: "churn_stabilize",
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    });

    let doc = json::Obj::new()
        .str("schema", "past-bench/v1")
        .str("bench", "macro")
        .str("mode", if smoke { "smoke" } else { "full" })
        .int("nodes", n as u64)
        .int("routes", routes as u64)
        .int("kills", kills as u64)
        .raw(
            "phases",
            &json::array(phases.iter().map(|p| {
                json::Obj::new()
                    .str("name", p.name)
                    .num("wall_ms", p.wall_ms)
                    .build()
            })),
        )
        .raw(
            "sim",
            &json::Obj::new()
                .int("delivered", delivered)
                .num("mean_hops", total_hops as f64 / delivered.max(1) as f64)
                .int("route_msgs", route_msgs)
                .int("route_bytes", route_bytes)
                .int("total_msgs", sim.engine.stats.total_msgs)
                .int("total_bytes", sim.engine.stats.total_bytes)
                .int("final_us", sim.engine.now().as_micros())
                .build(),
        )
        .build();
    json::validate(&doc).expect("bench output must be valid JSON");
    std::fs::write(&out, format!("{doc}\n")).expect("write bench output");
    for p in &phases {
        println!("{:<16} {:10.1} ms", p.name, p.wall_ms);
    }
    println!(
        "routes delivered {delivered}, mean hops {:.3}",
        total_hops as f64 / delivered.max(1) as f64
    );
    println!("wrote {out}");
}
