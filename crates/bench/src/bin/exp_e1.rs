//! Paper-scale run of experiment E1: routing hops vs network size.
//!
//! `cargo run --release -p past-bench --bin exp_e1`

use past_sim::experiments::hops;

fn main() {
    let params = hops::Params::paper();
    println!("Running E1 at paper scale: {params:?}\n");
    let result = hops::run(&params);
    println!("{}", result.table());
    println!("{}", result.distribution_table());
}
