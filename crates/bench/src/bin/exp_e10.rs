//! Paper-scale run of experiment E10: files-per-node balance.
//!
//! `cargo run --release -p past-bench --bin exp_e10`

use past_sim::experiments::balance;

fn main() {
    let params = balance::Params::paper();
    println!("Running E10 at paper scale: {params:?}\n");
    let result = balance::run(&params);
    println!("{}", result.table());
}
