//! Paper-scale run of experiment E5: delivery under failures.
//!
//! `cargo run --release -p past-bench --bin exp_e5`

use past_sim::experiments::failure;

fn main() {
    let params = failure::Params::paper();
    println!("Running E5 at paper scale: {params:?}\n");
    let result = failure::run(&params);
    println!("{}", result.table());
}
