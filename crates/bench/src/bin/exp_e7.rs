//! Paper-scale run of experiment E7: storage utilization vs rejections.
//!
//! `cargo run --release -p past-bench --bin exp_e7`

use past_sim::experiments::storage_util;

fn main() {
    let params = storage_util::Params::paper();
    println!("Running E7 at paper scale: {params:?}\n");
    let result = storage_util::run(&params);
    println!("{}", result.table());
}
