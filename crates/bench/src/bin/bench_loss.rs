//! `bench_loss` — the message-loss sweep, published as `BENCH_loss.json`
//! at the repository root.
//!
//! One run builds the same PAST deployment three times and drives an
//! identical insert + lookup workload at loss rates 0%, 1%, and 5% (with
//! matching duplication and delay jitter at the lossy levels), with the
//! recovery machinery on: heartbeat acks, join retries, and the bounded
//! client retry layer. Per level it records operation outcomes (every op
//! must terminate explicitly — hung requests show up as a count
//! mismatch), the fault layer's own drop/duplicate counters, and wall
//! time, so future PRs can see both the overhead of the retry machinery
//! at loss 0 and its effectiveness under loss.
//!
//! Usage: `cargo run --release -p past-bench --bin bench_loss --
//! [--smoke] [--shards K] [--out PATH]`. `--smoke` shrinks the network
//! so CI can assert the binary runs and emits valid JSON quickly;
//! `--shards K` runs the sweep on the sharded engine (K worker threads
//! over a delay-floored sphere).

use past_bench::json;
use past_core::{BuildMode, ContentRef, PastApp, PastConfig, PastNetwork, PastOut};
use past_crypto::rng::Rng;
use past_netsim::{FaultConfig, SeriesConfig, ShardConfig, SimBackend, Sphere, TraceConfig};
use past_pastry::{random_ids, Config as PastryConfig, PastryNode, RecoveryConfig};
use std::time::Instant;

const MB: u64 = 1 << 20;
const SEED: u64 = 2026;

/// Delay floor (and shard window) for `--shards` runs; see
/// `bench_macro` for the rationale. Sequential runs keep the un-floored
/// sphere so historical numbers stay comparable.
const SHARD_FLOOR_US: u64 = 5_000;

/// Flight-recorder window for the per-level drop/duplicate series: one
/// simulated second.
const SERIES_WINDOW_US: u64 = 1_000_000;

struct Level {
    loss: f64,
    inserts: u64,
    insert_ok: u64,
    insert_failed: u64,
    lookups: u64,
    lookup_ok: u64,
    lookup_failed: u64,
    dropped: u64,
    duplicated: u64,
    failed_sends: u64,
    total_msgs: u64,
    wall_ms: f64,
    /// Fault-injected drops per message kind (non-zero entries only).
    dropped_by_kind: Vec<(&'static str, u64)>,
    /// Fault-injected duplicates per message kind (non-zero entries only).
    duplicated_by_kind: Vec<(&'static str, u64)>,
    /// Per-window `(window_start_us, drops)` pairs (non-zero windows only).
    drop_series: Vec<(u64, u64)>,
    /// Per-window `(window_start_us, duplicates)` pairs (non-zero windows only).
    dup_series: Vec<(u64, u64)>,
}

fn pastry_cfg() -> PastryConfig {
    PastryConfig {
        leaf_len: 16,
        ..PastryConfig::default()
    }
}

fn past_cfg() -> PastConfig {
    PastConfig {
        request_timeout_us: Some(800_000),
        request_attempts: 5,
        ..PastConfig::default()
    }
}

fn run_level(loss: f64, n: usize, files: u64, shards: Option<usize>) -> Level {
    let mut rng = Rng::seed_from_u64(SEED);
    let ids = random_ids(n, &mut rng);
    let t = Instant::now();
    match shards {
        None => {
            let mut net = PastNetwork::build(
                Sphere::new(n, SEED),
                pastry_cfg(),
                past_cfg(),
                SEED,
                &ids,
                &vec![400 * MB; n],
                &vec![4_000 * MB; n],
                BuildMode::Static,
            );
            drive_level(&mut net, loss, n, files, t)
        }
        Some(k) => {
            let mut net = PastNetwork::build_sharded(
                Sphere::with_delay_floor(n, SEED, SHARD_FLOOR_US),
                pastry_cfg(),
                past_cfg(),
                SEED,
                &ids,
                &vec![400 * MB; n],
                &vec![4_000 * MB; n],
                BuildMode::Static,
                ShardConfig {
                    shards: k,
                    window_us: SHARD_FLOOR_US,
                },
            )
            .expect("window equals the delay floor, so the sharded build is sound");
            drive_level(&mut net, loss, n, files, t)
        }
    }
}

/// The per-level workload, generic over the simulation backend.
fn drive_level<B>(
    net: &mut PastNetwork<Sphere, B>,
    loss: f64,
    n: usize,
    files: u64,
    t: Instant,
) -> Level
where
    B: SimBackend<PastryNode<PastApp>, Topo = Sphere>,
{
    net.sim.set_recovery(RecoveryConfig::default());
    // Metrics only: per-kind drop/duplicate attribution without paying
    // for event records.
    net.sim.engine.set_tracing(TraceConfig::metrics_only());
    // The flight recorder attributes the same drops/duplicates to sim-time
    // windows; sampling is observation only and perturbs no counter.
    net.sim
        .engine
        .set_series(SeriesConfig::new(SERIES_WINDOW_US));
    net.sim.engine.set_faults(
        FaultConfig {
            loss,
            duplicate: if loss > 0.0 { 0.01 } else { 0.0 },
            jitter_us: if loss > 0.0 { 20_000 } else { 0 },
        },
        SEED ^ 0xfa17,
    );

    let mut lvl = Level {
        loss,
        inserts: 0,
        insert_ok: 0,
        insert_failed: 0,
        lookups: 0,
        lookup_ok: 0,
        lookup_failed: 0,
        dropped: 0,
        duplicated: 0,
        failed_sends: 0,
        total_msgs: 0,
        wall_ms: 0.0,
        dropped_by_kind: Vec::new(),
        duplicated_by_kind: Vec::new(),
        drop_series: Vec::new(),
        dup_series: Vec::new(),
    };
    let mut events = Vec::new();
    for i in 0..files {
        let name = format!("loss-{i}");
        let content = ContentRef::synthetic(SEED as usize, &name, (1 + i % 3) * MB);
        let client = (i as usize * 7) % n;
        if net.insert(client, &name, content, 5).is_ok() {
            lvl.inserts += 1;
        }
        events.extend(net.run());
    }
    let fids: Vec<_> = events
        .iter()
        .filter_map(|(_, _, e)| match e {
            PastOut::InsertOk { file_id, .. } => Some(*file_id),
            _ => None,
        })
        .collect();
    for (i, fid) in fids.iter().enumerate() {
        net.lookup((i * 11 + 3) % n, *fid);
        lvl.lookups += 1;
        events.extend(net.run());
    }
    lvl.wall_ms = t.elapsed().as_secs_f64() * 1e3;

    for (_, _, e) in &events {
        match e {
            PastOut::InsertOk { .. } => lvl.insert_ok += 1,
            PastOut::InsertFailed { .. } => lvl.insert_failed += 1,
            PastOut::LookupOk { .. } => lvl.lookup_ok += 1,
            PastOut::LookupFailed { .. } => lvl.lookup_failed += 1,
            _ => {}
        }
    }
    {
        let stats = net.sim.engine.stats();
        lvl.dropped = stats.dropped;
        lvl.duplicated = stats.duplicated;
        lvl.failed_sends = stats.failed_sends;
        lvl.total_msgs = stats.total_msgs;
    }
    // `take_tracer` merges the per-shard sinks on the sharded backend;
    // reading the harness tracer alone would miss every shard-side
    // drop/duplicate record.
    let tracer = net.sim.engine.take_tracer();
    let metrics = &tracer.metrics;
    lvl.dropped_by_kind = metrics.dropped_by_kind().filter(|(_, c)| *c > 0).collect();
    lvl.duplicated_by_kind = metrics
        .duplicated_by_kind()
        .filter(|(_, c)| *c > 0)
        .collect();
    if let Some(series) = tracer.series() {
        for (start, w) in series.windows() {
            let (drops, dups) = (w.counter("dropped"), w.counter("duplicated"));
            if drops > 0 {
                lvl.drop_series.push((start, drops));
            }
            if dups > 0 {
                lvl.dup_series.push((start, dups));
            }
        }
    }
    lvl
}

/// Renders `(window_start, count)` pairs as a JSON array of pairs.
fn pair_array(pairs: &[(u64, u64)]) -> String {
    json::array(pairs.iter().map(|(t, c)| format!("[{t}, {c}]")))
}

/// Renders `(kind, count)` pairs as a JSON object.
fn kind_obj(pairs: &[(&'static str, u64)]) -> String {
    let mut o = json::Obj::new();
    for (k, c) in pairs {
        o = o.int(k, *c);
    }
    o.build()
}

fn main() {
    let mut smoke = false;
    let mut shards: Option<usize> = None;
    let mut out = format!("{}/../../BENCH_loss.json", env!("CARGO_MANIFEST_DIR"));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--shards" => {
                let v = args.next().expect("--shards needs a count");
                let k: usize = v.parse().expect("--shards must be an integer");
                assert!(k > 0, "--shards must be positive");
                shards = Some(k);
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other}; supported: --smoke, --shards K, --out PATH"),
        }
    }
    let (n, files) = if smoke { (30, 6) } else { (150, 40) };
    let levels: Vec<Level> = [0.0, 0.01, 0.05]
        .iter()
        .map(|&loss| run_level(loss, n, files, shards))
        .collect();

    let doc = json::Obj::new()
        .str("schema", "past-bench/v1")
        .str("bench", "loss")
        .str("mode", if smoke { "smoke" } else { "full" })
        .int("nodes", n as u64)
        .int("files", files)
        .int("shards", shards.unwrap_or(0) as u64)
        .raw(
            "levels",
            &json::array(levels.iter().map(|l| {
                json::Obj::new()
                    .num("loss", l.loss)
                    .int("inserts", l.inserts)
                    .int("insert_ok", l.insert_ok)
                    .int("insert_failed", l.insert_failed)
                    .int("lookups", l.lookups)
                    .int("lookup_ok", l.lookup_ok)
                    .int("lookup_failed", l.lookup_failed)
                    .int("dropped", l.dropped)
                    .int("duplicated", l.duplicated)
                    .int("failed_sends", l.failed_sends)
                    .int("total_msgs", l.total_msgs)
                    .num("wall_ms", l.wall_ms)
                    .raw("dropped_by_kind", &kind_obj(&l.dropped_by_kind))
                    .raw("duplicated_by_kind", &kind_obj(&l.duplicated_by_kind))
                    .raw("drop_series", &pair_array(&l.drop_series))
                    .raw("dup_series", &pair_array(&l.dup_series))
                    .build()
            })),
        )
        .build();
    json::validate(&doc).expect("bench output must be valid JSON");
    std::fs::write(&out, format!("{doc}\n")).expect("write bench output");
    for l in &levels {
        println!(
            "loss {:>4.0}%: insert {}/{} ok, lookup {}/{} ok, dropped {}, dup {}, msgs {}, {:.1} ms",
            l.loss * 100.0,
            l.insert_ok,
            l.inserts,
            l.lookup_ok,
            l.lookups,
            l.dropped,
            l.duplicated,
            l.total_msgs,
            l.wall_ms
        );
        assert_eq!(
            l.insert_ok + l.insert_failed,
            l.inserts,
            "every insert must terminate explicitly at loss {}",
            l.loss
        );
        assert_eq!(
            l.lookup_ok + l.lookup_failed,
            l.lookups,
            "every lookup must terminate explicitly at loss {}",
            l.loss
        );
    }
    println!("wrote {out}");
}
