//! Paper-scale run of experiment E3: route-distance penalty.
//!
//! `cargo run --release -p past-bench --bin exp_e3`

use past_sim::experiments::locality;

fn main() {
    let params = locality::Params::paper();
    println!("Running E3 at paper scale: {params:?}\n");
    let result = locality::run(&params);
    println!("{}", result.table());
    let ablation = locality::run_ablation(
        1_000,
        600,
        63,
        past_sim::experiments::pastry_config_default(),
    );
    println!("{}", ablation.table());
}
