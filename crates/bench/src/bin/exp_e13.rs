//! Paper-scale run of experiment E13: security fault injection.
//!
//! `cargo run --release -p past-bench --bin exp_e13`

use past_sim::experiments::security;

fn main() {
    let params = security::Params::paper();
    println!("Running E13 at paper scale: {params:?}\n");
    let result = security::run(&params);
    println!("{}", result.table());
}
