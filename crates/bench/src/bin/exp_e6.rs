//! Paper-scale run of experiment E6: node-arrival cost.
//!
//! `cargo run --release -p past-bench --bin exp_e6`

use past_sim::experiments::join_cost;

fn main() {
    let params = join_cost::Params::paper();
    println!("Running E6 at paper scale: {params:?}\n");
    let result = join_cost::run(&params);
    println!("{}", result.table());
}
