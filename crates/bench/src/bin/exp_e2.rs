//! Paper-scale run of experiment E2: per-node routing state.
//!
//! `cargo run --release -p past-bench --bin exp_e2`

use past_sim::experiments::state_size;

fn main() {
    let params = state_size::Params::paper();
    println!("Running E2 at paper scale: {params:?}\n");
    let result = state_size::run(&params);
    println!("{}", result.table());
}
