//! `bench_micro` — microbenchmarks of the measured hot paths, published
//! as `BENCH_micro.json` at the repository root.
//!
//! Covers the three paths the performance work targets: the crypto layer
//! (Schnorr sign/verify and the modular reduction under them), the Pastry
//! routing step, and the simulator engine / topology proximity queries.
//! Successive PRs regenerate the file, leaving a perf trajectory.
//!
//! Usage: `cargo run --release -p past-bench --bin bench_micro --
//! [--smoke] [--out PATH]`. `--smoke` shrinks the measurement budget to a
//! fraction of a second (CI asserts the binary runs and emits valid
//! JSON; timings in smoke mode are meaningless).

use past_bench::{json, Bench, Measurement};
use past_crypto::modmath::{mulmod, powmod};
use past_crypto::rng::Rng;
use past_crypto::u256::U256;
use past_crypto::KeyPair;
use past_netsim::{Addr, Ctx, Engine, Message, NodeLogic, Plane, Sphere, Topology, UniformRandom};
use past_pastry::{next_hop, Config, Id, NodeHandle, PastryState};
use std::hint::black_box;

/// A toy protocol for timing the engine's event loop: every Ping is
/// answered with a Ping back, so one injected message keeps a pair of
/// nodes exchanging events until the hop budget runs out.
#[derive(Clone)]
struct Ping {
    hops_left: u32,
}

impl Message for Ping {
    const KINDS: &'static [&'static str] = &["ping"];

    fn kind_id(&self) -> usize {
        0
    }
}

struct PingNode;

impl NodeLogic for PingNode {
    type Msg = Ping;
    type Out = ();

    fn on_message(&mut self, from: Addr, msg: Ping, ctx: &mut Ctx<'_, Ping, ()>) {
        if msg.hops_left > 0 {
            ctx.send(
                from,
                Ping {
                    hops_left: msg.hops_left - 1,
                },
            );
        }
    }
}

fn bench_crypto(b: &mut Bench) {
    b.group("crypto/schnorr");
    let kp = KeyPair::from_seed(b"bench");
    let msg = b"a store receipt-sized message for signing benchmarks";
    b.run("sign", || black_box(kp.sign(black_box(msg))));
    let sig = kp.sign(msg);
    b.run("verify", || {
        black_box(kp.public.verify(black_box(msg), black_box(&sig)))
    });

    b.group("crypto/modmath");
    let p = past_crypto::schnorr::group_p();
    let mut rng = Rng::seed_from_u64(3);
    let a = U256([rng.random(), rng.random(), rng.random(), 0]);
    let c = U256([rng.random(), rng.random(), rng.random(), 0]);
    let e = U256([rng.random(), rng.random(), rng.random(), 0]);
    b.run("mulmod", || {
        black_box(mulmod(black_box(&a), black_box(&c), black_box(&p)))
    });
    b.run("powmod", || {
        black_box(powmod(black_box(&a), black_box(&e), black_box(&p)))
    });
}

fn routing_state(n: usize, seed: u64, randomization: f64) -> PastryState {
    let mut cfg = Config::default();
    cfg.route_randomization = randomization;
    let mut rng = Rng::seed_from_u64(seed);
    let mut st = PastryState::new(cfg, NodeHandle::new(Id(rng.random()), 0));
    for i in 1..n {
        st.add_node(
            NodeHandle::new(Id(rng.random()), i),
            rng.random_range(1..50_000),
        );
    }
    st
}

fn bench_routing(b: &mut Bench) {
    b.group("pastry/route");
    let st = routing_state(1_000, 7, 0.0);
    let mut key_rng = Rng::seed_from_u64(9);
    let mut step_rng = Rng::seed_from_u64(1);
    b.run("next_hop", || {
        let key = Id(key_rng.random());
        black_box(next_hop(&st, &key, &mut step_rng))
    });
    let st_rand = routing_state(1_000, 8, 0.5);
    b.run("next_hop_randomized", || {
        let key = Id(key_rng.random());
        black_box(next_hop(&st_rand, &key, &mut step_rng))
    });
}

fn bench_engine(b: &mut Bench) {
    b.group("netsim/engine");
    // 128 events per iteration: one injected ping bounces 127 times.
    let mut e = Engine::new(
        UniformRandom::new(2, 5, 10, 100),
        vec![PingNode, PingNode],
        5,
    );
    b.run("event_128", || {
        e.inject(0, 1, Ping { hops_left: 127 }, 0);
        black_box(e.run_until_quiet(1_000))
    });
}

fn bench_topology(b: &mut Bench) {
    b.group("netsim/topology");
    let n = 4_096;
    let sphere = Sphere::new(n, 17);
    let plane = Plane::new(n, 17, 60_000);
    // Repeat: a small working set of pairs, queried over and over — the
    // pattern routing and maintenance produce (same neighbors each time).
    let mut i = 0usize;
    b.run("sphere_delay_repeat", || {
        i = (i + 1) & 255;
        black_box(sphere.delay_us(i, (i * 7 + 1) & 255))
    });
    // Scan: a fresh pair nearly every call (static_build's sampling).
    let mut j = 0usize;
    b.run("sphere_delay_scan", || {
        j = (j + 1) & (n - 1);
        black_box(sphere.delay_us(j, (j * 2_467 + 1) & (n - 1)))
    });
    let mut k = 0usize;
    b.run("plane_delay_repeat", || {
        k = (k + 1) & 255;
        black_box(plane.delay_us(k, (k * 7 + 1) & 255))
    });
}

fn measurement_json(m: &Measurement) -> String {
    json::Obj::new()
        .str("name", &m.name)
        .num("median_ns", m.median_ns)
        .num("min_ns", m.min_ns)
        .int("iters_per_sample", m.iters_per_sample)
        .build()
}

fn main() {
    let mut smoke = false;
    let mut out = format!("{}/../../BENCH_micro.json", env!("CARGO_MANIFEST_DIR"));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other}; supported: --smoke, --out PATH"),
        }
    }

    let mut b = Bench::new();
    if smoke {
        b.samples = 2;
        b.target_sample_ns = 200_000;
    }
    bench_crypto(&mut b);
    bench_routing(&mut b);
    bench_engine(&mut b);
    bench_topology(&mut b);

    let doc = json::Obj::new()
        .str("schema", "past-bench/v1")
        .str("bench", "micro")
        .str("mode", if smoke { "smoke" } else { "full" })
        .raw(
            "results",
            &json::array(b.results().iter().map(measurement_json)),
        )
        .build();
    json::validate(&doc).expect("bench output must be valid JSON");
    std::fs::write(&out, format!("{doc}\n")).expect("write bench output");
    println!("\nwrote {} ({} results)", out, b.results().len());
}
