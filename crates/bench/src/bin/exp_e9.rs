//! Paper-scale run of experiment E9: routing around malicious nodes.
//!
//! `cargo run --release -p past-bench --bin exp_e9`

use past_sim::experiments::malicious;

fn main() {
    let params = malicious::Params::paper();
    println!("Running E9 at paper scale: {params:?}\n");
    let result = malicious::run(&params);
    println!("{}", result.table());
}
