//! Paper-scale run of experiment E11: Pastry vs Chord vs CAN.
//!
//! `cargo run --release -p past-bench --bin exp_e11`

use past_sim::experiments::baselines_cmp;

fn main() {
    let params = baselines_cmp::Params::paper();
    println!("Running E11 at paper scale: {params:?}\n");
    let result = baselines_cmp::run(&params);
    println!("{}", result.table());
}
