//! Paper-scale run of experiment E12: smartcard quota lifecycle.
//!
//! `cargo run --release -p past-bench --bin exp_e12`

use past_sim::experiments::quota;

fn main() {
    let params = quota::Params::paper();
    println!("Running E12 at paper scale: {params:?}\n");
    let result = quota::run(&params);
    println!("{}", result.table());
}
