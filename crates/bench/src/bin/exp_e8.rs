//! Paper-scale run of experiment E8: caching effect.
//!
//! `cargo run --release -p past-bench --bin exp_e8`

use past_sim::experiments::caching;

fn main() {
    let params = caching::Params::paper();
    println!("Running E8 at paper scale: {params:?}\n");
    let result = caching::run(&params);
    println!("{}", result.table());
}
