//! Paper-scale run of experiment E4: nearest-replica retrieval.
//!
//! `cargo run --release -p past-bench --bin exp_e4`

use past_sim::experiments::replicas;

fn main() {
    let params = replicas::Params::paper();
    println!("Running E4 at paper scale: {params:?}\n");
    let result = replicas::run(&params);
    println!("{}", result.table());
}
