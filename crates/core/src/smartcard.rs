//! Smartcards: quota-enforcing signing tokens (§2.1).
//!
//! "Each PAST node and each user of the system hold a smartcard. A
//! private/public key pair is associated with each card. Each smartcard's
//! public key is signed with the smartcard issuer's private key for
//! certification purposes. The smartcards generate and verify various
//! certificates used during insert and reclaim operations and they
//! maintain storage quotas."
//!
//! Tamper-resistance is modeled structurally: the private key and the
//! quota counters are private fields, and the only mutations are the
//! certificate-issuing methods below — fault-injection experiments can
//! make a *node* misbehave, but never its card.

use crate::cert::{CardCert, FileCertificate, ReclaimCertificate, ReclaimReceipt, StoreReceipt};
use crate::fileid::{ContentRef, FileId};
use past_crypto::{KeyPair, PublicKey};
use std::collections::HashSet;

/// Errors raised by smartcard operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CardError {
    /// The requested insertion would exceed the card's remaining quota.
    QuotaExceeded {
        /// Bytes needed (size × k).
        needed: u64,
        /// Bytes remaining on the card.
        remaining: u64,
    },
    /// A reclaim receipt failed verification or was replayed.
    BadReceipt,
}

impl std::fmt::Display for CardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CardError::QuotaExceeded { needed, remaining } => {
                write!(
                    f,
                    "quota exceeded: need {needed} bytes, {remaining} remaining"
                )
            }
            CardError::BadReceipt => write!(f, "invalid or replayed reclaim receipt"),
        }
    }
}

impl std::error::Error for CardError {}

/// A smartcard: key pair, broker credential, and quota counters.
pub struct Smartcard {
    keys: KeyPair,
    credential: CardCert,
    /// Remaining usage quota in bytes (client side).
    quota_remaining: u64,
    /// Total usage quota as issued.
    quota_issued: u64,
    /// Storage this card's node promises to contribute, in bytes.
    contributed: u64,
    /// Cumulative bytes ever debited by certificate issuance.
    debited_total: u64,
    /// Cumulative bytes ever credited back (reclaims and returned
    /// debits), counting only credit actually applied (the remaining
    /// quota is capped at the issued quota).
    credited_total: u64,
    /// Receipts already credited, to prevent replay: (fileId, storer key).
    credited: HashSet<(FileId, [u8; 32])>,
}

impl Smartcard {
    /// Creates a card. Normally called by [`crate::broker::Broker`].
    pub(crate) fn new(
        keys: KeyPair,
        credential: CardCert,
        quota: u64,
        contributed: u64,
    ) -> Smartcard {
        Smartcard {
            keys,
            credential,
            quota_remaining: quota,
            quota_issued: quota,
            contributed,
            debited_total: 0,
            credited_total: 0,
            credited: HashSet::new(),
        }
    }

    /// The card's public key.
    pub fn public(&self) -> PublicKey {
        self.keys.public
    }

    /// The broker-signed credential.
    pub fn credential(&self) -> CardCert {
        self.credential
    }

    /// Remaining usage quota in bytes.
    pub fn quota_remaining(&self) -> u64 {
        self.quota_remaining
    }

    /// Quota as originally issued.
    pub fn quota_issued(&self) -> u64 {
        self.quota_issued
    }

    /// Storage contribution promised by this card's node.
    pub fn contributed(&self) -> u64 {
        self.contributed
    }

    /// Cumulative bytes debited by certificate issuance.
    ///
    /// `debited_total − credited_total` is the card's outstanding debit,
    /// which quota conservation (invariant I5) equates with the bytes
    /// currently stored on its behalf plus any in-flight insertions.
    pub fn debited_total(&self) -> u64 {
        self.debited_total
    }

    /// Cumulative bytes credited back (applied credit only).
    pub fn credited_total(&self) -> u64 {
        self.credited_total
    }

    /// Issues a file certificate, debiting `size × k` from the quota.
    ///
    /// "When a file certificate is issued, an amount corresponding to the
    /// file size times the replication factor is debited against the
    /// quota."
    pub fn issue_file_certificate(
        &mut self,
        name: &str,
        content: &ContentRef,
        replication: u8,
        salt: u64,
        now_us: u64,
    ) -> Result<FileCertificate, CardError> {
        let needed = content.size.saturating_mul(replication as u64);
        if needed > self.quota_remaining {
            return Err(CardError::QuotaExceeded {
                needed,
                remaining: self.quota_remaining,
            });
        }
        self.quota_remaining -= needed;
        self.debited_total += needed;
        let file_id = FileId::derive(name, &self.keys.public, salt);
        let msg = FileCertificate::message(
            &file_id,
            &content.hash,
            content.size,
            replication,
            salt,
            now_us,
        );
        Ok(FileCertificate {
            file_id,
            content_hash: content.hash,
            size: content.size,
            replication,
            salt,
            inserted_at: now_us,
            owner: self.credential,
            signature: self.keys.sign(&msg),
        })
    }

    /// Credits quota directly (used when an insertion attempt fails before
    /// any copy was stored; the debit for unstored copies is returned).
    pub fn credit(&mut self, bytes: u64) {
        let before = self.quota_remaining;
        self.quota_remaining = (self.quota_remaining + bytes).min(self.quota_issued);
        self.credited_total += self.quota_remaining - before;
    }

    /// Issues a reclaim certificate for a file owned by this card.
    pub fn issue_reclaim_certificate(&self, file_id: &FileId) -> ReclaimCertificate {
        ReclaimCertificate {
            file_id: *file_id,
            owner: self.credential,
            signature: self.keys.sign(&ReclaimCertificate::message(file_id)),
        }
    }

    /// Credits the quota from a reclaim receipt; each (file, storer) pair
    /// is accepted once ("when the client presents an appropriate reclaim
    /// receipt issued by a storage node, the amount reclaimed is
    /// credited").
    pub fn credit_reclaim(
        &mut self,
        receipt: &ReclaimReceipt,
        broker: &PublicKey,
    ) -> Result<u64, CardError> {
        if !receipt.verify(broker) {
            return Err(CardError::BadReceipt);
        }
        let key = (receipt.file_id, receipt.storer.card_key.to_bytes());
        if !self.credited.insert(key) {
            return Err(CardError::BadReceipt);
        }
        self.credit(receipt.freed);
        Ok(receipt.freed)
    }

    /// Issues a store receipt (storage-node side).
    pub fn issue_store_receipt(
        &self,
        file_id: &FileId,
        stored: u64,
        diverted: bool,
    ) -> StoreReceipt {
        StoreReceipt {
            file_id: *file_id,
            stored,
            diverted,
            storer: self.credential,
            signature: self
                .keys
                .sign(&StoreReceipt::message(file_id, stored, diverted)),
        }
    }

    /// Issues a reclaim receipt (storage-node side).
    pub fn issue_reclaim_receipt(&self, file_id: &FileId, freed: u64) -> ReclaimReceipt {
        ReclaimReceipt {
            file_id: *file_id,
            freed,
            storer: self.credential,
            signature: self.keys.sign(&ReclaimReceipt::message(file_id, freed)),
        }
    }
}

impl std::fmt::Debug for Smartcard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Smartcard")
            .field("public", &self.keys.public)
            .field("quota_remaining", &self.quota_remaining)
            .field("contributed", &self.contributed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;

    fn setup() -> (Broker, Smartcard) {
        let mut broker = Broker::new(b"b");
        let card = broker.issue_card(b"u", 1000, 0);
        (broker, card)
    }

    #[test]
    fn quota_debits_size_times_k() {
        let (_b, mut card) = setup();
        let content = ContentRef::synthetic(0, "f", 100);
        card.issue_file_certificate("f", &content, 3, 0, 0).unwrap();
        assert_eq!(card.quota_remaining(), 700);
    }

    #[test]
    fn quota_exceeded_rejected() {
        let (_b, mut card) = setup();
        let content = ContentRef::synthetic(0, "f", 400);
        let err = card
            .issue_file_certificate("f", &content, 3, 0, 0)
            .unwrap_err();
        assert_eq!(
            err,
            CardError::QuotaExceeded {
                needed: 1200,
                remaining: 1000
            }
        );
        // No partial debit on failure.
        assert_eq!(card.quota_remaining(), 1000);
    }

    #[test]
    fn reclaim_receipt_credits_once() {
        let (broker, mut card) = setup();
        let storer = {
            let mut b2 = Broker::new(b"b");
            b2.issue_card(b"node", 0, 500)
        };
        let content = ContentRef::synthetic(0, "f", 100);
        let cert = card.issue_file_certificate("f", &content, 2, 0, 0).unwrap();
        assert_eq!(card.quota_remaining(), 800);
        let receipt = storer.issue_reclaim_receipt(&cert.file_id, 100);
        assert_eq!(
            card.credit_reclaim(&receipt, &broker.public()).unwrap(),
            100
        );
        assert_eq!(card.quota_remaining(), 900);
        // Replay is rejected.
        assert_eq!(
            card.credit_reclaim(&receipt, &broker.public()),
            Err(CardError::BadReceipt)
        );
        assert_eq!(card.quota_remaining(), 900);
    }

    #[test]
    fn credit_caps_at_issued_quota() {
        let (_b, mut card) = setup();
        card.credit(5000);
        assert_eq!(card.quota_remaining(), 1000);
    }

    #[test]
    fn forged_receipt_rejected() {
        let (broker, mut card) = setup();
        let rogue_broker = Broker::new(b"rogue");
        let rogue_card = {
            let mut rb = Broker::new(b"rogue");
            rb.issue_card(b"node", 0, 0)
        };
        let content = ContentRef::synthetic(0, "f", 10);
        let cert = card.issue_file_certificate("f", &content, 1, 0, 0).unwrap();
        let receipt = rogue_card.issue_reclaim_receipt(&cert.file_id, 999);
        // Receipt is from a card certified by a different broker.
        assert_eq!(
            card.credit_reclaim(&receipt, &broker.public()),
            Err(CardError::BadReceipt)
        );
        let _ = rogue_broker;
    }
}
