//! Per-node storage management (§2.3, after the SOSP'01 companion paper).
//!
//! A node's disk holds *primary* replicas (the node is one of the k
//! numerically closest to the fileId), *diverted* replicas (stored on
//! behalf of a leaf-set neighbor that was full), *pointers* to replicas it
//! diverted elsewhere, and — in whatever space is left — the cache.
//!
//! The acceptance policy is threshold-based: a file of size `s` is
//! accepted as a primary replica only if `s / free ≤ t_pri`, and as a
//! diverted replica only if `s / free ≤ t_div` with `t_div < t_pri`. The
//! tighter diversion threshold keeps far-from-home replicas from crowding
//! out local ones; both thresholds bias rejections toward large files,
//! reproducing the paper's "failed insertions are heavily biased towards
//! large files".

use crate::cache::Cache;
use crate::cert::FileCertificate;
use crate::fileid::FileId;
use past_netsim::Addr;
use std::collections::BTreeMap;

/// Why an insertion was refused by the local policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefuseReason {
    /// The file does not fit in free space at all.
    NoSpace,
    /// The threshold test `size/free ≤ t` failed.
    Threshold,
    /// The node already holds this file.
    AlreadyStored,
}

/// Where a held replica came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaKind {
    /// One of the k numerically closest nodes.
    Primary,
    /// Held on behalf of a full leaf-set neighbor.
    Diverted,
}

/// A stored replica.
#[derive(Clone, Debug)]
pub struct StoredFile {
    /// The file's certificate (carries size and content hash).
    pub cert: FileCertificate,
    /// Primary or diverted.
    pub kind: ReplicaKind,
}

/// The storage state of one PAST node.
#[derive(Debug)]
pub struct Store {
    capacity: u64,
    used: u64,
    // BTreeMaps, not HashMaps: replica maintenance iterates `files`, and
    // hash order would leak into which replicas move first (xtask rule D3).
    files: BTreeMap<FileId, StoredFile>,
    /// fileId → node holding the replica this node diverted.
    pointers: BTreeMap<FileId, Addr>,
    /// The cache living in unused space.
    pub cache: Cache,
    /// Primary-replica acceptance threshold (`t_pri`).
    pub t_pri: f64,
    /// Diverted-replica acceptance threshold (`t_div`).
    pub t_div: f64,
}

impl Store {
    /// Creates a store with the given capacity and thresholds.
    pub fn new(capacity: u64, t_pri: f64, t_div: f64) -> Store {
        assert!(t_div <= t_pri, "t_div must not exceed t_pri");
        Store {
            capacity,
            used: 0,
            files: BTreeMap::new(),
            pointers: BTreeMap::new(),
            cache: Cache::new(),
            t_pri,
            t_div,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes committed to primary + diverted replicas.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Free bytes (cache space is reclaimable, so it counts as free).
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Number of stored replicas.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The stored replica for `id`, if any.
    pub fn get(&self, id: &FileId) -> Option<&StoredFile> {
        self.files.get(id)
    }

    /// The diversion pointer for `id`, if this node diverted it.
    pub fn pointer(&self, id: &FileId) -> Option<Addr> {
        self.pointers.get(id).copied()
    }

    /// Iterates over stored replicas.
    pub fn files(&self) -> impl Iterator<Item = (&FileId, &StoredFile)> {
        self.files.iter()
    }

    /// Iterates over diversion pointers (snapshot/invariant support).
    pub fn pointers(&self) -> impl Iterator<Item = (&FileId, Addr)> {
        self.pointers.iter().map(|(id, a)| (id, *a))
    }

    /// Tests the acceptance policy without storing.
    pub fn admits(&self, size: u64, kind: ReplicaKind) -> Result<(), RefuseReason> {
        let free = self.free();
        if size > free {
            return Err(RefuseReason::NoSpace);
        }
        let t = match kind {
            ReplicaKind::Primary => self.t_pri,
            ReplicaKind::Diverted => self.t_div,
        };
        if free == 0 || size as f64 / free as f64 > t {
            return Err(RefuseReason::Threshold);
        }
        Ok(())
    }

    /// Stores a replica if the policy admits it, shrinking the cache to
    /// make room.
    pub fn insert(
        &mut self,
        cert: &FileCertificate,
        kind: ReplicaKind,
    ) -> Result<(), RefuseReason> {
        if self.files.contains_key(&cert.file_id) {
            return Err(RefuseReason::AlreadyStored);
        }
        self.admits(cert.size, kind)?;
        self.used += cert.size;
        // The cache borrows free space only; give it back.
        self.cache.shrink_to(self.free());
        self.cache.invalidate(&cert.file_id);
        self.files
            .insert(cert.file_id, StoredFile { cert: *cert, kind });
        Ok(())
    }

    /// Records that this node diverted `id` to `holder`.
    pub fn add_pointer(&mut self, id: FileId, holder: Addr) {
        self.pointers.insert(id, holder);
    }

    /// Removes a replica, returning the bytes freed (0 if absent).
    ///
    /// Also drops any cached copy and any diversion pointer for the same
    /// id: a removal means the file is gone from this node's perspective
    /// (reclaimed or no longer its responsibility), and a stale pointer or
    /// cache entry would keep serving it afterwards.
    pub fn remove(&mut self, id: &FileId) -> u64 {
        self.cache.invalidate(id);
        self.pointers.remove(id);
        match self.files.remove(id) {
            Some(f) => {
                self.used -= f.cert.size;
                f.cert.size
            }
            None => 0,
        }
    }

    /// Removes a diversion pointer, returning the holder if present.
    pub fn remove_pointer(&mut self, id: &FileId) -> Option<Addr> {
        self.pointers.remove(id)
    }

    /// True if the node can serve `id` from primary, diverted, or cache.
    pub fn can_serve(&self, id: &FileId) -> bool {
        self.files.contains_key(id) || self.cache.contains(id)
    }

    /// The certificate to serve for `id`, marking cache hits.
    /// Returns `(certificate, from_cache)`.
    pub fn serve(&mut self, id: &FileId) -> Option<(FileCertificate, bool)> {
        if let Some(f) = self.files.get(id) {
            return Some((f.cert, false));
        }
        self.cache.lookup(id).map(|c| (c, true))
    }

    /// Offers a passing file to the cache (bounded by current free space).
    pub fn offer_cache(&mut self, cert: &FileCertificate, max_fraction: f64) -> bool {
        if self.files.contains_key(&cert.file_id) {
            return false;
        }
        let budget = (self.free() as f64 * max_fraction.clamp(0.0, 1.0)) as u64;
        self.cache.offer(cert, budget.min(self.free()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use crate::fileid::ContentRef;

    fn cert_of(size: u64, tag: u64) -> FileCertificate {
        let mut broker = Broker::new(b"b");
        let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
        let content = ContentRef::synthetic(0, &format!("f{tag}"), size);
        card.issue_file_certificate(&format!("f{tag}"), &content, 1, tag, 0)
            .unwrap()
    }

    #[test]
    fn threshold_policy() {
        let s = Store::new(1000, 0.1, 0.05);
        // Primary: up to 10% of free.
        assert!(s.admits(100, ReplicaKind::Primary).is_ok());
        assert_eq!(
            s.admits(101, ReplicaKind::Primary),
            Err(RefuseReason::Threshold)
        );
        // Diverted: tighter.
        assert!(s.admits(50, ReplicaKind::Diverted).is_ok());
        assert_eq!(
            s.admits(51, ReplicaKind::Diverted),
            Err(RefuseReason::Threshold)
        );
        assert_eq!(
            s.admits(2000, ReplicaKind::Primary),
            Err(RefuseReason::NoSpace)
        );
    }

    #[test]
    fn threshold_tightens_as_disk_fills() {
        let mut s = Store::new(1000, 0.5, 0.25);
        assert!(s.insert(&cert_of(400, 1), ReplicaKind::Primary).is_ok());
        assert_eq!(s.free(), 600);
        // 301/600 > 0.5 refused, 300/600 accepted.
        assert_eq!(
            s.admits(301, ReplicaKind::Primary),
            Err(RefuseReason::Threshold)
        );
        assert!(s.insert(&cert_of(300, 2), ReplicaKind::Primary).is_ok());
        assert_eq!(s.used(), 700);
        assert!((s.utilization() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn duplicate_insert_refused() {
        let mut s = Store::new(1000, 1.0, 1.0);
        let c = cert_of(100, 1);
        assert!(s.insert(&c, ReplicaKind::Primary).is_ok());
        assert_eq!(
            s.insert(&c, ReplicaKind::Primary),
            Err(RefuseReason::AlreadyStored)
        );
        assert_eq!(s.used(), 100);
    }

    #[test]
    fn remove_frees_space() {
        let mut s = Store::new(1000, 1.0, 1.0);
        let c = cert_of(100, 1);
        s.insert(&c, ReplicaKind::Primary).unwrap();
        assert_eq!(s.remove(&c.file_id), 100);
        assert_eq!(s.used(), 0);
        assert_eq!(s.remove(&c.file_id), 0);
    }

    #[test]
    fn remove_invalidates_cache_and_pointer() {
        // Regression: `remove` used to free the bytes but leave a stale
        // diversion pointer and a live cache entry behind, so a reclaimed
        // file could still be served or chased through the pointer.
        let mut s = Store::new(1000, 1.0, 1.0);
        let c = cert_of(100, 1);
        s.insert(&c, ReplicaKind::Primary).unwrap();
        s.add_pointer(c.file_id, 42);
        // Force a cache copy alongside (simulates a pre-insert cached copy
        // plus a pointer left by an earlier diversion of the same id).
        assert!(s.cache.offer(&c, 500));
        assert_eq!(s.remove(&c.file_id), 100);
        assert!(!s.cache.contains(&c.file_id), "cache copy invalidated");
        assert_eq!(s.pointer(&c.file_id), None, "diversion pointer dropped");
        assert!(!s.can_serve(&c.file_id));
    }

    #[test]
    fn pointers_roundtrip() {
        let mut s = Store::new(1000, 1.0, 1.0);
        let c = cert_of(100, 1);
        s.add_pointer(c.file_id, 42);
        assert_eq!(s.pointer(&c.file_id), Some(42));
        assert_eq!(s.remove_pointer(&c.file_id), Some(42));
        assert_eq!(s.pointer(&c.file_id), None);
    }

    #[test]
    fn cache_borrows_free_space_and_yields_it() {
        let mut s = Store::new(1000, 1.0, 1.0);
        let cached = cert_of(500, 1);
        assert!(s.offer_cache(&cached, 1.0));
        assert_eq!(s.cache.used(), 500);
        // Primary insert still sees the full free space and evicts cache.
        let primary = cert_of(900, 2);
        assert!(s.insert(&primary, ReplicaKind::Primary).is_ok());
        assert!(s.cache.used() <= s.free());
        assert!(!s.cache.contains(&cached.file_id));
    }

    #[test]
    fn serve_prefers_replica_over_cache() {
        let mut s = Store::new(1000, 1.0, 1.0);
        let c = cert_of(100, 1);
        s.insert(&c, ReplicaKind::Primary).unwrap();
        let (got, from_cache) = s.serve(&c.file_id).unwrap();
        assert_eq!(got.file_id, c.file_id);
        assert!(!from_cache);
        let d = cert_of(50, 2);
        assert!(s.offer_cache(&d, 1.0));
        let (_, from_cache) = s.serve(&d.file_id).unwrap();
        assert!(from_cache);
        assert!(s.serve(&cert_of(10, 3).file_id).is_none());
    }

    #[test]
    fn inserting_a_cached_file_drops_the_cache_copy() {
        let mut s = Store::new(1000, 1.0, 1.0);
        let c = cert_of(100, 1);
        assert!(s.offer_cache(&c, 1.0));
        assert!(s.insert(&c, ReplicaKind::Primary).is_ok());
        assert!(!s.cache.contains(&c.file_id));
        assert!(s.can_serve(&c.file_id));
    }

    #[test]
    fn zero_capacity_store() {
        let s = Store::new(0, 0.1, 0.05);
        assert_eq!(
            s.admits(1, ReplicaKind::Primary),
            Err(RefuseReason::NoSpace)
        );
        assert_eq!(s.utilization(), 1.0);
    }
}
