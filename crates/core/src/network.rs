//! High-level PAST network API: the entry point examples and experiments
//! drive.
//!
//! Wraps a Pastry overlay whose application is [`PastApp`] plus the broker
//! that issued every node's smartcard, and exposes the three client
//! operations of the paper (insert / lookup / reclaim) along with audits
//! and whole-system accounting.

use crate::broker::Broker;
use crate::fileid::{ContentRef, FileId};
use crate::msg::PastMsg;
use crate::node::{PastApp, PastConfig, PastOut, RetryOp};
use crate::smartcard::CardError;
use crate::storage::ReplicaKind;
use past_crypto::Digest256;
use past_netsim::{
    Addr, Engine, OpId, ShardConfig, ShardedEngine, SimBackend, SimTime, Topology, WindowTooWide,
};
use past_pastry::{
    static_build, static_build_sharded, Config as PastryConfig, Id, OverlaySnapshot, PastryMsg,
    PastryNode, PastrySim, ShardedPastrySim, APP_TIMER_BASE,
};

/// A timestamped application event.
pub type PastEvent = (SimTime, Addr, PastOut);

/// One stored replica in a [`StoreSnapshot`].
#[derive(Clone, Copy, Debug)]
pub struct FileSnapshot {
    /// The file.
    pub file_id: FileId,
    /// Its size in bytes (from the certificate).
    pub size: u64,
    /// The owner card's public key.
    pub owner: [u8; 32],
    /// True for diverted replicas, false for primaries.
    pub diverted: bool,
}

/// Storage accounting of one live node at a quiesce point.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    /// The node.
    pub addr: Addr,
    /// Bytes the store believes are committed to replicas.
    pub used: u64,
    /// Total capacity.
    pub capacity: u64,
    /// Bytes the cache believes it occupies.
    pub cache_used: u64,
    /// Every stored replica.
    pub files: Vec<FileSnapshot>,
    /// Cached copies as `(fileId, size)`.
    pub cached: Vec<(FileId, u64)>,
    /// Diversion pointers as `(fileId, holder)`.
    pub pointers: Vec<(FileId, Addr)>,
}

/// Smartcard quota counters of one node (live or dead — a dead client's
/// debits still back replicas held by live nodes).
#[derive(Clone, Copy, Debug)]
pub struct CardSnapshot {
    /// The node holding the card.
    pub addr: Addr,
    /// The card's public key (matches [`FileSnapshot::owner`]).
    pub card_key: [u8; 32],
    /// Quota as issued.
    pub quota_issued: u64,
    /// Quota remaining.
    pub quota_remaining: u64,
    /// Cumulative debits.
    pub debited_total: u64,
    /// Cumulative applied credits.
    pub credited_total: u64,
    /// Debited bytes still in flight (inserts awaiting receipts).
    pub pending_insert_bytes: u64,
}

/// A whole-system snapshot for invariant checking: the overlay's routing
/// state plus every node's storage and quota accounting.
#[derive(Clone, Debug)]
pub struct PastSnapshot {
    /// Routing state of every node.
    pub overlay: OverlaySnapshot,
    /// Storage state of every *live* node.
    pub stores: Vec<StoreSnapshot>,
    /// Quota counters of every node, live or dead.
    pub cards: Vec<CardSnapshot>,
}

/// A complete PAST deployment: overlay + broker.
///
/// Generic over the simulation backend like [`PastrySim`]: the default
/// is the sequential engine, [`ShardedPastNetwork`] the multi-core one.
pub struct PastNetwork<T: Topology, B = Engine<PastryNode<PastApp>, T>> {
    /// The underlying overlay simulation.
    pub sim: PastrySim<PastApp, T, B>,
    /// The broker that issued all smartcards.
    pub broker: Broker,
    past_cfg: PastConfig,
    /// Next client-operation id for trace attribution (0 is reserved
    /// for [`OpId::NONE`]).
    next_op: u64,
}

/// A PAST deployment on the sharded multi-core engine.
pub type ShardedPastNetwork<T> = PastNetwork<T, ShardedEngine<PastryNode<PastApp>, T>>;

/// How to construct the overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildMode {
    /// Sequential protocol joins (accurate; O(N log N) messages).
    ProtocolJoins,
    /// Static state construction (fast; for very large networks).
    Static,
}

impl<T: Topology> PastNetwork<T> {
    /// Builds an `n`-node PAST network.
    ///
    /// Node `i` gets id `ids[i]`, storage capacity `capacities[i]`, and a
    /// smartcard with usage quota `quotas[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length or are empty.
    pub fn build(
        topo: T,
        pastry_cfg: PastryConfig,
        past_cfg: PastConfig,
        seed: u64,
        ids: &[Id],
        capacities: &[u64],
        quotas: &[u64],
        mode: BuildMode,
    ) -> PastNetwork<T> {
        assert!(!ids.is_empty());
        assert_eq!(ids.len(), capacities.len());
        assert_eq!(ids.len(), quotas.len());
        let mut broker = Broker::new(&seed.to_be_bytes());
        let mk_app = |broker: &mut Broker, i: usize| {
            let card =
                broker.issue_card(format!("card-{i:08}").as_bytes(), quotas[i], capacities[i]);
            PastApp::new(past_cfg, card, capacities[i], broker)
        };
        let sim = match mode {
            BuildMode::ProtocolJoins => {
                let mut sim = PastrySim::new(topo, pastry_cfg, seed);
                sim.build_by_joins(ids, |i| mk_app(&mut broker, i), 8);
                sim
            }
            BuildMode::Static => {
                static_build(topo, pastry_cfg, seed, ids, |i| mk_app(&mut broker, i), 4)
            }
        };
        PastNetwork {
            sim,
            broker,
            past_cfg,
            next_op: 1,
        }
    }

    /// [`build`](PastNetwork::build) on the sharded multi-core engine.
    ///
    /// Rejects a shard window wider than the topology's minimum
    /// inter-node delay. Build work is harness-side either way; the
    /// sharded backend parallelizes the runs that follow.
    #[allow(clippy::too_many_arguments)]
    pub fn build_sharded(
        topo: T,
        pastry_cfg: PastryConfig,
        past_cfg: PastConfig,
        seed: u64,
        ids: &[Id],
        capacities: &[u64],
        quotas: &[u64],
        mode: BuildMode,
        shard_cfg: ShardConfig,
    ) -> Result<ShardedPastNetwork<T>, WindowTooWide>
    where
        T: Clone + Send,
    {
        assert!(!ids.is_empty());
        assert_eq!(ids.len(), capacities.len());
        assert_eq!(ids.len(), quotas.len());
        let mut broker = Broker::new(&seed.to_be_bytes());
        let mk_app = |broker: &mut Broker, i: usize| {
            let card =
                broker.issue_card(format!("card-{i:08}").as_bytes(), quotas[i], capacities[i]);
            PastApp::new(past_cfg, card, capacities[i], broker)
        };
        let sim = match mode {
            BuildMode::ProtocolJoins => {
                let mut sim = ShardedPastrySim::new_sharded(topo, pastry_cfg, seed, shard_cfg)?;
                sim.build_by_joins(ids, |i| mk_app(&mut broker, i), 8);
                sim
            }
            BuildMode::Static => static_build_sharded(
                topo,
                pastry_cfg,
                seed,
                ids,
                |i| mk_app(&mut broker, i),
                4,
                shard_cfg,
            )?,
        };
        Ok(PastNetwork {
            sim,
            broker,
            past_cfg,
            next_op: 1,
        })
    }
}

impl<T, B> PastNetwork<T, B>
where
    T: Topology,
    B: SimBackend<PastryNode<PastApp>, Topo = T>,
{
    /// Allocates the next operation id (always, so runs with tracing on
    /// and off stay event-for-event identical).
    fn alloc_op(&mut self) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        op
    }

    /// The PAST parameters in force.
    pub fn past_cfg(&self) -> PastConfig {
        self.past_cfg
    }

    /// Arms a client-side retransmission timer for `op` when the retry
    /// layer is configured (no-op otherwise).
    fn arm_request_timer(&mut self, client: Addr, op: RetryOp) {
        let Some(delay) = self.past_cfg.request_timeout_us else {
            return;
        };
        let token = self.sim.engine.node_mut(client).app.register_retry(op);
        self.sim
            .engine
            .arm_timer(client, delay, APP_TIMER_BASE + token);
    }

    /// Client operation: insert a file with replication `k`.
    ///
    /// Returns the request id; completion arrives as
    /// [`PastOut::InsertOk`] / [`PastOut::InsertFailed`] from [`Self::run`].
    pub fn insert(
        &mut self,
        client: Addr,
        name: &str,
        content: ContentRef,
        k: u8,
    ) -> Result<u64, CardError> {
        let now = self.sim.engine.now().as_micros();
        let op = self.alloc_op();
        let (request_id, cert) = self
            .sim
            .engine
            .node_mut(client)
            .app
            .begin_insert(name, content, k, now, op)?;
        self.sim.engine.tracer_mut().op_start(
            now,
            op,
            client,
            "insert",
            cert.file_id.routing_id().0,
            u32::from(k),
        );
        self.arm_request_timer(client, RetryOp::Insert(cert.file_id));
        self.sim.route(
            client,
            cert.file_id.routing_id(),
            PastMsg::Insert {
                cert,
                content,
                client,
                op,
            },
        );
        Ok(request_id)
    }

    /// Client operation: look up a file.
    pub fn lookup(&mut self, client: Addr, file_id: FileId) {
        let now = self.sim.engine.now().as_micros();
        let op = self.alloc_op();
        self.sim
            .engine
            .node_mut(client)
            .app
            .begin_lookup(file_id, now, op);
        self.sim
            .engine
            .tracer_mut()
            .op_start(now, op, client, "lookup", file_id.routing_id().0, 1);
        self.arm_request_timer(client, RetryOp::Lookup(file_id));
        self.sim.route(
            client,
            file_id.routing_id(),
            PastMsg::Lookup {
                file_id,
                client,
                path: Vec::new(),
                redirected: false,
                op,
            },
        );
    }

    /// Client operation: reclaim a file's storage.
    pub fn reclaim(&mut self, client: Addr, file_id: FileId) {
        let now = self.sim.engine.now().as_micros();
        let op = self.alloc_op();
        let rcert = self
            .sim
            .engine
            .node_mut(client)
            .app
            .begin_reclaim(file_id, op);
        self.sim.engine.tracer_mut().op_start(
            now,
            op,
            client,
            "reclaim",
            file_id.routing_id().0,
            1,
        );
        self.arm_request_timer(client, RetryOp::Reclaim(file_id));
        self.sim.route(
            client,
            file_id.routing_id(),
            PastMsg::Reclaim { rcert, client, op },
        );
    }

    /// Audits `target`'s possession of `file_id` (challenge–response).
    ///
    /// `content_hash` is the expected content commitment from the file's
    /// certificate.
    pub fn audit(
        &mut self,
        auditor: Addr,
        target: Addr,
        file_id: FileId,
        content_hash: Digest256,
        nonce: u64,
    ) {
        self.sim
            .engine
            .node_mut(auditor)
            .app
            .begin_audit(file_id, content_hash, nonce);
        self.sim.engine.inject(
            auditor,
            target,
            PastryMsg::AppDirect {
                payload: PastMsg::AuditChallenge { file_id, nonce },
            },
            0,
        );
    }

    /// Runs the network to quiescence and returns application events.
    pub fn run(&mut self) -> Vec<PastEvent> {
        self.sim.engine.run_until_quiet(50_000_000);
        let events = self.sim.drain_app_outputs();
        self.sample_series(&events);
        events
    }

    /// Flight-recorder storage samplers: operation outcomes counted at
    /// each event's own simulated time, plus store / cache / quota
    /// gauges at the quiesced clock. Everything derives from drained
    /// events and end-of-run state, both shard-count invariant, so the
    /// sampled series is too. No-op without an attached series.
    fn sample_series(&mut self, events: &[PastEvent]) {
        if !self.sim.engine.tracer().series_enabled() {
            return;
        }
        let (used, cap, _) = self.utilization();
        let mut cache_used = 0u64;
        for a in self.sim.engine.live_addrs() {
            cache_used += self.sim.engine.node(a).app.store.cache.used();
        }
        let mut headroom = 0u64;
        for a in 0..self.sim.engine.len() {
            headroom += self.sim.engine.node(a).app.card.quota_remaining();
        }
        let now = self.sim.engine.now().as_micros();
        let Some(s) = self.sim.engine.tracer_mut().series_mut() else {
            return;
        };
        for (t, _, out) in events {
            let t = t.as_micros();
            match out {
                PastOut::InsertOk { .. } => s.bump(t, "insert_ok", 1),
                PastOut::InsertFailed { .. } => s.bump(t, "insert_failed", 1),
                PastOut::LookupOk { from_cache, .. } => {
                    s.bump(t, "lookup_ok", 1);
                    if *from_cache {
                        s.bump(t, "cache_hits", 1);
                    }
                }
                PastOut::LookupFailed { .. } => s.bump(t, "lookup_failed", 1),
                PastOut::ReclaimCredited { .. } => s.bump(t, "reclaim_ok", 1),
                PastOut::ReclaimDenied { .. } | PastOut::ReclaimFailed { .. } => {
                    s.bump(t, "reclaim_failed", 1)
                }
                _ => {}
            }
        }
        s.gauge(now, "store_used", used);
        s.gauge(now, "store_capacity", cap);
        s.gauge(now, "cache_used", cache_used);
        s.gauge(now, "quota_headroom", headroom);
    }

    /// Global storage accounting: `(used, capacity, utilization)` over
    /// live nodes.
    pub fn utilization(&self) -> (u64, u64, f64) {
        let mut used = 0;
        let mut cap = 0;
        for a in self.sim.engine.live_addrs() {
            let st = &self.sim.engine.node(a).app.store;
            used += st.used();
            cap += st.capacity();
        }
        let frac = if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        };
        (used, cap, frac)
    }

    /// Captures the whole system's state for invariant checking.
    ///
    /// Meant to be called at a quiesce point (after [`Self::run`]), when
    /// no protocol traffic is in flight.
    pub fn snapshot(&self) -> PastSnapshot {
        let overlay = self.sim.snapshot_overlay();
        let stores = self
            .sim
            .engine
            .live_addrs()
            .into_iter()
            .map(|a| {
                let st = &self.sim.engine.node(a).app.store;
                StoreSnapshot {
                    addr: a,
                    used: st.used(),
                    capacity: st.capacity(),
                    cache_used: st.cache.used(),
                    files: st
                        .files()
                        .map(|(id, f)| FileSnapshot {
                            file_id: *id,
                            size: f.cert.size,
                            owner: f.cert.owner.card_key.to_bytes(),
                            diverted: f.kind == ReplicaKind::Diverted,
                        })
                        .collect(),
                    cached: st.cache.entries().map(|(id, s)| (*id, s)).collect(),
                    pointers: st.pointers().map(|(id, h)| (*id, h)).collect(),
                }
            })
            .collect();
        let cards = (0..self.sim.engine.len())
            .map(|a| {
                let app = &self.sim.engine.node(a).app;
                CardSnapshot {
                    addr: a,
                    card_key: app.card.public().to_bytes(),
                    quota_issued: app.card.quota_issued(),
                    quota_remaining: app.card.quota_remaining(),
                    debited_total: app.card.debited_total(),
                    credited_total: app.card.credited_total(),
                    pending_insert_bytes: app.pending_insert_bytes(),
                }
            })
            .collect();
        PastSnapshot {
            overlay,
            stores,
            cards,
        }
    }

    /// Live nodes currently holding a replica of `file_id` (ground truth
    /// for tests; not a protocol operation).
    pub fn replica_holders(&self, file_id: &FileId) -> Vec<Addr> {
        self.sim
            .engine
            .live_addrs()
            .into_iter()
            .filter(|&a| self.sim.engine.node(a).app.store.get(file_id).is_some())
            .collect()
    }

    /// Live nodes holding `file_id` in cache only.
    pub fn cache_holders(&self, file_id: &FileId) -> Vec<Addr> {
        self.sim
            .engine
            .live_addrs()
            .into_iter()
            .filter(|&a| {
                let st = &self.sim.engine.node(a).app.store;
                st.get(file_id).is_none() && st.cache.contains(file_id)
            })
            .collect()
    }
}
