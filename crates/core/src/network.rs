//! High-level PAST network API: the entry point examples and experiments
//! drive.
//!
//! Wraps a Pastry overlay whose application is [`PastApp`] plus the broker
//! that issued every node's smartcard, and exposes the three client
//! operations of the paper (insert / lookup / reclaim) along with audits
//! and whole-system accounting.

use crate::broker::Broker;
use crate::fileid::{ContentRef, FileId};
use crate::msg::PastMsg;
use crate::node::{PastApp, PastConfig, PastOut};
use crate::smartcard::CardError;
use past_crypto::Digest256;
use past_netsim::{Addr, SimTime, Topology};
use past_pastry::{static_build, Config as PastryConfig, Id, PastryMsg, PastrySim};

/// A timestamped application event.
pub type PastEvent = (SimTime, Addr, PastOut);

/// A complete PAST deployment: overlay + broker.
pub struct PastNetwork<T: Topology> {
    /// The underlying overlay simulation.
    pub sim: PastrySim<PastApp, T>,
    /// The broker that issued all smartcards.
    pub broker: Broker,
    past_cfg: PastConfig,
}

/// How to construct the overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildMode {
    /// Sequential protocol joins (accurate; O(N log N) messages).
    ProtocolJoins,
    /// Static state construction (fast; for very large networks).
    Static,
}

impl<T: Topology> PastNetwork<T> {
    /// Builds an `n`-node PAST network.
    ///
    /// Node `i` gets id `ids[i]`, storage capacity `capacities[i]`, and a
    /// smartcard with usage quota `quotas[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length or are empty.
    pub fn build(
        topo: T,
        pastry_cfg: PastryConfig,
        past_cfg: PastConfig,
        seed: u64,
        ids: &[Id],
        capacities: &[u64],
        quotas: &[u64],
        mode: BuildMode,
    ) -> PastNetwork<T> {
        assert!(!ids.is_empty());
        assert_eq!(ids.len(), capacities.len());
        assert_eq!(ids.len(), quotas.len());
        let mut broker = Broker::new(&seed.to_be_bytes());
        let mk_app = |broker: &mut Broker, i: usize| {
            let card =
                broker.issue_card(format!("card-{i:08}").as_bytes(), quotas[i], capacities[i]);
            PastApp::new(past_cfg, card, capacities[i], broker)
        };
        let sim = match mode {
            BuildMode::ProtocolJoins => {
                let mut sim = PastrySim::new(topo, pastry_cfg, seed);
                sim.build_by_joins(ids, |i| mk_app(&mut broker, i), 8);
                sim
            }
            BuildMode::Static => {
                static_build(topo, pastry_cfg, seed, ids, |i| mk_app(&mut broker, i), 4)
            }
        };
        PastNetwork {
            sim,
            broker,
            past_cfg,
        }
    }

    /// The PAST parameters in force.
    pub fn past_cfg(&self) -> PastConfig {
        self.past_cfg
    }

    /// Client operation: insert a file with replication `k`.
    ///
    /// Returns the request id; completion arrives as
    /// [`PastOut::InsertOk`] / [`PastOut::InsertFailed`] from [`Self::run`].
    pub fn insert(
        &mut self,
        client: Addr,
        name: &str,
        content: ContentRef,
        k: u8,
    ) -> Result<u64, CardError> {
        let now = self.sim.engine.now().as_micros();
        let (request_id, cert) = self
            .sim
            .engine
            .node_mut(client)
            .app
            .begin_insert(name, content, k, now)?;
        self.sim.route(
            client,
            cert.file_id.routing_id(),
            PastMsg::Insert {
                cert,
                content,
                client,
            },
        );
        Ok(request_id)
    }

    /// Client operation: look up a file.
    pub fn lookup(&mut self, client: Addr, file_id: FileId) {
        let now = self.sim.engine.now().as_micros();
        self.sim
            .engine
            .node_mut(client)
            .app
            .begin_lookup(file_id, now);
        self.sim.route(
            client,
            file_id.routing_id(),
            PastMsg::Lookup {
                file_id,
                client,
                path: Vec::new(),
                redirected: false,
            },
        );
    }

    /// Client operation: reclaim a file's storage.
    pub fn reclaim(&mut self, client: Addr, file_id: FileId) {
        let rcert = self.sim.engine.node_mut(client).app.begin_reclaim(file_id);
        self.sim.route(
            client,
            file_id.routing_id(),
            PastMsg::Reclaim { rcert, client },
        );
    }

    /// Audits `target`'s possession of `file_id` (challenge–response).
    ///
    /// `content_hash` is the expected content commitment from the file's
    /// certificate.
    pub fn audit(
        &mut self,
        auditor: Addr,
        target: Addr,
        file_id: FileId,
        content_hash: Digest256,
        nonce: u64,
    ) {
        self.sim
            .engine
            .node_mut(auditor)
            .app
            .begin_audit(file_id, content_hash, nonce);
        self.sim.engine.inject(
            auditor,
            target,
            PastryMsg::AppDirect {
                payload: PastMsg::AuditChallenge { file_id, nonce },
            },
            0,
        );
    }

    /// Runs the network to quiescence and returns application events.
    pub fn run(&mut self) -> Vec<PastEvent> {
        self.sim.engine.run_until_quiet(50_000_000);
        self.sim.drain_app_outputs()
    }

    /// Global storage accounting: `(used, capacity, utilization)` over
    /// live nodes.
    pub fn utilization(&self) -> (u64, u64, f64) {
        let mut used = 0;
        let mut cap = 0;
        for a in self.sim.engine.live_addrs() {
            let st = &self.sim.engine.node(a).app.store;
            used += st.used();
            cap += st.capacity();
        }
        let frac = if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        };
        (used, cap, frac)
    }

    /// Live nodes currently holding a replica of `file_id` (ground truth
    /// for tests; not a protocol operation).
    pub fn replica_holders(&self, file_id: &FileId) -> Vec<Addr> {
        self.sim
            .engine
            .live_addrs()
            .into_iter()
            .filter(|&a| self.sim.engine.node(a).app.store.get(file_id).is_some())
            .collect()
    }

    /// Live nodes holding `file_id` in cache only.
    pub fn cache_holders(&self, file_id: &FileId) -> Vec<Addr> {
        self.sim
            .engine
            .live_addrs()
            .into_iter()
            .filter(|&a| {
                let st = &self.sim.engine.node(a).app.store;
                st.get(file_id).is_none() && st.cache.contains(file_id)
            })
            .collect()
    }
}
