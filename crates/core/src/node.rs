//! The PAST node application: storage protocol logic on top of Pastry.
//!
//! Implements the paper's three operations — insert (k replicas on the k
//! nodes with nodeIds numerically closest to the fileId), lookup (answered
//! by the first node along the route holding a copy, including cached
//! copies), reclaim (owner-verified storage release) — plus replica
//! diversion for full nodes, file diversion (client re-salting), replica
//! maintenance under churn, cache management, storage audits, and the
//! fault-injection behaviors the security experiments need.

use crate::broker::Broker;
use crate::cert::{FileCertificate, ReclaimCertificate, ReclaimReceipt};
use crate::fileid::{audit_proof, ContentRef, FileId};
use crate::msg::{NackReason, PastMsg};
use crate::smartcard::{CardError, Smartcard};
use crate::storage::{ReplicaKind, Store};
use past_crypto::{Digest256, PublicKey};
use past_netsim::{Addr, OpId};
use past_pastry::{App, AppCtx, Id, NodeHandle, PastryState, RouteEnvelope, RouteInfo};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Tunable PAST parameters.
#[derive(Clone, Copy, Debug)]
pub struct PastConfig {
    /// Default replication factor `k` (the paper's replica-locality
    /// experiment uses 5).
    pub default_k: u8,
    /// Primary-replica acceptance threshold `t_pri`.
    pub t_pri: f64,
    /// Diverted-replica acceptance threshold `t_div`.
    pub t_div: f64,
    /// Insert attempts including the original (file diversion retries
    /// with a fresh salt; "the client retries with a different salt").
    pub max_insert_attempts: u32,
    /// Leaf-set nodes probed during replica diversion before giving up.
    pub divert_candidates: usize,
    /// Master switch for caching.
    pub cache_enabled: bool,
    /// Fraction of a node's free space the cache may occupy.
    pub cache_fraction: f64,
    /// Route-path nodes a serving node pushes a cache copy to.
    pub cache_push: usize,
    /// Cache files passing through on the insert path.
    pub cache_on_insert_path: bool,
    /// Verify signatures end to end. Large storage/caching experiments
    /// (E7, E8) disable this to measure storage policy rather than
    /// big-integer arithmetic; structural checks (content hash vs
    /// certificate, sizes) always run.
    pub crypto_checks: bool,
    /// Client-side request deadline (simulated µs). When set, every
    /// insert / lookup / reclaim arms a retransmission timer so requests
    /// lost to a faulty network are retried with exponential backoff and
    /// eventually surface an explicit failure event — never a silent
    /// hang. `None` (the default) disables the whole retry layer: no
    /// timers, no extra state, bit-identical lossless runs.
    pub request_timeout_us: Option<u64>,
    /// Total transmissions per request (the original plus retries)
    /// before the operation is declared failed. Only consulted when
    /// [`request_timeout_us`] is set.
    ///
    /// [`request_timeout_us`]: PastConfig::request_timeout_us
    pub request_attempts: u32,
}

impl Default for PastConfig {
    fn default() -> PastConfig {
        PastConfig {
            default_k: 5,
            t_pri: 0.1,
            t_div: 0.05,
            max_insert_attempts: 4,
            divert_candidates: 3,
            cache_enabled: true,
            cache_fraction: 1.0,
            cache_push: 1,
            cache_on_insert_path: true,
            crypto_checks: true,
            request_timeout_us: None,
            request_attempts: 4,
        }
    }
}

/// Client-visible protocol outcomes, emitted to the harness.
#[derive(Clone, Debug)]
pub enum PastOut {
    /// All `k` receipts collected.
    InsertOk {
        /// The client-local request id.
        request_id: u64,
        /// The final fileId (may differ from the first attempt's after
        /// file diversion).
        file_id: FileId,
        /// Attempts used (1 = no diversion needed).
        attempts: u32,
        /// Receipts collected.
        receipts: u8,
    },
    /// The insert failed after all attempts.
    InsertFailed {
        /// The client-local request id.
        request_id: u64,
        /// Size of the rejected file.
        size: u64,
        /// Attempts used.
        attempts: u32,
    },
    /// A lookup returned a verified file.
    LookupOk {
        /// The file.
        file_id: FileId,
        /// The node that served it.
        server: Addr,
        /// Whether a cached copy answered.
        from_cache: bool,
        /// When the lookup started (simulated µs).
        started_us: u64,
    },
    /// A lookup failed (miss or bad certificate).
    LookupFailed {
        /// The file.
        file_id: FileId,
    },
    /// A reclaim receipt was credited against the quota.
    ReclaimCredited {
        /// The file.
        file_id: FileId,
        /// Bytes credited.
        freed: u64,
    },
    /// A reclaim was refused (requester is not the owner).
    ReclaimDenied {
        /// The file.
        file_id: FileId,
    },
    /// A reclaim got no response after all retries (retry layer only).
    ReclaimFailed {
        /// The file.
        file_id: FileId,
    },
    /// An audited node proved possession.
    AuditPassed {
        /// The audited file.
        file_id: FileId,
        /// The prover.
        prover: Addr,
    },
    /// An audited node failed to prove possession.
    AuditFailed {
        /// The audited file.
        file_id: FileId,
        /// The prover.
        prover: Addr,
    },
}

/// An in-flight client insertion.
struct PendingInsert {
    request_id: u64,
    name: String,
    content: ContentRef,
    cert: FileCertificate,
    k: u8,
    attempts: u32,
    salt: u64,
    receipts: u8,
    receipt_keys: BTreeSet<[u8; 32]>,
    nacks: u32,
    fatal: bool,
    /// Transmissions of this attempt so far (retry layer).
    sends: u32,
    /// Trace attribution for the whole client operation (stable across
    /// file-diversion re-salts and retransmissions).
    op: OpId,
}

/// An in-flight client lookup.
struct PendingLookup {
    started_us: u64,
    sends: u32,
    /// Trace attribution for the operation.
    op: OpId,
}

/// An in-flight client (or internal cleanup) reclaim.
struct PendingReclaim {
    rcert: ReclaimCertificate,
    sends: u32,
    /// Internal reclaims (failed-insert cleanup) fail silently; the
    /// insert already reported its own failure.
    internal: bool,
    /// Trace attribution ([`OpId::NONE`] for internal reclaims).
    op: OpId,
}

/// What a retransmission timer is watching (retry layer).
#[derive(Clone, Copy, Debug)]
pub enum RetryOp {
    /// An insert attempt, by the attempt's fileId.
    Insert(FileId),
    /// A lookup.
    Lookup(FileId),
    /// A reclaim.
    Reclaim(FileId),
}

/// Replica-diversion state at a full primary.
struct DivertState {
    cert: FileCertificate,
    content: ContentRef,
    client: Addr,
    /// The client operation the diversion serves.
    op: OpId,
    /// The candidate probed and not yet answered (retransmissions
    /// re-probe it rather than fanning to fresh candidates).
    current: Addr,
    candidates: Vec<Addr>,
}

/// The PAST application state of one node.
pub struct PastApp {
    /// PAST parameters.
    pub cfg: PastConfig,
    /// This node's smartcard (storage-node and client roles).
    pub card: Smartcard,
    /// The local store.
    pub store: Store,
    /// The broker's public key (trust anchor).
    pub broker_key: PublicKey,
    /// Fault injection: corrupt insert contents passing through.
    pub corrupts_content: bool,
    /// Fault injection: acknowledge stores without keeping the data
    /// (exposed by random audits).
    pub drops_stored_files: bool,
    /// Fault injection: a malicious root that stores its own copy but
    /// suppresses the k−1 replica fan-out (exposed by missing store
    /// receipts at the client, §2.1).
    pub suppresses_replicas: bool,
    /// BTreeMap, not HashMap: `pending_insert_bytes` iterates it, and
    /// decision-crate iteration must be hash-order-free (rule D3).
    pending_inserts: BTreeMap<FileId, PendingInsert>,
    pending_lookups: HashMap<FileId, PendingLookup>,
    pending_audits: HashMap<FileId, (Digest256, u64)>,
    pending_diverts: HashMap<FileId, DivertState>,
    pending_reclaims: BTreeMap<FileId, PendingReclaim>,
    /// Armed retransmission timers, by timer token (retry layer).
    retry_timers: BTreeMap<u64, RetryOp>,
    next_retry_token: u64,
    /// Failed insert attempts: the storer keys whose receipts were
    /// counted before the attempt concluded. Reclaim receipts from any
    /// *other* storer of these files are quota-suppressed — their share
    /// of the debit was already returned as "unstored" (a copy whose
    /// store receipt the network lost).
    settled: BTreeMap<FileId, BTreeSet<[u8; 32]>>,
    /// Reclaim receipts this node issued, kept to re-acknowledge
    /// retransmitted reclaims for files already freed: `(owner card
    /// key, receipt)`.
    issued_reclaim_receipts: BTreeMap<FileId, ([u8; 32], ReclaimReceipt)>,
    /// Reclaim receipts already processed, by (file, storer): guards
    /// duplicated deliveries even with crypto checks off.
    reclaim_seen: BTreeSet<(FileId, [u8; 32])>,
    next_request_id: u64,
}

type Cx<'a, 'b> = AppCtx<'a, 'b, PastMsg, PastOut>;

impl PastApp {
    /// Creates a node application with the given card and capacity.
    pub fn new(cfg: PastConfig, card: Smartcard, capacity: u64, broker: &Broker) -> PastApp {
        PastApp {
            store: Store::new(capacity, cfg.t_pri, cfg.t_div),
            cfg,
            card,
            broker_key: broker.public(),
            corrupts_content: false,
            drops_stored_files: false,
            suppresses_replicas: false,
            pending_inserts: BTreeMap::new(),
            pending_lookups: HashMap::new(),
            pending_audits: HashMap::new(),
            pending_diverts: HashMap::new(),
            pending_reclaims: BTreeMap::new(),
            retry_timers: BTreeMap::new(),
            next_retry_token: 0,
            settled: BTreeMap::new(),
            issued_reclaim_receipts: BTreeMap::new(),
            reclaim_seen: BTreeSet::new(),
            next_request_id: 0,
        }
    }

    /// True when the client-side retry layer is active.
    fn retry_enabled(&self) -> bool {
        self.cfg.request_timeout_us.is_some()
    }

    /// Registers a retransmission watch and returns the app-timer token
    /// the harness must arm (used from outside an app context; inside
    /// one, use [`Self::arm_retry`]).
    pub fn register_retry(&mut self, op: RetryOp) -> u64 {
        let token = self.next_retry_token;
        self.next_retry_token += 1;
        self.retry_timers.insert(token, op);
        token
    }

    /// Registers a retransmission watch and arms its timer.
    fn arm_retry(&mut self, op: RetryOp, delay_us: u64, cx: &mut Cx) {
        let token = self.register_retry(op);
        cx.set_app_timer(delay_us, token);
    }

    /// Exponential backoff: the base timeout doubled per transmission.
    fn backoff_us(&self, sends: u32) -> u64 {
        let base = self.cfg.request_timeout_us.unwrap_or(0);
        base.saturating_mul(1u64 << sends.saturating_sub(1).min(6))
    }

    // --- Client-side entry points (invoked by the harness) -------------

    /// Issues a certificate and registers the pending insert.
    ///
    /// Returns `(request_id, certificate)`; the caller routes the
    /// [`PastMsg::Insert`] toward the fileId.
    pub fn begin_insert(
        &mut self,
        name: &str,
        content: ContentRef,
        k: u8,
        now_us: u64,
        op: OpId,
    ) -> Result<(u64, FileCertificate), CardError> {
        let salt = 0;
        let cert = self
            .card
            .issue_file_certificate(name, &content, k, salt, now_us)?;
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        self.pending_inserts.insert(
            cert.file_id,
            PendingInsert {
                request_id,
                name: name.to_string(),
                content,
                cert,
                k,
                attempts: 1,
                salt,
                receipts: 0,
                receipt_keys: BTreeSet::new(),
                nacks: 0,
                fatal: false,
                sends: 1,
                op,
            },
        );
        Ok((request_id, cert))
    }

    /// Registers a pending lookup (for latency measurement).
    pub fn begin_lookup(&mut self, file_id: FileId, now_us: u64, op: OpId) {
        self.pending_lookups.insert(
            file_id,
            PendingLookup {
                started_us: now_us,
                sends: 1,
                op,
            },
        );
    }

    /// Issues a reclaim certificate for a file this card owns.
    pub fn begin_reclaim(&mut self, file_id: FileId, op: OpId) -> ReclaimCertificate {
        let rcert = self.card.issue_reclaim_certificate(&file_id);
        if self.retry_enabled() {
            self.pending_reclaims.insert(
                file_id,
                PendingReclaim {
                    rcert,
                    sends: 1,
                    internal: false,
                    op,
                },
            );
        }
        rcert
    }

    /// Registers an expected audit answer before challenging a node.
    pub fn begin_audit(&mut self, file_id: FileId, content_hash: Digest256, nonce: u64) {
        self.pending_audits.insert(file_id, (content_hash, nonce));
    }

    /// Number of outstanding client inserts (for harness draining).
    pub fn pending_insert_count(&self) -> usize {
        self.pending_inserts.len()
    }

    /// Bytes debited for in-flight insertions not yet covered by store
    /// receipts (snapshot/invariant support: quota conservation counts
    /// these as "in flight" rather than stored).
    pub fn pending_insert_bytes(&self) -> u64 {
        self.pending_inserts
            .values()
            .map(|p| (p.k.saturating_sub(p.receipts)) as u64 * p.content.size)
            .sum()
    }

    // --- Internal helpers ----------------------------------------------

    /// The k nodes (self + leaf members) numerically closest to `rid`.
    fn kset(state: &PastryState, rid: Id, k: u8) -> Vec<NodeHandle> {
        let mut v = state.leaf.sorted_by_dist(&rid);
        v.push(state.me);
        v.sort_by_key(|h| (h.id.ring_dist(&rid), h.id.0));
        v.truncate(k.max(1) as usize);
        v
    }

    /// Serves `fid` to `client` if held; optionally pushes cache copies to
    /// route-path nodes. Returns true if served.
    fn reply_file(
        &mut self,
        fid: &FileId,
        client: Addr,
        path: &[Addr],
        op: OpId,
        cx: &mut Cx,
    ) -> bool {
        let me = cx.me();
        let Some((cert, from_cache)) = self.store.serve(fid) else {
            return false;
        };
        cx.send_direct(
            client,
            PastMsg::FileReply {
                cert,
                from_cache,
                op,
            },
        );
        if self.cfg.cache_enabled && self.cfg.cache_push > 0 {
            // "Caches copies of popular files close to interested
            // clients": the earliest path entries are nearest the client.
            for &p in path
                .iter()
                .filter(|&&p| p != client && p != me)
                .take(self.cfg.cache_push)
            {
                cx.send_direct(p, PastMsg::CachePush { cert });
            }
        }
        true
    }

    /// Validates an (insert-time) certificate + content pair.
    fn insert_valid(&self, cert: &FileCertificate, content: &ContentRef) -> bool {
        cert.replication >= 1
            && content.hash == cert.content_hash
            && content.size == cert.size
            && (!self.cfg.crypto_checks || cert.verify(&self.broker_key))
    }

    /// Attempts to store a primary replica, diverting on refusal.
    fn try_store_primary(
        &mut self,
        cert: FileCertificate,
        content: ContentRef,
        client: Option<Addr>,
        op: OpId,
        state: &PastryState,
        cx: &mut Cx,
    ) {
        if !self.insert_valid(&cert, &content) {
            if let Some(c) = client {
                cx.send_direct(
                    c,
                    PastMsg::InsertNack {
                        file_id: cert.file_id,
                        reason: NackReason::BadCertificate,
                        op,
                    },
                );
            }
            return;
        }
        if self.drops_stored_files {
            // Cheat: acknowledge without storing (random audits expose
            // this).
            if let Some(c) = client {
                let receipt = self
                    .card
                    .issue_store_receipt(&cert.file_id, cert.size, false);
                cx.send_direct(c, PastMsg::StoreAck { receipt, op });
            }
            return;
        }
        if client.is_none() {
            // Maintenance copy: accept it only if this node is in the
            // file's k-set by its own routing state; otherwise fan-out
            // from peers with stale leaf sets would over-replicate the
            // file past k (invariant I5).
            let rid = cert.file_id.routing_id();
            let me = cx.me();
            let in_kset = Self::kset(state, rid, cert.replication)
                .iter()
                .any(|h| h.addr == me);
            if !in_kset {
                return;
            }
        }
        if let Some(f) = self.store.get(&cert.file_id) {
            // Idempotent: re-acknowledge. An identical certificate is the
            // same issuance — a retransmission of the very insert that
            // stored this copy — so the ack reports the bytes as stored
            // (the client deduplicates by storer key either way). A
            // different certificate is a distinct insert of an existing
            // file: that copy consumed nothing new, reported as 0.
            let same_issuance = self.retry_enabled() && f.cert == cert;
            if let Some(c) = client {
                let stored = if same_issuance { cert.size } else { 0 };
                let receipt = self.card.issue_store_receipt(&cert.file_id, stored, false);
                cx.send_direct(c, PastMsg::StoreAck { receipt, op });
            }
            return;
        }
        if let Some(c) = client {
            if self.retry_enabled() {
                // A retransmitted insert must not restart diversion: it
                // would place a second diverted copy elsewhere. Re-probe
                // the in-flight candidate, or the recorded holder.
                if let Some(st) = self.pending_diverts.get(&cert.file_id) {
                    if st.cert == cert {
                        let (current, content) = (st.current, st.content);
                        let me = cx.me();
                        cx.send_direct(
                            current,
                            PastMsg::DivertStore {
                                cert,
                                content,
                                primary: me,
                                client: c,
                                op,
                            },
                        );
                        return;
                    }
                }
                if let Some(holder) = self.store.pointer(&cert.file_id) {
                    let me = cx.me();
                    cx.send_direct(
                        holder,
                        PastMsg::DivertStore {
                            cert,
                            content,
                            primary: me,
                            client: c,
                            op,
                        },
                    );
                    return;
                }
            }
        }
        match self.store.insert(&cert, ReplicaKind::Primary) {
            Ok(()) => {
                let (now, me) = (cx.now_us(), cx.me());
                cx.tracer()
                    .replica_stored(now, op, me, cert.file_id.routing_id().0, false);
                if let Some(c) = client {
                    let receipt = self
                        .card
                        .issue_store_receipt(&cert.file_id, cert.size, false);
                    cx.send_direct(c, PastMsg::StoreAck { receipt, op });
                }
            }
            Err(_) => {
                if let Some(c) = client {
                    self.start_diversion(cert, content, c, op, state, cx);
                }
                // Maintenance copies are best-effort: no diversion.
            }
        }
    }

    /// Begins replica diversion: probe leaf-set nodes outside the k-set.
    fn start_diversion(
        &mut self,
        cert: FileCertificate,
        content: ContentRef,
        client: Addr,
        op: OpId,
        state: &PastryState,
        cx: &mut Cx,
    ) {
        let rid = cert.file_id.routing_id();
        let kset_addrs: HashSet<Addr> = Self::kset(state, rid, cert.replication)
            .iter()
            .map(|h| h.addr)
            .collect();
        let mut candidates: Vec<Addr> = state
            .leaf
            .members()
            .map(|h| h.addr)
            .filter(|a| !kset_addrs.contains(a) && *a != cx.me())
            .collect();
        // Fisher-Yates shuffle so repeated diversions spread load.
        for i in (1..candidates.len()).rev() {
            let j = cx.rng().random_range(0..=i);
            candidates.swap(i, j);
        }
        candidates.truncate(self.cfg.divert_candidates);
        if candidates.is_empty() {
            cx.send_direct(
                client,
                PastMsg::InsertNack {
                    file_id: cert.file_id,
                    reason: NackReason::StoreRefused,
                    op,
                },
            );
            return;
        }
        let first = candidates.remove(0);
        self.pending_diverts.insert(
            cert.file_id,
            DivertState {
                cert,
                content,
                client,
                op,
                current: first,
                candidates,
            },
        );
        cx.send_direct(
            first,
            PastMsg::DivertStore {
                cert,
                content,
                primary: cx.me(),
                client,
                op,
            },
        );
    }

    /// Probes the next diversion candidate, or gives up with a nack.
    fn try_next_divert(&mut self, fid: FileId, cx: &mut Cx) {
        let Some(st) = self.pending_diverts.get_mut(&fid) else {
            return;
        };
        if st.candidates.is_empty() {
            let (client, op) = (st.client, st.op);
            self.pending_diverts.remove(&fid);
            cx.send_direct(
                client,
                PastMsg::InsertNack {
                    file_id: fid,
                    reason: NackReason::StoreRefused,
                    op,
                },
            );
            return;
        }
        let next = st.candidates.remove(0);
        st.current = next;
        let (cert, content, client, op) = (st.cert, st.content, st.client, st.op);
        let me = cx.me();
        cx.send_direct(
            next,
            PastMsg::DivertStore {
                cert,
                content,
                primary: me,
                client,
                op,
            },
        );
    }

    /// Records an insert response at the client and decides the attempt.
    ///
    /// A receipt is `(storer card key, bytes stored)`; `None` is a nack.
    fn note_insert_response(
        &mut self,
        fid: FileId,
        receipt: Option<([u8; 32], u64)>,
        fatal: bool,
        cx: &mut Cx,
    ) {
        let Some(p) = self.pending_inserts.get_mut(&fid) else {
            return;
        };
        let mut credit = 0u64;
        match receipt {
            Some((key, stored)) => {
                if p.receipt_keys.insert(key) {
                    p.receipts += 1;
                    if stored == 0 {
                        // The holder already had the file (duplicate
                        // insert): this copy consumed no new storage, so
                        // its share of the certificate's debit is
                        // returned (quota conservation, invariant I5).
                        credit = p.content.size;
                    }
                }
            }
            None => {
                p.nacks += 1;
                p.fatal |= fatal;
            }
        }
        let complete = p.receipts >= p.k;
        let failed = p.fatal || p.receipts as u32 + p.nacks >= p.k as u32;
        if credit > 0 {
            self.card.credit(credit);
        }
        if complete {
            let Some(p) = self.pending_inserts.remove(&fid) else {
                return;
            };
            let (now, me) = (cx.now_us(), cx.me());
            cx.tracer()
                .op_end(now, p.op, me, "insert", true, u32::from(p.receipts));
            cx.emit(PastOut::InsertOk {
                request_id: p.request_id,
                file_id: fid,
                attempts: p.attempts,
                receipts: p.receipts,
            });
        } else if failed {
            self.conclude_failed_attempt(fid, cx);
        }
    }

    /// An attempt failed: credit unstored quota, reclaim partial copies,
    /// and retry with a fresh salt (file diversion) or give up.
    fn conclude_failed_attempt(&mut self, fid: FileId, cx: &mut Cx) {
        let Some(p) = self.pending_inserts.remove(&fid) else {
            return;
        };
        let retrying = self.retry_enabled();
        // Unstored copies never consumed storage: credit their debit.
        let unstored = (p.k - p.receipts) as u64 * p.content.size;
        self.card.credit(unstored);
        // Stored partial copies are reclaimed; their receipts credit
        // later. Under loss a holder may have stored a copy whose receipt
        // vanished: reclaim unconditionally, and record which storers'
        // receipts were counted — only those reclaim credits may apply,
        // the rest were just returned in the "unstored" credit above.
        if p.receipts > 0 || retrying {
            if retrying {
                self.settled
                    .insert(fid, p.receipt_keys.iter().copied().collect());
            }
            let rcert = self.card.issue_reclaim_certificate(&fid);
            let me = cx.me();
            // Cleanup reclaims are not client operations: no attribution.
            cx.route(
                fid.routing_id(),
                PastMsg::Reclaim {
                    rcert,
                    client: me,
                    op: OpId::NONE,
                },
            );
            if retrying {
                self.pending_reclaims.insert(
                    fid,
                    PendingReclaim {
                        rcert,
                        sends: 1,
                        internal: true,
                        op: OpId::NONE,
                    },
                );
                let delay = self.backoff_us(1);
                self.arm_retry(RetryOp::Reclaim(fid), delay, cx);
            }
        }
        if p.attempts < self.cfg.max_insert_attempts {
            let salt = p.salt + 1;
            match self
                .card
                .issue_file_certificate(&p.name, &p.content, p.k, salt, cx.now_us())
            {
                Ok(cert) => {
                    let new_fid = cert.file_id;
                    self.pending_inserts.insert(
                        new_fid,
                        PendingInsert {
                            request_id: p.request_id,
                            name: p.name,
                            content: p.content,
                            cert,
                            k: p.k,
                            attempts: p.attempts + 1,
                            salt,
                            receipts: 0,
                            receipt_keys: BTreeSet::new(),
                            nacks: 0,
                            fatal: false,
                            sends: 1,
                            op: p.op,
                        },
                    );
                    let (now, me) = (cx.now_us(), cx.me());
                    cx.tracer()
                        .op_retry(now, p.op, me, "insert", p.attempts + 1);
                    cx.route(
                        new_fid.routing_id(),
                        PastMsg::Insert {
                            cert,
                            content: p.content,
                            client: me,
                            op: p.op,
                        },
                    );
                    if retrying {
                        let delay = self.backoff_us(1);
                        self.arm_retry(RetryOp::Insert(new_fid), delay, cx);
                    }
                }
                Err(_) => {
                    let (now, me) = (cx.now_us(), cx.me());
                    cx.tracer()
                        .op_end(now, p.op, me, "insert", false, u32::from(p.receipts));
                    cx.emit(PastOut::InsertFailed {
                        request_id: p.request_id,
                        size: p.content.size,
                        attempts: p.attempts,
                    });
                }
            }
        } else {
            let (now, me) = (cx.now_us(), cx.me());
            cx.tracer()
                .op_end(now, p.op, me, "insert", false, u32::from(p.receipts));
            cx.emit(PastOut::InsertFailed {
                request_id: p.request_id,
                size: p.content.size,
                attempts: p.attempts,
            });
        }
    }

    /// A retransmission timer fired for an insert attempt: retransmit
    /// the same certificate (holders are idempotent) or conclude.
    fn retry_insert(&mut self, fid: FileId, cx: &mut Cx) {
        let attempts = self.cfg.request_attempts;
        let Some(p) = self.pending_inserts.get_mut(&fid) else {
            return; // already completed
        };
        if p.sends >= attempts {
            self.conclude_failed_attempt(fid, cx);
            return;
        }
        p.sends += 1;
        // Responses count per transmission round: stale nacks from an
        // earlier round must not conclude the fresh one early.
        p.nacks = 0;
        p.fatal = false;
        let sends = p.sends;
        let (cert, content, op) = (p.cert, p.content, p.op);
        let (now, me) = (cx.now_us(), cx.me());
        cx.tracer().op_retry(now, op, me, "insert", sends);
        cx.route(
            fid.routing_id(),
            PastMsg::Insert {
                cert,
                content,
                client: me,
                op,
            },
        );
        let delay = self.backoff_us(sends);
        self.arm_retry(RetryOp::Insert(fid), delay, cx);
    }

    /// A retransmission timer fired for a lookup: retransmit or fail.
    fn retry_lookup(&mut self, fid: FileId, cx: &mut Cx) {
        let Some(p) = self.pending_lookups.get_mut(&fid) else {
            return;
        };
        if p.sends >= self.cfg.request_attempts {
            let op = p.op;
            self.pending_lookups.remove(&fid);
            let (now, me) = (cx.now_us(), cx.me());
            cx.tracer().op_end(now, op, me, "lookup", false, 0);
            cx.emit(PastOut::LookupFailed { file_id: fid });
            return;
        }
        p.sends += 1;
        let (sends, op) = (p.sends, p.op);
        let (now, me) = (cx.now_us(), cx.me());
        cx.tracer().op_retry(now, op, me, "lookup", sends);
        cx.route(
            fid.routing_id(),
            PastMsg::Lookup {
                file_id: fid,
                client: me,
                path: Vec::new(),
                redirected: false,
                op,
            },
        );
        let delay = self.backoff_us(sends);
        self.arm_retry(RetryOp::Lookup(fid), delay, cx);
    }

    /// A retransmission timer fired for a reclaim: retransmit or fail.
    fn retry_reclaim(&mut self, fid: FileId, cx: &mut Cx) {
        let Some(p) = self.pending_reclaims.get_mut(&fid) else {
            return;
        };
        if p.sends >= self.cfg.request_attempts {
            let (internal, op) = (p.internal, p.op);
            self.pending_reclaims.remove(&fid);
            if !internal {
                let (now, me) = (cx.now_us(), cx.me());
                cx.tracer().op_end(now, op, me, "reclaim", false, 0);
                cx.emit(PastOut::ReclaimFailed { file_id: fid });
            }
            return;
        }
        p.sends += 1;
        let (sends, rcert, op) = (p.sends, p.rcert, p.op);
        let (now, me) = (cx.now_us(), cx.me());
        cx.tracer().op_retry(now, op, me, "reclaim", sends);
        cx.route(
            fid.routing_id(),
            PastMsg::Reclaim {
                rcert,
                client: me,
                op,
            },
        );
        let delay = self.backoff_us(sends);
        self.arm_retry(RetryOp::Reclaim(fid), delay, cx);
    }

    /// Handles a reclaim at a holder; roots also propagate to the k-set.
    fn handle_reclaim(
        &mut self,
        rcert: ReclaimCertificate,
        client: Addr,
        op: OpId,
        propagate: bool,
        state: &PastryState,
        cx: &mut Cx,
    ) {
        let fid = rcert.file_id;
        if self.cfg.crypto_checks && !rcert.verify(&self.broker_key) {
            cx.send_direct(client, PastMsg::ReclaimDenied { file_id: fid, op });
            return;
        }
        let mut replication = self.cfg.default_k;
        // Peek at the diversion pointer before `remove`, which drops it.
        let diverted_to = self.store.pointer(&fid);
        if let Some(f) = self.store.get(&fid) {
            // "The smartcard of a storage node first verifies that the
            // signature in the reclaim certificate matches that in the
            // file certificate stored with the file."
            if f.cert.owner.card_key != rcert.owner.card_key {
                cx.send_direct(client, PastMsg::ReclaimDenied { file_id: fid, op });
                return;
            }
            replication = f.cert.replication;
            let freed = self.store.remove(&fid);
            let receipt = self.card.issue_reclaim_receipt(&fid, freed);
            if self.retry_enabled() {
                // Keep the receipt: if this ack is lost, the owner's
                // retransmitted reclaim finds the file already gone and
                // must still be answered, or its quota stays debited for
                // storage nobody holds.
                self.issued_reclaim_receipts
                    .insert(fid, (rcert.owner.card_key.to_bytes(), receipt));
            }
            cx.send_direct(client, PastMsg::ReclaimAck { receipt, op });
        } else if self.retry_enabled() {
            if let Some((owner, receipt)) = self.issued_reclaim_receipts.get(&fid) {
                if *owner == rcert.owner.card_key.to_bytes() {
                    // Retransmission of a reclaim already honored: re-ack
                    // with the cached receipt (the client deduplicates).
                    cx.send_direct(
                        client,
                        PastMsg::ReclaimAck {
                            receipt: *receipt,
                            op,
                        },
                    );
                }
            }
        }
        // Any cached copy must go even when no replica is held here:
        // serving a reclaimed file from the cache would resurrect it.
        self.store.cache.invalidate(&fid);
        self.store.remove_pointer(&fid);
        if let Some(holder) = diverted_to {
            cx.send_direct(holder, PastMsg::ReclaimFree { rcert, client, op });
        }
        if propagate {
            let me = cx.me();
            for h in Self::kset(state, fid.routing_id(), replication) {
                if h.addr != me {
                    cx.send_direct(h.addr, PastMsg::ReclaimFree { rcert, client, op });
                }
            }
        }
    }
}

impl App for PastApp {
    type Payload = PastMsg;
    type Out = PastOut;

    fn deliver(
        &mut self,
        state: &PastryState,
        _key: Id,
        payload: PastMsg,
        _info: RouteInfo,
        cx: &mut Cx,
    ) {
        match payload {
            PastMsg::Insert {
                cert,
                content,
                client,
                op,
            } => {
                if !self.insert_valid(&cert, &content) {
                    cx.send_direct(
                        client,
                        PastMsg::InsertNack {
                            file_id: cert.file_id,
                            reason: NackReason::BadCertificate,
                            op,
                        },
                    );
                    return;
                }
                let rid = cert.file_id.routing_id();
                let kset = Self::kset(state, rid, cert.replication);
                let me = cx.me();
                let mut covered = 0u8;
                let mut store_here = false;
                for h in &kset {
                    if h.addr == me {
                        store_here = true;
                    } else if !self.suppresses_replicas {
                        cx.send_direct(
                            h.addr,
                            PastMsg::Replicate {
                                cert,
                                content,
                                client: Some(client),
                                op,
                            },
                        );
                    }
                    covered += 1;
                }
                // Network smaller than k: the client must learn of the
                // shortfall to decide the attempt.
                for _ in covered..cert.replication {
                    cx.send_direct(
                        client,
                        PastMsg::InsertNack {
                            file_id: cert.file_id,
                            reason: NackReason::InsufficientNodes,
                            op,
                        },
                    );
                }
                if store_here {
                    self.try_store_primary(cert, content, Some(client), op, state, cx);
                }
            }
            PastMsg::Lookup {
                file_id,
                client,
                path,
                redirected: _,
                op,
            } => {
                if self.reply_file(&file_id, client, &path, op, cx) {
                    return;
                }
                if let Some(holder) = self.store.pointer(&file_id) {
                    cx.send_direct(
                        holder,
                        PastMsg::LookupHop {
                            file_id,
                            client,
                            path,
                            terminal: true,
                            op,
                        },
                    );
                    return;
                }
                // The root may lack the file (e.g. it joined recently):
                // ask the next-closest k-set member.
                let kset = Self::kset(state, file_id.routing_id(), self.cfg.default_k);
                let me = cx.me();
                if let Some(other) = kset.iter().find(|h| h.addr != me) {
                    cx.send_direct(
                        other.addr,
                        PastMsg::LookupHop {
                            file_id,
                            client,
                            path,
                            terminal: true,
                            op,
                        },
                    );
                } else {
                    cx.send_direct(client, PastMsg::LookupMiss { file_id, op });
                }
            }
            PastMsg::Reclaim { rcert, client, op } => {
                self.handle_reclaim(rcert, client, op, true, state, cx);
            }
            // Direct-only messages routed here would be a logic error;
            // ignore them defensively.
            _ => {}
        }
    }

    fn forward(
        &mut self,
        _state: &PastryState,
        env: &mut RouteEnvelope<PastMsg>,
        _next: NodeHandle,
        cx: &mut Cx,
    ) -> bool {
        match &mut env.payload {
            PastMsg::Insert { cert, content, .. } => {
                if self.corrupts_content {
                    // A faulty/malicious intermediate flips content bits;
                    // the storing node detects the mismatch against the
                    // certificate (§2.1).
                    let mut h = content.hash;
                    h.0[0] ^= 0xff;
                    content.hash = h;
                }
                if self.cfg.cache_enabled && self.cfg.cache_on_insert_path {
                    self.store.offer_cache(cert, self.cfg.cache_fraction);
                }
                true
            }
            PastMsg::Lookup {
                file_id,
                client,
                path,
                redirected,
                op,
            } => {
                let (fid, client, op) = (*file_id, *client, *op);
                if self.store.can_serve(&fid) {
                    let path = path.clone();
                    self.reply_file(&fid, client, &path, op, cx);
                    return false;
                }
                // "Messages have a tendency to first reach a node, among
                // the k nodes that store the requested file, that is near
                // the client": once this node's leaf set covers the
                // fileId it knows the whole k-set, and — being itself
                // near the client thanks to route locality — it redirects
                // to its proximity-nearest replica holder rather than
                // letting the route terminate at the numeric root.
                let rid = fid.routing_id();
                if !*redirected && _state.leaf.covers(&rid) {
                    let kset = Self::kset(_state, rid, self.cfg.default_k);
                    let me = cx.me();
                    let nearest = kset
                        .iter()
                        .filter(|h| h.addr != me)
                        .min_by_key(|h| cx.delay_to(h.addr));
                    if let Some(target) = nearest {
                        let mut path = path.clone();
                        if path.len() < 8 {
                            path.push(me);
                        }
                        cx.send_direct(
                            target.addr,
                            PastMsg::LookupHop {
                                file_id: fid,
                                client,
                                path,
                                terminal: false,
                                op,
                            },
                        );
                        return false;
                    }
                }
                if path.len() < 8 {
                    path.push(cx.me());
                }
                true
            }
            _ => true,
        }
    }

    fn on_direct(&mut self, state: &PastryState, from: Addr, payload: PastMsg, cx: &mut Cx) {
        match payload {
            PastMsg::Replicate {
                cert,
                content,
                client,
                op,
            } => {
                self.try_store_primary(cert, content, client, op, state, cx);
            }
            PastMsg::DivertStore {
                cert,
                content,
                primary,
                client,
                op,
            } => {
                if self.retry_enabled() {
                    if let Some(f) = self.store.get(&cert.file_id) {
                        if f.cert == cert {
                            // Retransmission of a diversion already
                            // admitted here: re-acknowledge instead of
                            // refusing, or the lost-ack client would
                            // never collect its receipt.
                            let receipt =
                                self.card
                                    .issue_store_receipt(&cert.file_id, cert.size, true);
                            cx.send_direct(client, PastMsg::StoreAck { receipt, op });
                            cx.send_direct(
                                primary,
                                PastMsg::DivertAck {
                                    file_id: cert.file_id,
                                    op,
                                },
                            );
                            return;
                        }
                    }
                }
                let valid = self.insert_valid(&cert, &content);
                let admitted = valid
                    && self.store.get(&cert.file_id).is_none()
                    && !self.drops_stored_files
                    && self.store.insert(&cert, ReplicaKind::Diverted).is_ok();
                if admitted {
                    let (now, me) = (cx.now_us(), cx.me());
                    cx.tracer()
                        .replica_stored(now, op, me, cert.file_id.routing_id().0, true);
                    let receipt = self
                        .card
                        .issue_store_receipt(&cert.file_id, cert.size, true);
                    cx.send_direct(client, PastMsg::StoreAck { receipt, op });
                    cx.send_direct(
                        primary,
                        PastMsg::DivertAck {
                            file_id: cert.file_id,
                            op,
                        },
                    );
                } else {
                    cx.send_direct(
                        primary,
                        PastMsg::DivertNack {
                            file_id: cert.file_id,
                            op,
                        },
                    );
                }
            }
            PastMsg::DivertAck { file_id, .. } => {
                if self.pending_diverts.remove(&file_id).is_some() {
                    self.store.add_pointer(file_id, from);
                }
            }
            PastMsg::DivertNack { file_id, .. } => {
                self.try_next_divert(file_id, cx);
            }
            PastMsg::StoreAck { receipt, .. } => {
                if !self.cfg.crypto_checks || receipt.verify(&self.broker_key) {
                    self.note_insert_response(
                        receipt.file_id,
                        Some((receipt.storer.card_key.to_bytes(), receipt.stored)),
                        false,
                        cx,
                    );
                }
            }
            PastMsg::InsertNack {
                file_id, reason, ..
            } => {
                self.note_insert_response(file_id, None, reason.is_fatal(), cx);
            }
            PastMsg::LookupHop {
                file_id,
                client,
                path,
                terminal,
                op,
            } => {
                if !self.reply_file(&file_id, client, &path, op, cx) {
                    if terminal {
                        cx.send_direct(client, PastMsg::LookupMiss { file_id, op });
                    } else {
                        // Not a holder after all (e.g. a just-joined k-set
                        // member): continue the lookup toward the root.
                        cx.route(
                            file_id.routing_id(),
                            PastMsg::Lookup {
                                file_id,
                                client,
                                path,
                                redirected: true,
                                op,
                            },
                        );
                    }
                }
            }
            PastMsg::FileReply {
                cert, from_cache, ..
            } => {
                if let Some(pending) = self.pending_lookups.remove(&cert.file_id) {
                    let started_us = pending.started_us;
                    // "The file certificate is returned along with the
                    // file, and allows the client to verify that the
                    // contents are authentic."
                    let verified = !self.cfg.crypto_checks || cert.verify(&self.broker_key);
                    let (now, me) = (cx.now_us(), cx.me());
                    cx.tracer()
                        .op_end(now, pending.op, me, "lookup", verified, 0);
                    if verified {
                        cx.emit(PastOut::LookupOk {
                            file_id: cert.file_id,
                            server: from,
                            from_cache,
                            started_us,
                        });
                    } else {
                        cx.emit(PastOut::LookupFailed {
                            file_id: cert.file_id,
                        });
                    }
                }
            }
            PastMsg::LookupMiss { file_id, .. } => {
                if let Some(pending) = self.pending_lookups.remove(&file_id) {
                    let (now, me) = (cx.now_us(), cx.me());
                    cx.tracer().op_end(now, pending.op, me, "lookup", false, 0);
                    cx.emit(PastOut::LookupFailed { file_id });
                }
            }
            PastMsg::ReclaimFree { rcert, client, op } => {
                self.handle_reclaim(rcert, client, op, false, state, cx);
            }
            PastMsg::ReclaimAck { receipt, .. } => {
                let fid = receipt.file_id;
                let freed = receipt.freed;
                if self.retry_enabled() {
                    // The first ack settles the pending reclaim (other
                    // holders' acks still credit below).
                    if let Some(pending) = self.pending_reclaims.remove(&fid) {
                        if !pending.internal {
                            let (now, me) = (cx.now_us(), cx.me());
                            cx.tracer().op_end(now, pending.op, me, "reclaim", true, 0);
                        }
                    }
                    let storer = receipt.storer.card_key.to_bytes();
                    if !self.reclaim_seen.insert((fid, storer)) {
                        return; // duplicated delivery
                    }
                    if let Some(counted) = self.settled.get(&fid) {
                        if !counted.contains(&storer) {
                            // A copy from a failed insert attempt whose
                            // store receipt the network lost: its share
                            // of the debit was already returned as
                            // "unstored" when the attempt concluded, so
                            // this reclaim must not credit it again.
                            return;
                        }
                    }
                }
                let credited = if self.cfg.crypto_checks {
                    self.card.credit_reclaim(&receipt, &self.broker_key).is_ok()
                } else {
                    self.card.credit(freed);
                    true
                };
                if credited {
                    cx.emit(PastOut::ReclaimCredited {
                        file_id: fid,
                        freed,
                    });
                }
            }
            PastMsg::ReclaimDenied { file_id, .. } => {
                if self.retry_enabled() {
                    if let Some(pending) = self.pending_reclaims.remove(&file_id) {
                        if !pending.internal {
                            let (now, me) = (cx.now_us(), cx.me());
                            cx.tracer().op_end(now, pending.op, me, "reclaim", false, 0);
                        }
                    }
                }
                cx.emit(PastOut::ReclaimDenied { file_id });
            }
            PastMsg::CachePush { cert } => {
                if self.cfg.cache_enabled
                    && (!self.cfg.crypto_checks || cert.verify(&self.broker_key))
                {
                    self.store.offer_cache(&cert, self.cfg.cache_fraction);
                }
            }
            PastMsg::AuditChallenge { file_id, nonce } => {
                let proof = if self.drops_stored_files {
                    None
                } else {
                    self.store
                        .serve(&file_id)
                        .map(|(cert, _)| audit_proof(nonce, &cert.content_hash))
                };
                cx.send_direct(from, PastMsg::AuditProof { file_id, proof });
            }
            PastMsg::AuditProof { file_id, proof } => {
                if let Some((expected_hash, nonce)) = self.pending_audits.remove(&file_id) {
                    let expected = audit_proof(nonce, &expected_hash);
                    if proof == Some(expected) {
                        cx.emit(PastOut::AuditPassed {
                            file_id,
                            prover: from,
                        });
                    } else {
                        cx.emit(PastOut::AuditFailed {
                            file_id,
                            prover: from,
                        });
                    }
                }
            }
            // Routed-only messages arriving directly are ignored.
            _ => {}
        }
    }

    fn on_direct_failed(&mut self, state: &PastryState, to: Addr, payload: PastMsg, cx: &mut Cx) {
        match payload {
            PastMsg::Replicate {
                cert,
                content,
                client: Some(client),
                op,
            } => {
                // A replica target died mid-insert. The overlay purged it
                // before this callback ran, so the recomputed k-set names
                // its replacement: re-fan the copy there (receivers are
                // idempotent, the client deduplicates receipts by storer).
                // Only when no live peer remains does the client learn of
                // the shortfall.
                let me = cx.me();
                let replacements: Vec<Addr> =
                    Self::kset(state, cert.file_id.routing_id(), cert.replication)
                        .iter()
                        .map(|h| h.addr)
                        .filter(|&a| a != me && a != to)
                        .collect();
                if replacements.is_empty() {
                    cx.send_direct(
                        client,
                        PastMsg::InsertNack {
                            file_id: cert.file_id,
                            reason: NackReason::TargetDead,
                            op,
                        },
                    );
                } else {
                    for a in replacements {
                        cx.send_direct(
                            a,
                            PastMsg::Replicate {
                                cert,
                                content,
                                client: Some(client),
                                op,
                            },
                        );
                    }
                }
            }
            PastMsg::DivertStore { cert, .. } => {
                self.try_next_divert(cert.file_id, cx);
            }
            PastMsg::LookupHop {
                file_id,
                client,
                path,
                op,
                ..
            } => {
                // The probed holder died; re-route the lookup with the
                // purged state instead of reporting a spurious miss.
                cx.route(
                    file_id.routing_id(),
                    PastMsg::Lookup {
                        file_id,
                        client,
                        path,
                        redirected: true,
                        op,
                    },
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _state: &PastryState, kind: u64, cx: &mut Cx) {
        let Some(op) = self.retry_timers.remove(&kind) else {
            return;
        };
        match op {
            RetryOp::Insert(fid) => self.retry_insert(fid, cx),
            RetryOp::Lookup(fid) => self.retry_lookup(fid, cx),
            RetryOp::Reclaim(fid) => self.retry_reclaim(fid, cx),
        }
    }

    fn on_leafset_changed(
        &mut self,
        state: &PastryState,
        added: &[NodeHandle],
        removed: &[NodeHandle],
        cx: &mut Cx,
    ) {
        if added.is_empty() && removed.is_empty() {
            return;
        }
        // Replica maintenance: for every primary file whose root we are,
        // make sure the current k-set holds copies ("the system
        // automatically restores k copies of a file as part of a failure
        // recovery procedure").
        let me = state.me.addr;
        let my_files: Vec<FileCertificate> = self
            .store
            .files()
            .filter(|(_, f)| f.kind == ReplicaKind::Primary)
            .map(|(_, f)| f.cert)
            .collect();
        let added_addrs: HashSet<Addr> = added.iter().map(|h| h.addr).collect();
        for cert in my_files {
            let rid = cert.file_id.routing_id();
            let kset = Self::kset(state, rid, cert.replication);
            if !kset.iter().any(|h| h.addr == me) {
                // Newcomers pushed this node out of the file's k-set: the
                // replica is no longer ours to hold as primary. Demote it
                // to a cached copy so the file stays at exactly k primary
                // replicas (invariant I5); the new k-set members receive
                // copies from the members that remain.
                self.store.remove(&cert.file_id);
                if self.cfg.cache_enabled {
                    self.store.offer_cache(&cert, self.cfg.cache_fraction);
                }
                continue;
            }
            // Every surviving k-set member refreshes the newcomers (not
            // just the root: the root may itself be a newcomer without
            // the file). The receiver-side k-set check keeps this
            // idempotent fan-out from over-replicating.
            let content = ContentRef {
                hash: cert.content_hash,
                size: cert.size,
            };
            for h in &kset {
                if h.addr == me {
                    continue;
                }
                // After a removal the whole k-set is refreshed (cheap and
                // idempotent); after additions only the newcomers are.
                if removed.is_empty() && !added_addrs.contains(&h.addr) {
                    continue;
                }
                cx.send_direct(
                    h.addr,
                    PastMsg::Replicate {
                        cert,
                        content,
                        client: None,
                        op: OpId::NONE,
                    },
                );
            }
        }
    }
}
