//! The file cache with GreedyDual-Size eviction (§2.3).
//!
//! "Any PAST node can cache additional copies of a file, which achieves
//! query load balancing, high throughput for popular files, and reduces
//! fetch distance and network traffic." The cache lives in the node's
//! *unused* storage: cached copies are evicted instantly whenever primary
//! storage needs the space. Eviction follows the GreedyDual-Size policy
//! used by the SOSP'01 companion paper: each entry carries a credit
//! `H = L + cost/size`; the entry with minimal `H` is evicted and its `H`
//! becomes the new aging floor `L`.

use crate::cert::FileCertificate;
use crate::fileid::FileId;
use std::collections::BTreeMap;

/// One cached file.
#[derive(Clone, Debug)]
struct CacheEntry {
    cert: FileCertificate,
    h: f64,
}

/// A GreedyDual-Size cache over a byte budget supplied by the caller.
#[derive(Clone, Debug, Default)]
pub struct Cache {
    // BTreeMap, not HashMap: eviction scans the entries, and hash order
    // would leak into victim choice on credit ties (xtask rule D3).
    entries: BTreeMap<FileId, CacheEntry>,
    used: u64,
    aging_floor: f64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The GreedyDual-Size credit for a file of `size` bytes.
    fn credit(&self, size: u64) -> f64 {
        // Cost 1 per retrieval (uniform miss penalty), so H = L + 1/size:
        // small popular files are worth more per byte.
        self.aging_floor + 1.0 / size.max(1) as f64
    }

    /// Looks a file up, refreshing its credit on a hit.
    pub fn lookup(&mut self, id: &FileId) -> Option<FileCertificate> {
        match self.entries.get_mut(id) {
            Some(e) => {
                self.hits += 1;
                e.h = self.aging_floor + 1.0 / e.cert.size.max(1) as f64;
                Some(e.cert)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-statistical peek (does not count as a hit or miss).
    pub fn contains(&self, id: &FileId) -> bool {
        self.entries.contains_key(id)
    }

    /// Offers a file for caching within `budget` total bytes.
    ///
    /// Evicts lowest-credit entries to fit; refuses files that would not
    /// fit even after evicting everything, or whose credit is below every
    /// incumbent's (GD-S admission).
    pub fn offer(&mut self, cert: &FileCertificate, budget: u64) -> bool {
        let size = cert.size;
        if size == 0 || size > budget || self.entries.contains_key(&cert.file_id) {
            return false;
        }
        let new_h = self.credit(size);
        // Evict until it fits, but never evict an entry more valuable than
        // the newcomer.
        while self.used + size > budget {
            let victim = self
                .entries
                .iter()
                .min_by(|a, b| a.1.h.total_cmp(&b.1.h))
                .map(|(id, e)| (*id, e.h));
            let Some((vid, vh)) = victim else {
                return false;
            };
            if vh > new_h {
                return false;
            }
            self.remove_entry(&vid);
            self.aging_floor = vh;
            self.evictions += 1;
        }
        self.used += size;
        self.insertions += 1;
        self.entries.insert(
            cert.file_id,
            CacheEntry {
                cert: *cert,
                h: new_h,
            },
        );
        true
    }

    /// Shrinks the cache to at most `budget` bytes (called when primary
    /// storage grows into space the cache was borrowing).
    pub fn shrink_to(&mut self, budget: u64) {
        while self.used > budget {
            let victim = self
                .entries
                .iter()
                .min_by(|a, b| a.1.h.total_cmp(&b.1.h))
                .map(|(id, e)| (*id, e.h));
            let Some((vid, vh)) = victim else { return };
            self.remove_entry(&vid);
            self.aging_floor = vh;
            self.evictions += 1;
        }
    }

    /// Drops a specific entry (e.g. after the file is reclaimed).
    pub fn invalidate(&mut self, id: &FileId) {
        self.remove_entry(id);
    }

    /// Iterates over cached files as `(id, size)` (snapshot/invariant
    /// support).
    pub fn entries(&self) -> impl Iterator<Item = (&FileId, u64)> {
        self.entries.iter().map(|(id, e)| (id, e.cert.size))
    }

    fn remove_entry(&mut self, id: &FileId) {
        if let Some(e) = self.entries.remove(id) {
            self.used -= e.cert.size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use crate::fileid::ContentRef;

    fn cert_of(size: u64, tag: u64) -> FileCertificate {
        let mut broker = Broker::new(b"b");
        let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
        let content = ContentRef::synthetic(0, &format!("f{tag}"), size);
        card.issue_file_certificate(&format!("f{tag}"), &content, 1, tag, 0)
            .unwrap()
    }

    #[test]
    fn offer_and_lookup() {
        let mut c = Cache::new();
        let cert = cert_of(100, 1);
        assert!(c.offer(&cert, 1000));
        assert_eq!(c.used(), 100);
        assert!(c.lookup(&cert.file_id).is_some());
        assert_eq!(c.hits(), 1);
        assert!(c.lookup(&cert_of(100, 2).file_id).is_none());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn rejects_oversized_and_duplicates() {
        let mut c = Cache::new();
        let cert = cert_of(100, 1);
        assert!(!c.offer(&cert, 50));
        assert!(c.offer(&cert, 100));
        assert!(!c.offer(&cert, 1000), "duplicate refused");
    }

    #[test]
    fn evicts_lowest_credit_first() {
        let mut c = Cache::new();
        let big = cert_of(800, 1); // H = 1/800 (low)
        let small = cert_of(100, 2); // H = 1/100 (high)
        assert!(c.offer(&big, 1000));
        assert!(c.offer(&small, 1000));
        // A newcomer that needs space evicts `big` (lower credit).
        let mid = cert_of(500, 3); // H = 1/500 > 1/800
        assert!(c.offer(&mid, 1000));
        assert!(!c.contains(&big.file_id));
        assert!(c.contains(&small.file_id));
        assert!(c.contains(&mid.file_id));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn admission_refuses_low_value_newcomer() {
        let mut c = Cache::new();
        let small = cert_of(10, 1); // H = 0.1
        assert!(c.offer(&small, 100));
        // Newcomer is huge (credit 1/100) and would evict the more
        // valuable incumbent: refused.
        let big = cert_of(100, 2);
        assert!(!c.offer(&big, 100));
        assert!(c.contains(&small.file_id));
    }

    #[test]
    fn aging_floor_lets_new_content_in_eventually() {
        let mut c = Cache::new();
        let a = cert_of(100, 1);
        let b = cert_of(100, 2);
        let d = cert_of(100, 3);
        assert!(c.offer(&a, 100));
        // Same size: H equal to floor+1/100; eviction allowed (vh == new_h).
        assert!(c.offer(&b, 100));
        assert!(!c.contains(&a.file_id));
        // Floor rose, so the next same-size newcomer still gets in.
        assert!(c.offer(&d, 100));
        assert!(c.contains(&d.file_id));
    }

    #[test]
    fn shrink_evicts_until_within_budget() {
        let mut c = Cache::new();
        for i in 0..5 {
            assert!(c.offer(&cert_of(100, i), 1000));
        }
        assert_eq!(c.used(), 500);
        c.shrink_to(250);
        assert!(c.used() <= 250);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = Cache::new();
        let cert = cert_of(100, 1);
        c.offer(&cert, 1000);
        c.invalidate(&cert.file_id);
        assert!(!c.contains(&cert.file_id));
        assert_eq!(c.used(), 0);
    }
}
