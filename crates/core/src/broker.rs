//! Brokers: the trusted third party issuing smartcards (§2.1).
//!
//! "Organizations called brokers may trade storage and issue smartcards to
//! users, which control how much storage must be contributed and/or may be
//! used. The broker is not directly involved in the operation of the PAST
//! network, and its knowledge about the system is limited to the number of
//! smartcards it has circulated, their quotas and expiration dates."
//!
//! The broker also keeps the supply/demand ledger: "there must be a balance
//! between the sum of all client quotas (potential demand) and the total
//! available storage in the system (supply). The broker ensures that
//! balance."

use crate::cert::CardCert;
use crate::smartcard::Smartcard;
use past_crypto::{KeyPair, PublicKey};

/// A smartcard issuer and supply/demand ledger.
pub struct Broker {
    keys: KeyPair,
    cards_issued: u64,
    quota_issued_total: u64,
    contribution_total: u64,
}

impl Broker {
    /// Creates a broker with keys derived from `seed`.
    pub fn new(seed: &[u8]) -> Broker {
        let mut key_seed = b"past-broker-v1".to_vec();
        key_seed.extend_from_slice(seed);
        Broker {
            keys: KeyPair::from_seed(&key_seed),
            cards_issued: 0,
            quota_issued_total: 0,
            contribution_total: 0,
        }
    }

    /// The broker's public key (the trust anchor every node verifies
    /// certificates against).
    pub fn public(&self) -> PublicKey {
        self.keys.public
    }

    /// Issues a smartcard with a usage quota and a storage contribution.
    ///
    /// `seed` keeps card keys deterministic per experiment.
    pub fn issue_card(&mut self, seed: &[u8], quota: u64, contributed: u64) -> Smartcard {
        let mut key_seed = b"past-card-v1".to_vec();
        key_seed.extend_from_slice(&self.keys.public.to_bytes());
        key_seed.extend_from_slice(seed);
        let keys = KeyPair::from_seed(&key_seed);
        let credential = CardCert {
            card_key: keys.public,
            broker_key: self.keys.public,
            broker_sig: self.keys.sign(&CardCert::message(&keys.public)),
        };
        self.cards_issued += 1;
        // Experiments hand out effectively-unbounded quotas; the ledger
        // saturates rather than overflowing.
        self.quota_issued_total = self.quota_issued_total.saturating_add(quota);
        self.contribution_total = self.contribution_total.saturating_add(contributed);
        Smartcard::new(keys, credential, quota, contributed)
    }

    /// Number of cards circulated.
    pub fn cards_issued(&self) -> u64 {
        self.cards_issued
    }

    /// Sum of all issued usage quotas (potential demand).
    pub fn demand(&self) -> u64 {
        self.quota_issued_total
    }

    /// Sum of all promised contributions (supply).
    pub fn supply(&self) -> u64 {
        self.contribution_total
    }

    /// Whether the broker's ledger balances: issued demand does not exceed
    /// promised supply.
    pub fn balanced(&self) -> bool {
        self.quota_issued_total <= self.contribution_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_supply_and_demand() {
        let mut b = Broker::new(b"x");
        assert!(b.balanced());
        b.issue_card(b"storage-1", 0, 1000);
        b.issue_card(b"user-1", 600, 0);
        assert_eq!(b.cards_issued(), 2);
        assert_eq!(b.supply(), 1000);
        assert_eq!(b.demand(), 600);
        assert!(b.balanced());
        b.issue_card(b"user-2", 600, 0);
        assert!(!b.balanced());
    }

    #[test]
    fn distinct_brokers_have_distinct_keys() {
        assert_ne!(Broker::new(b"a").public(), Broker::new(b"b").public());
    }

    #[test]
    fn card_credentials_verify_against_issuer_only() {
        let mut a = Broker::new(b"a");
        let b = Broker::new(b"b");
        let card = a.issue_card(b"u", 10, 0);
        assert!(card.credential().verify(&a.public()));
        assert!(!card.credential().verify(&b.public()));
    }

    #[test]
    fn same_seed_same_card_key() {
        let mut a1 = Broker::new(b"a");
        let mut a2 = Broker::new(b"a");
        assert_eq!(
            a1.issue_card(b"u", 10, 0).public(),
            a2.issue_card(b"u", 10, 0).public()
        );
    }
}
