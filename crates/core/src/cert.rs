//! Certificates and receipts (§2.1 of the paper).
//!
//! - A **file certificate** authorizes an insertion: "contains the fileId,
//!   its replication factor k, the salt, the insertion date and a
//!   cryptographic hash of the file's content ... signed by the file's
//!   owner" (by the owner's smartcard).
//! - A **store receipt** proves a node stored a copy: "allows the client to
//!   verify that k copies of the file have been created on nodes with
//!   adjacent nodeIds".
//! - A **reclaim certificate/receipt** pair authorizes and acknowledges
//!   storage reclamation.
//!
//! Every certificate embeds the issuing smartcard's broker-signed
//! credential ([`CardCert`]), so any node can verify the chain
//! broker → card → certificate offline.

use crate::fileid::FileId;
use past_crypto::{Digest256, PublicKey, Signature};

/// A smartcard credential: the card's public key signed by its broker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CardCert {
    /// The card's public key.
    pub card_key: PublicKey,
    /// The issuing broker's public key.
    pub broker_key: PublicKey,
    /// Broker signature over the card key.
    pub broker_sig: Signature,
}

impl CardCert {
    /// Message the broker signs when certifying a card.
    pub fn message(card_key: &PublicKey) -> Vec<u8> {
        let mut m = b"past-card-cert-v1".to_vec();
        m.extend_from_slice(&card_key.to_bytes());
        m
    }

    /// Verifies the broker's signature (against the expected broker key).
    pub fn verify(&self, broker: &PublicKey) -> bool {
        self.broker_key == *broker
            && self
                .broker_key
                .verify(&Self::message(&self.card_key), &self.broker_sig)
    }
}

/// A signed authorization to insert one file.
///
/// Equality compares every signed field (signatures included), so two
/// equal certificates are necessarily the same issuance — `inserted_at`
/// and the signature distinguish a retransmitted insert from a fresh
/// insert of the same file.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FileCertificate {
    /// The file's 160-bit identifier.
    pub file_id: FileId,
    /// SHA-256 of the file contents.
    pub content_hash: Digest256,
    /// Content length in bytes.
    pub size: u64,
    /// Replication factor `k`.
    pub replication: u8,
    /// The salt used in fileId derivation (re-salting implements file
    /// diversion).
    pub salt: u64,
    /// Insertion date (simulated microseconds).
    pub inserted_at: u64,
    /// The owner card's credential.
    pub owner: CardCert,
    /// The owner card's signature over the fields above.
    pub signature: Signature,
}

impl FileCertificate {
    /// Canonical byte encoding of the signed fields.
    pub fn message(
        file_id: &FileId,
        content_hash: &Digest256,
        size: u64,
        replication: u8,
        salt: u64,
        inserted_at: u64,
    ) -> Vec<u8> {
        let mut m = b"past-file-cert-v1".to_vec();
        m.extend_from_slice(file_id.as_bytes());
        m.extend_from_slice(&content_hash.0);
        m.extend_from_slice(&size.to_be_bytes());
        m.push(replication);
        m.extend_from_slice(&salt.to_be_bytes());
        m.extend_from_slice(&inserted_at.to_be_bytes());
        m
    }

    /// Verifies the full chain: broker → owner card → certificate.
    pub fn verify(&self, broker: &PublicKey) -> bool {
        self.owner.verify(broker)
            && self.owner.card_key.verify(
                &Self::message(
                    &self.file_id,
                    &self.content_hash,
                    self.size,
                    self.replication,
                    self.salt,
                    self.inserted_at,
                ),
                &self.signature,
            )
    }
}

/// A signed acknowledgment that a node stored one copy of a file.
#[derive(Clone, Copy, Debug)]
pub struct StoreReceipt {
    /// The stored file.
    pub file_id: FileId,
    /// Bytes stored (the file size; 0 for an already-present copy).
    pub stored: u64,
    /// Whether the copy was stored under replica diversion.
    pub diverted: bool,
    /// The storing node card's credential.
    pub storer: CardCert,
    /// The storing card's signature.
    pub signature: Signature,
}

impl StoreReceipt {
    /// Canonical byte encoding of the signed fields.
    pub fn message(file_id: &FileId, stored: u64, diverted: bool) -> Vec<u8> {
        let mut m = b"past-store-receipt-v1".to_vec();
        m.extend_from_slice(file_id.as_bytes());
        m.extend_from_slice(&stored.to_be_bytes());
        m.push(diverted as u8);
        m
    }

    /// Verifies the chain broker → storer card → receipt.
    pub fn verify(&self, broker: &PublicKey) -> bool {
        self.storer.verify(broker)
            && self.storer.card_key.verify(
                &Self::message(&self.file_id, self.stored, self.diverted),
                &self.signature,
            )
    }
}

/// A signed authorization to reclaim a file's storage.
#[derive(Clone, Copy, Debug)]
pub struct ReclaimCertificate {
    /// The file to reclaim.
    pub file_id: FileId,
    /// The owner card's credential (must match the file certificate's).
    pub owner: CardCert,
    /// The owner card's signature.
    pub signature: Signature,
}

impl ReclaimCertificate {
    /// Canonical byte encoding of the signed fields.
    pub fn message(file_id: &FileId) -> Vec<u8> {
        let mut m = b"past-reclaim-cert-v1".to_vec();
        m.extend_from_slice(file_id.as_bytes());
        m
    }

    /// Verifies the chain broker → owner card → certificate.
    pub fn verify(&self, broker: &PublicKey) -> bool {
        self.owner.verify(broker)
            && self
                .owner
                .card_key
                .verify(&Self::message(&self.file_id), &self.signature)
    }
}

/// A signed acknowledgment of reclaimed storage ("contains the reclaim
/// certificate and the amount of storage reclaimed").
#[derive(Clone, Copy, Debug)]
pub struct ReclaimReceipt {
    /// The reclaimed file.
    pub file_id: FileId,
    /// Bytes freed at the issuing node.
    pub freed: u64,
    /// The storing node card's credential.
    pub storer: CardCert,
    /// The storing card's signature.
    pub signature: Signature,
}

impl ReclaimReceipt {
    /// Canonical byte encoding of the signed fields.
    pub fn message(file_id: &FileId, freed: u64) -> Vec<u8> {
        let mut m = b"past-reclaim-receipt-v1".to_vec();
        m.extend_from_slice(file_id.as_bytes());
        m.extend_from_slice(&freed.to_be_bytes());
        m
    }

    /// Verifies the chain broker → storer card → receipt.
    pub fn verify(&self, broker: &PublicKey) -> bool {
        self.storer.verify(broker)
            && self
                .storer
                .card_key
                .verify(&Self::message(&self.file_id, self.freed), &self.signature)
    }
}

#[cfg(test)]
mod tests {
    use crate::broker::Broker;
    use crate::fileid::ContentRef;

    #[test]
    fn file_certificate_chain_verifies() {
        let mut broker = Broker::new(b"broker");
        let mut card = broker.issue_card(b"user", 10 << 20, 0);
        let content = ContentRef::from_bytes(b"payload");
        let cert = card
            .issue_file_certificate("f", &content, 3, 0, 42)
            .unwrap();
        assert!(cert.verify(&broker.public()));
    }

    #[test]
    fn tampered_certificate_rejected() {
        let mut broker = Broker::new(b"broker");
        let mut card = broker.issue_card(b"user", 10 << 20, 0);
        let content = ContentRef::from_bytes(b"payload");
        let mut cert = card
            .issue_file_certificate("f", &content, 3, 0, 42)
            .unwrap();
        cert.size += 1;
        assert!(!cert.verify(&broker.public()));
    }

    #[test]
    fn wrong_broker_rejected() {
        let mut broker = Broker::new(b"broker");
        let other = Broker::new(b"other");
        let mut card = broker.issue_card(b"user", 10 << 20, 0);
        let content = ContentRef::from_bytes(b"payload");
        let cert = card
            .issue_file_certificate("f", &content, 3, 0, 42)
            .unwrap();
        assert!(!cert.verify(&other.public()));
    }

    #[test]
    fn uncertified_card_rejected() {
        // A self-made card without broker certification cannot produce
        // verifiable certificates.
        let mut broker = Broker::new(b"broker");
        let card = broker.issue_card(b"user", 10 << 20, 0);
        let rogue_key = past_crypto::KeyPair::from_seed(b"rogue");
        let mut cc = card.credential();
        cc.card_key = rogue_key.public;
        assert!(!cc.verify(&broker.public()));
    }

    #[test]
    fn receipts_verify_and_detect_tampering() {
        let mut broker = Broker::new(b"broker");
        let mut owner = broker.issue_card(b"user", 10 << 20, 0);
        let storer = broker.issue_card(b"node", 0, 1 << 30);
        let content = ContentRef::from_bytes(b"x");
        let cert = owner
            .issue_file_certificate("f", &content, 1, 0, 1)
            .unwrap();
        let receipt = storer.issue_store_receipt(&cert.file_id, content.size, false);
        assert!(receipt.verify(&broker.public()));
        let mut bad = receipt;
        bad.stored += 7;
        assert!(!bad.verify(&broker.public()));

        let rcert = owner.issue_reclaim_certificate(&cert.file_id);
        assert!(rcert.verify(&broker.public()));
        let rr = storer.issue_reclaim_receipt(&cert.file_id, content.size);
        assert!(rr.verify(&broker.public()));
        let mut bad = rr;
        bad.freed = 0;
        assert!(!bad.verify(&broker.public()));
    }
}
