//! 160-bit fileIds and content references.
//!
//! "Each file that is inserted into PAST is assigned a 160-bit fileId,
//! corresponding to the cryptographic hash of the file's textual name, the
//! owner's public key and a random salt."

use past_crypto::sha1::Sha1;
use past_crypto::sha256::Sha256;
use past_crypto::{Digest160, Digest256, PublicKey};
use past_pastry::Id;
use std::fmt;

/// A 160-bit PAST file identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub Digest160);

impl FileId {
    /// Derives the fileId from name, owner key and salt (SHA-1, as the
    /// 160-bit hash of the era).
    pub fn derive(name: &str, owner: &PublicKey, salt: u64) -> FileId {
        let mut h = Sha1::new();
        h.update(b"past-fileid-v1");
        h.update(&(name.len() as u64).to_be_bytes());
        h.update(name.as_bytes());
        h.update(&owner.to_bytes());
        h.update(&salt.to_be_bytes());
        FileId(Digest160(h.finalize()))
    }

    /// The 128 most-significant bits, used as the Pastry routing key
    /// ("routed to the node whose nodeId is numerically closest to the 128
    /// most significant bits of the fileId").
    pub fn routing_id(&self) -> Id {
        Id(self.0.high_u128())
    }

    /// Raw bytes (for signing).
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0 .0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FileId({})", self.0)
    }
}

/// A reference to file contents: size plus content hash.
///
/// The simulator never materializes file bytes on the wire; a
/// `ContentRef` models the transferred content. Corrupting intermediaries
/// are modeled by mutating the hash in flight, which the storing node
/// detects against the certificate exactly as the paper describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ContentRef {
    /// SHA-256 of the contents.
    pub hash: Digest256,
    /// Content length in bytes.
    pub size: u64,
}

impl ContentRef {
    /// Builds a reference from actual bytes.
    pub fn from_bytes(data: &[u8]) -> ContentRef {
        ContentRef {
            hash: past_crypto::digest256(data),
            size: data.len() as u64,
        }
    }

    /// Builds a synthetic reference for a workload file: the hash commits
    /// to (owner, name, size) without materializing `size` bytes.
    pub fn synthetic(owner: usize, name: &str, size: u64) -> ContentRef {
        let mut h = Sha256::new();
        h.update(b"past-synthetic-content-v1");
        h.update(&(owner as u64).to_be_bytes());
        h.update(name.as_bytes());
        h.update(&size.to_be_bytes());
        ContentRef {
            hash: Digest256(h.finalize()),
            size,
        }
    }
}

/// Computes a storage-audit proof: H(nonce ‖ content) in the model where
/// `content` is represented by its hash.
pub fn audit_proof(nonce: u64, content_hash: &Digest256) -> Digest256 {
    let mut h = Sha256::new();
    h.update(b"past-audit-proof-v1");
    h.update(&nonce.to_be_bytes());
    h.update(&content_hash.0);
    Digest256(h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::KeyPair;

    #[test]
    fn fileid_depends_on_all_inputs() {
        let k1 = KeyPair::from_seed(b"a").public;
        let k2 = KeyPair::from_seed(b"b").public;
        let base = FileId::derive("f", &k1, 0);
        assert_eq!(base, FileId::derive("f", &k1, 0));
        assert_ne!(base, FileId::derive("g", &k1, 0));
        assert_ne!(base, FileId::derive("f", &k2, 0));
        assert_ne!(base, FileId::derive("f", &k1, 1));
    }

    #[test]
    fn routing_id_is_high_bits() {
        let k = KeyPair::from_seed(b"a").public;
        let fid = FileId::derive("f", &k, 0);
        let expect = u128::from_be_bytes(fid.as_bytes()[..16].try_into().unwrap());
        assert_eq!(fid.routing_id(), Id(expect));
    }

    #[test]
    fn content_refs() {
        let c = ContentRef::from_bytes(b"hello");
        assert_eq!(c.size, 5);
        assert_eq!(c, ContentRef::from_bytes(b"hello"));
        assert_ne!(c.hash, ContentRef::from_bytes(b"hellp").hash);
        let s = ContentRef::synthetic(1, "f", 1024);
        assert_eq!(s.size, 1024);
        assert_eq!(s, ContentRef::synthetic(1, "f", 1024));
        assert_ne!(s.hash, ContentRef::synthetic(2, "f", 1024).hash);
    }

    #[test]
    fn audit_proofs_differ_by_nonce() {
        let c = ContentRef::from_bytes(b"data");
        assert_eq!(audit_proof(7, &c.hash), audit_proof(7, &c.hash));
        assert_ne!(audit_proof(7, &c.hash), audit_proof(8, &c.hash));
    }
}
