//! PAST: a large-scale, persistent peer-to-peer storage utility.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Druschel & Rowstron, HotOS 2001): an archival storage layer over the
//! Pastry overlay with
//!
//! - immutable files named by 160-bit fileIds ([`fileid`]),
//! - smartcard-signed certificates and receipts ([`cert`], [`smartcard`],
//!   [`broker`]) enforcing quotas and authenticity end to end,
//! - k-fold replication on the k nodes with numerically closest nodeIds,
//!   with replica diversion, file diversion, and automatic replica
//!   restoration under churn ([`node`], [`storage`]),
//! - caching of popular files along lookup/insert routes with
//!   GreedyDual-Size eviction ([`cache`]), and
//! - random storage audits exposing cheating nodes ([`fileid::audit_proof`],
//!   [`node::PastApp`]).
//!
//! The [`network::PastNetwork`] type is the top-level API: build a
//! network, then `insert` / `lookup` / `reclaim` / `audit` and `run`.

pub mod broker;
pub mod cache;
pub mod cert;
pub mod fileid;
pub mod msg;
pub mod network;
pub mod node;
pub mod smartcard;
pub mod storage;
pub mod wire;

pub use broker::Broker;
pub use cert::{CardCert, FileCertificate, ReclaimCertificate, ReclaimReceipt, StoreReceipt};
pub use fileid::{audit_proof, ContentRef, FileId};
pub use msg::{NackReason, PastMsg};
pub use network::{
    BuildMode, CardSnapshot, FileSnapshot, PastEvent, PastNetwork, PastSnapshot,
    ShardedPastNetwork, StoreSnapshot,
};
pub use node::{PastApp, PastConfig, PastOut, RetryOp};
pub use smartcard::{CardError, Smartcard};
pub use storage::{ReplicaKind, Store, StoredFile};
