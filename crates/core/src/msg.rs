//! PAST application messages, carried by Pastry as routed or direct
//! payloads.

use crate::cert::{FileCertificate, ReclaimCertificate, ReclaimReceipt, StoreReceipt};
use crate::fileid::{ContentRef, FileId};
use past_crypto::Digest256;
use past_netsim::{Addr, OpId};
use past_pastry::PayloadSize;

/// Why an insertion response was negative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NackReason {
    /// Certificate or content failed verification (fatal for the attempt).
    BadCertificate,
    /// Local policy refused the copy and diversion failed.
    StoreRefused,
    /// The target replica holder is dead.
    TargetDead,
    /// The network has fewer nodes than requested replicas.
    InsufficientNodes,
}

impl NackReason {
    /// Fatal reasons abort the attempt immediately (no point counting the
    /// remaining responses).
    pub fn is_fatal(&self) -> bool {
        matches!(self, NackReason::BadCertificate)
    }
}

/// The PAST protocol message set.
#[derive(Clone, Debug)]
pub enum PastMsg {
    // --- Routed toward the fileId's root -------------------------------
    /// Insert request: certificate plus the content as transferred (the
    /// hash may be corrupted en route; the certificate exposes that).
    Insert {
        /// The owner-signed file certificate.
        cert: FileCertificate,
        /// The content as it arrives (subject to en-route corruption).
        content: ContentRef,
        /// The requesting client.
        client: Addr,
        /// The client operation this request belongs to (trace attribution).
        op: OpId,
    },
    /// Lookup request; accumulates the route path for cache placement.
    Lookup {
        /// The requested file.
        file_id: FileId,
        /// The requesting client.
        client: Addr,
        /// Nodes traversed (bounded), nearest-to-client first.
        path: Vec<Addr>,
        /// Set once a covering node has redirected the lookup to its
        /// proximity-nearest replica holder (at most one redirect).
        redirected: bool,
        /// The client operation this request belongs to (trace attribution).
        op: OpId,
    },
    /// Reclaim request.
    Reclaim {
        /// The owner-signed reclaim certificate.
        rcert: ReclaimCertificate,
        /// The requesting client.
        client: Addr,
        /// The client operation this request belongs to (trace attribution).
        op: OpId,
    },

    // --- Direct node-to-node -------------------------------------------
    /// Root → k-set member: store a replica. `client: None` marks
    /// maintenance replication (no receipts expected).
    Replicate {
        /// The file certificate.
        cert: FileCertificate,
        /// The content as held by the sender.
        content: ContentRef,
        /// The client awaiting receipts, if any.
        client: Option<Addr>,
        /// The client operation this copy belongs to (none for
        /// maintenance replication).
        op: OpId,
    },
    /// Full primary → leaf neighbor: hold this replica for me
    /// (replica diversion).
    DivertStore {
        /// The file certificate.
        cert: FileCertificate,
        /// The content.
        content: ContentRef,
        /// The diverting primary (receives the ack/nack).
        primary: Addr,
        /// The client awaiting a receipt.
        client: Addr,
        /// The client operation this diversion serves.
        op: OpId,
    },
    /// Diversion accepted; sender now holds the replica.
    DivertAck {
        /// The diverted file.
        file_id: FileId,
        /// The client operation the diversion served.
        op: OpId,
    },
    /// Diversion refused.
    DivertNack {
        /// The refused file.
        file_id: FileId,
        /// The client operation the diversion would have served.
        op: OpId,
    },
    /// Storage node → client: copy stored, receipt enclosed.
    StoreAck {
        /// The signed store receipt.
        receipt: StoreReceipt,
        /// The client operation being acknowledged.
        op: OpId,
    },
    /// Storage node → client: copy not stored.
    InsertNack {
        /// The file.
        file_id: FileId,
        /// Why.
        reason: NackReason,
        /// The client operation being refused.
        op: OpId,
    },
    /// Root → replica holder: answer this lookup if you can.
    LookupHop {
        /// The requested file.
        file_id: FileId,
        /// The client awaiting the file.
        client: Addr,
        /// Path recorded by the routed phase.
        path: Vec<Addr>,
        /// Terminal hops answer miss directly; non-terminal ones
        /// (nearest-replica redirects) re-route toward the root instead.
        terminal: bool,
        /// The client operation this hop serves.
        op: OpId,
    },
    /// Storage node → client: the file (certificate stands in for content).
    FileReply {
        /// The certificate, "returned along with the file".
        cert: FileCertificate,
        /// Whether a cached copy served the request.
        from_cache: bool,
        /// The client operation being answered.
        op: OpId,
    },
    /// Storage node → client: file not found here.
    LookupMiss {
        /// The file.
        file_id: FileId,
        /// The client operation being answered.
        op: OpId,
    },
    /// Root → k-set member / pointer holder: free this file.
    ReclaimFree {
        /// The reclaim certificate.
        rcert: ReclaimCertificate,
        /// The client awaiting receipts.
        client: Addr,
        /// The client operation this free belongs to (none for
        /// internal quota-pressure reclaims).
        op: OpId,
    },
    /// Storage node → client: storage freed, receipt enclosed.
    ReclaimAck {
        /// The signed reclaim receipt.
        receipt: ReclaimReceipt,
        /// The client operation being acknowledged.
        op: OpId,
    },
    /// Storage node → client: reclaim refused (not the owner).
    ReclaimDenied {
        /// The file.
        file_id: FileId,
        /// The client operation being refused.
        op: OpId,
    },
    /// Push a file into a nearby node's cache (sent to route-path nodes).
    CachePush {
        /// The certificate of the cached file.
        cert: FileCertificate,
    },
    /// Random storage audit: prove you hold the file.
    AuditChallenge {
        /// The audited file.
        file_id: FileId,
        /// Fresh challenge nonce.
        nonce: u64,
    },
    /// Audit answer: `None` means "cannot prove".
    AuditProof {
        /// The audited file.
        file_id: FileId,
        /// H(nonce ‖ content), if the prover holds the content.
        proof: Option<Digest256>,
    },
}

impl PayloadSize for PastMsg {
    // payload_size() is the trait default: the exact encoded length from
    // the codec in `crate::wire` (content bodies included).

    fn op_id(&self) -> OpId {
        match self {
            PastMsg::Insert { op, .. }
            | PastMsg::Lookup { op, .. }
            | PastMsg::Reclaim { op, .. }
            | PastMsg::Replicate { op, .. }
            | PastMsg::DivertStore { op, .. }
            | PastMsg::DivertAck { op, .. }
            | PastMsg::DivertNack { op, .. }
            | PastMsg::StoreAck { op, .. }
            | PastMsg::InsertNack { op, .. }
            | PastMsg::LookupHop { op, .. }
            | PastMsg::FileReply { op, .. }
            | PastMsg::LookupMiss { op, .. }
            | PastMsg::ReclaimFree { op, .. }
            | PastMsg::ReclaimAck { op, .. }
            | PastMsg::ReclaimDenied { op, .. } => *op,
            // Caching and audits are background maintenance: never part of
            // a client operation.
            PastMsg::CachePush { .. }
            | PastMsg::AuditChallenge { .. }
            | PastMsg::AuditProof { .. } => OpId::NONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatality() {
        assert!(NackReason::BadCertificate.is_fatal());
        assert!(!NackReason::StoreRefused.is_fatal());
        assert!(!NackReason::TargetDead.is_fatal());
    }

    #[test]
    fn payload_sizes_track_content() {
        use crate::broker::Broker;
        let mut broker = Broker::new(b"b");
        let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
        let content = ContentRef::synthetic(0, "f", 10_000);
        let cert = card.issue_file_certificate("f", &content, 1, 0, 0).unwrap();
        let insert = PastMsg::Insert {
            cert,
            content,
            client: 0,
            op: OpId(7),
        };
        assert!(insert.payload_size() > 10_000);
        assert_eq!(insert.op_id(), OpId(7));
        let miss = PastMsg::LookupMiss {
            file_id: cert.file_id,
            op: OpId::NONE,
        };
        assert!(miss.payload_size() < 100);
        assert_eq!(miss.op_id(), OpId::NONE);
        let push = PastMsg::CachePush { cert };
        assert_eq!(push.op_id(), OpId::NONE);
    }
}
