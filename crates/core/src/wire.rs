//! Byte-level codec for the PAST message set (DESIGN.md §13.3).
//!
//! Frame layout mirrors the Pastry codec: `[version:1][kind:1]`, then
//! the variant's fields in declaration order — little-endian integers,
//! `u32` length-prefixed vectors, canonical big-endian crypto material.
//! Certificates and receipts are fixed-size structures (a [`CardCert`]
//! credential is 128 bytes, a [`FileCertificate`] 269, receipts 220/221,
//! a [`ReclaimCertificate`] 212).
//!
//! **Content bodies.** The simulator never materializes file bytes; a
//! [`ContentRef`] stands in for "the content as transferred". On the
//! wire that stand-in keeps its transfer cost: a `ContentRef` encodes as
//! `hash(32) ‖ size(8)` followed by `size` body bytes (zero filler in
//! the simulator, the actual file in a deployment), and `FileReply` /
//! `CachePush` — where the certificate "is returned along with the
//! file" — append a `cert.size` body the same way. Decoding *skips*
//! bodies without copying, after validating the declared size against
//! the remaining frame, so a hostile size field is a clean
//! [`DecodeError::LengthOverflow`], never an allocation or a panic.

use crate::cert::{CardCert, FileCertificate, ReclaimCertificate, ReclaimReceipt, StoreReceipt};
use crate::fileid::{ContentRef, FileId};
use crate::msg::{NackReason, PastMsg};
use past_crypto::{Digest160, Digest256, PublicKey, Signature};
use past_netsim::OpId;
use past_wire::{
    get_bool, get_u64, get_u8, get_vec, put_bool, put_u64, put_u8, put_vec, tail, DecodeError,
    Wire, WIRE_VERSION,
};

/// Appends a content body of `size` filler bytes (the simulator's
/// stand-in for actual file bytes).
fn put_body(out: &mut Vec<u8>, size: u64) {
    out.resize(out.len() + size as usize, 0);
}

/// Skips a content body of declared `size`, validating it against the
/// remaining frame without copying.
fn skip_body(buf: &[u8], pos: &mut usize, size: u64) -> Result<(), DecodeError> {
    let n = usize::try_from(size).map_err(|_| DecodeError::LengthOverflow)?;
    if n > buf.len().saturating_sub(*pos) {
        return Err(DecodeError::LengthOverflow);
    }
    *pos += n;
    Ok(())
}

impl Wire for FileId {
    const MIN_WIRE_LEN: usize = 20;

    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(buf: &[u8]) -> Result<(FileId, usize), DecodeError> {
        let (d, used) = Digest160::decode(buf)?;
        Ok((FileId(d), used))
    }

    fn encoded_len(&self) -> u64 {
        20
    }
}

impl Wire for ContentRef {
    const MIN_WIRE_LEN: usize = 40;

    fn encode(&self, out: &mut Vec<u8>) {
        self.hash.encode(out);
        put_u64(out, self.size);
        put_body(out, self.size);
    }

    fn decode(buf: &[u8]) -> Result<(ContentRef, usize), DecodeError> {
        let mut pos = 0;
        let (hash, used) = Digest256::decode(buf)?;
        pos += used;
        let size = get_u64(buf, &mut pos)?;
        skip_body(buf, &mut pos, size)?;
        Ok((ContentRef { hash, size }, pos))
    }

    fn encoded_len(&self) -> u64 {
        40 + self.size
    }
}

impl Wire for CardCert {
    const MIN_WIRE_LEN: usize = 128;

    fn encode(&self, out: &mut Vec<u8>) {
        self.card_key.encode(out);
        self.broker_key.encode(out);
        self.broker_sig.encode(out);
    }

    fn decode(buf: &[u8]) -> Result<(CardCert, usize), DecodeError> {
        let mut pos = 0;
        let (card_key, used) = PublicKey::decode(tail(buf, pos))?;
        pos += used;
        let (broker_key, used) = PublicKey::decode(tail(buf, pos))?;
        pos += used;
        let (broker_sig, used) = Signature::decode(tail(buf, pos))?;
        pos += used;
        Ok((
            CardCert {
                card_key,
                broker_key,
                broker_sig,
            },
            pos,
        ))
    }

    fn encoded_len(&self) -> u64 {
        128
    }
}

impl Wire for FileCertificate {
    const MIN_WIRE_LEN: usize = 269;

    fn encode(&self, out: &mut Vec<u8>) {
        self.file_id.encode(out);
        self.content_hash.encode(out);
        put_u64(out, self.size);
        put_u8(out, self.replication);
        put_u64(out, self.salt);
        put_u64(out, self.inserted_at);
        self.owner.encode(out);
        self.signature.encode(out);
    }

    fn decode(buf: &[u8]) -> Result<(FileCertificate, usize), DecodeError> {
        let mut pos = 0;
        let (file_id, used) = FileId::decode(tail(buf, pos))?;
        pos += used;
        let (content_hash, used) = Digest256::decode(tail(buf, pos))?;
        pos += used;
        let size = get_u64(buf, &mut pos)?;
        let replication = get_u8(buf, &mut pos)?;
        let salt = get_u64(buf, &mut pos)?;
        let inserted_at = get_u64(buf, &mut pos)?;
        let (owner, used) = CardCert::decode(tail(buf, pos))?;
        pos += used;
        let (signature, used) = Signature::decode(tail(buf, pos))?;
        pos += used;
        Ok((
            FileCertificate {
                file_id,
                content_hash,
                size,
                replication,
                salt,
                inserted_at,
                owner,
                signature,
            },
            pos,
        ))
    }

    fn encoded_len(&self) -> u64 {
        269
    }
}

impl Wire for StoreReceipt {
    const MIN_WIRE_LEN: usize = 221;

    fn encode(&self, out: &mut Vec<u8>) {
        self.file_id.encode(out);
        put_u64(out, self.stored);
        put_bool(out, self.diverted);
        self.storer.encode(out);
        self.signature.encode(out);
    }

    fn decode(buf: &[u8]) -> Result<(StoreReceipt, usize), DecodeError> {
        let mut pos = 0;
        let (file_id, used) = FileId::decode(tail(buf, pos))?;
        pos += used;
        let stored = get_u64(buf, &mut pos)?;
        let diverted = get_bool(buf, &mut pos)?;
        let (storer, used) = CardCert::decode(tail(buf, pos))?;
        pos += used;
        let (signature, used) = Signature::decode(tail(buf, pos))?;
        pos += used;
        Ok((
            StoreReceipt {
                file_id,
                stored,
                diverted,
                storer,
                signature,
            },
            pos,
        ))
    }

    fn encoded_len(&self) -> u64 {
        221
    }
}

impl Wire for ReclaimCertificate {
    const MIN_WIRE_LEN: usize = 212;

    fn encode(&self, out: &mut Vec<u8>) {
        self.file_id.encode(out);
        self.owner.encode(out);
        self.signature.encode(out);
    }

    fn decode(buf: &[u8]) -> Result<(ReclaimCertificate, usize), DecodeError> {
        let mut pos = 0;
        let (file_id, used) = FileId::decode(tail(buf, pos))?;
        pos += used;
        let (owner, used) = CardCert::decode(tail(buf, pos))?;
        pos += used;
        let (signature, used) = Signature::decode(tail(buf, pos))?;
        pos += used;
        Ok((
            ReclaimCertificate {
                file_id,
                owner,
                signature,
            },
            pos,
        ))
    }

    fn encoded_len(&self) -> u64 {
        212
    }
}

impl Wire for ReclaimReceipt {
    const MIN_WIRE_LEN: usize = 220;

    fn encode(&self, out: &mut Vec<u8>) {
        self.file_id.encode(out);
        put_u64(out, self.freed);
        self.storer.encode(out);
        self.signature.encode(out);
    }

    fn decode(buf: &[u8]) -> Result<(ReclaimReceipt, usize), DecodeError> {
        let mut pos = 0;
        let (file_id, used) = FileId::decode(tail(buf, pos))?;
        pos += used;
        let freed = get_u64(buf, &mut pos)?;
        let (storer, used) = CardCert::decode(tail(buf, pos))?;
        pos += used;
        let (signature, used) = Signature::decode(tail(buf, pos))?;
        pos += used;
        Ok((
            ReclaimReceipt {
                file_id,
                freed,
                storer,
                signature,
            },
            pos,
        ))
    }

    fn encoded_len(&self) -> u64 {
        220
    }
}

impl Wire for NackReason {
    const MIN_WIRE_LEN: usize = 1;

    fn encode(&self, out: &mut Vec<u8>) {
        let tag = match self {
            NackReason::BadCertificate => 0,
            NackReason::StoreRefused => 1,
            NackReason::TargetDead => 2,
            NackReason::InsufficientNodes => 3,
        };
        put_u8(out, tag);
    }

    fn decode(buf: &[u8]) -> Result<(NackReason, usize), DecodeError> {
        let mut pos = 0;
        let reason = match get_u8(buf, &mut pos)? {
            0 => NackReason::BadCertificate,
            1 => NackReason::StoreRefused,
            2 => NackReason::TargetDead,
            3 => NackReason::InsufficientNodes,
            tag => return Err(DecodeError::UnknownKind(tag)),
        };
        Ok((reason, pos))
    }

    fn encoded_len(&self) -> u64 {
        1
    }
}

impl Wire for PastMsg {
    const MIN_WIRE_LEN: usize = 2;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u8(out, WIRE_VERSION);
        match self {
            PastMsg::Insert {
                cert,
                content,
                client,
                op,
            } => {
                put_u8(out, 0);
                cert.encode(out);
                content.encode(out);
                put_u64(out, *client as u64);
                op.encode(out);
            }
            PastMsg::Lookup {
                file_id,
                client,
                path,
                redirected,
                op,
            } => {
                put_u8(out, 1);
                file_id.encode(out);
                put_u64(out, *client as u64);
                put_vec(out, path);
                put_bool(out, *redirected);
                op.encode(out);
            }
            PastMsg::Reclaim { rcert, client, op } => {
                put_u8(out, 2);
                rcert.encode(out);
                put_u64(out, *client as u64);
                op.encode(out);
            }
            PastMsg::Replicate {
                cert,
                content,
                client,
                op,
            } => {
                put_u8(out, 3);
                cert.encode(out);
                content.encode(out);
                client.encode(out);
                op.encode(out);
            }
            PastMsg::DivertStore {
                cert,
                content,
                primary,
                client,
                op,
            } => {
                put_u8(out, 4);
                cert.encode(out);
                content.encode(out);
                put_u64(out, *primary as u64);
                put_u64(out, *client as u64);
                op.encode(out);
            }
            PastMsg::DivertAck { file_id, op } => {
                put_u8(out, 5);
                file_id.encode(out);
                op.encode(out);
            }
            PastMsg::DivertNack { file_id, op } => {
                put_u8(out, 6);
                file_id.encode(out);
                op.encode(out);
            }
            PastMsg::StoreAck { receipt, op } => {
                put_u8(out, 7);
                receipt.encode(out);
                op.encode(out);
            }
            PastMsg::InsertNack {
                file_id,
                reason,
                op,
            } => {
                put_u8(out, 8);
                file_id.encode(out);
                reason.encode(out);
                op.encode(out);
            }
            PastMsg::LookupHop {
                file_id,
                client,
                path,
                terminal,
                op,
            } => {
                put_u8(out, 9);
                file_id.encode(out);
                put_u64(out, *client as u64);
                put_vec(out, path);
                put_bool(out, *terminal);
                op.encode(out);
            }
            PastMsg::FileReply {
                cert,
                from_cache,
                op,
            } => {
                put_u8(out, 10);
                cert.encode(out);
                put_bool(out, *from_cache);
                op.encode(out);
                put_body(out, cert.size);
            }
            PastMsg::LookupMiss { file_id, op } => {
                put_u8(out, 11);
                file_id.encode(out);
                op.encode(out);
            }
            PastMsg::ReclaimFree { rcert, client, op } => {
                put_u8(out, 12);
                rcert.encode(out);
                put_u64(out, *client as u64);
                op.encode(out);
            }
            PastMsg::ReclaimAck { receipt, op } => {
                put_u8(out, 13);
                receipt.encode(out);
                op.encode(out);
            }
            PastMsg::ReclaimDenied { file_id, op } => {
                put_u8(out, 14);
                file_id.encode(out);
                op.encode(out);
            }
            PastMsg::CachePush { cert } => {
                put_u8(out, 15);
                cert.encode(out);
                put_body(out, cert.size);
            }
            PastMsg::AuditChallenge { file_id, nonce } => {
                put_u8(out, 16);
                file_id.encode(out);
                put_u64(out, *nonce);
            }
            PastMsg::AuditProof { file_id, proof } => {
                put_u8(out, 17);
                file_id.encode(out);
                proof.encode(out);
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<(PastMsg, usize), DecodeError> {
        let mut pos = 0;
        let version = get_u8(buf, &mut pos)?;
        if version != WIRE_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let kind = get_u8(buf, &mut pos)?;
        let msg = match kind {
            0 => {
                let (cert, used) = FileCertificate::decode(tail(buf, pos))?;
                pos += used;
                let (content, used) = ContentRef::decode(tail(buf, pos))?;
                pos += used;
                let client = get_u64(buf, &mut pos)? as usize;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::Insert {
                    cert,
                    content,
                    client,
                    op,
                }
            }
            1 => {
                let (file_id, used) = FileId::decode(tail(buf, pos))?;
                pos += used;
                let client = get_u64(buf, &mut pos)? as usize;
                let path = get_vec(buf, &mut pos)?;
                let redirected = get_bool(buf, &mut pos)?;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::Lookup {
                    file_id,
                    client,
                    path,
                    redirected,
                    op,
                }
            }
            2 => {
                let (rcert, used) = ReclaimCertificate::decode(tail(buf, pos))?;
                pos += used;
                let client = get_u64(buf, &mut pos)? as usize;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::Reclaim { rcert, client, op }
            }
            3 => {
                let (cert, used) = FileCertificate::decode(tail(buf, pos))?;
                pos += used;
                let (content, used) = ContentRef::decode(tail(buf, pos))?;
                pos += used;
                let (client, used) = Option::<usize>::decode(tail(buf, pos))?;
                pos += used;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::Replicate {
                    cert,
                    content,
                    client,
                    op,
                }
            }
            4 => {
                let (cert, used) = FileCertificate::decode(tail(buf, pos))?;
                pos += used;
                let (content, used) = ContentRef::decode(tail(buf, pos))?;
                pos += used;
                let primary = get_u64(buf, &mut pos)? as usize;
                let client = get_u64(buf, &mut pos)? as usize;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::DivertStore {
                    cert,
                    content,
                    primary,
                    client,
                    op,
                }
            }
            5 => {
                let (file_id, used) = FileId::decode(tail(buf, pos))?;
                pos += used;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::DivertAck { file_id, op }
            }
            6 => {
                let (file_id, used) = FileId::decode(tail(buf, pos))?;
                pos += used;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::DivertNack { file_id, op }
            }
            7 => {
                let (receipt, used) = StoreReceipt::decode(tail(buf, pos))?;
                pos += used;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::StoreAck { receipt, op }
            }
            8 => {
                let (file_id, used) = FileId::decode(tail(buf, pos))?;
                pos += used;
                let (reason, used) = NackReason::decode(tail(buf, pos))?;
                pos += used;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::InsertNack {
                    file_id,
                    reason,
                    op,
                }
            }
            9 => {
                let (file_id, used) = FileId::decode(tail(buf, pos))?;
                pos += used;
                let client = get_u64(buf, &mut pos)? as usize;
                let path = get_vec(buf, &mut pos)?;
                let terminal = get_bool(buf, &mut pos)?;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::LookupHop {
                    file_id,
                    client,
                    path,
                    terminal,
                    op,
                }
            }
            10 => {
                let (cert, used) = FileCertificate::decode(tail(buf, pos))?;
                pos += used;
                let from_cache = get_bool(buf, &mut pos)?;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                skip_body(buf, &mut pos, cert.size)?;
                PastMsg::FileReply {
                    cert,
                    from_cache,
                    op,
                }
            }
            11 => {
                let (file_id, used) = FileId::decode(tail(buf, pos))?;
                pos += used;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::LookupMiss { file_id, op }
            }
            12 => {
                let (rcert, used) = ReclaimCertificate::decode(tail(buf, pos))?;
                pos += used;
                let client = get_u64(buf, &mut pos)? as usize;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::ReclaimFree { rcert, client, op }
            }
            13 => {
                let (receipt, used) = ReclaimReceipt::decode(tail(buf, pos))?;
                pos += used;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::ReclaimAck { receipt, op }
            }
            14 => {
                let (file_id, used) = FileId::decode(tail(buf, pos))?;
                pos += used;
                let (op, used) = OpId::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::ReclaimDenied { file_id, op }
            }
            15 => {
                let (cert, used) = FileCertificate::decode(tail(buf, pos))?;
                pos += used;
                skip_body(buf, &mut pos, cert.size)?;
                PastMsg::CachePush { cert }
            }
            16 => {
                let (file_id, used) = FileId::decode(tail(buf, pos))?;
                pos += used;
                let nonce = get_u64(buf, &mut pos)?;
                PastMsg::AuditChallenge { file_id, nonce }
            }
            17 => {
                let (file_id, used) = FileId::decode(tail(buf, pos))?;
                pos += used;
                let (proof, used) = Option::<Digest256>::decode(tail(buf, pos))?;
                pos += used;
                PastMsg::AuditProof { file_id, proof }
            }
            other => return Err(DecodeError::UnknownKind(other)),
        };
        Ok((msg, pos))
    }

    fn encoded_len(&self) -> u64 {
        const HEADER: u64 = 2;
        const FID: u64 = 20;
        const CERT: u64 = 269;
        const RCERT: u64 = 212;
        const RECEIPT: u64 = 221;
        const RRECEIPT: u64 = 220;
        const ADDR: u64 = 8;
        const OP: u64 = 8;
        HEADER
            + match self {
                // Content bodies travel with inserts, replications,
                // diversions, replies, and cache pushes.
                PastMsg::Insert { content, .. } => CERT + 40 + content.size + ADDR + OP,
                PastMsg::Lookup { path, .. } => FID + ADDR + 4 + 8 * path.len() as u64 + 1 + OP,
                PastMsg::Reclaim { .. } => RCERT + ADDR + OP,
                PastMsg::Replicate {
                    content, client, ..
                } => CERT + 40 + content.size + client.encoded_len() + OP,
                PastMsg::DivertStore { content, .. } => CERT + 40 + content.size + 2 * ADDR + OP,
                PastMsg::DivertAck { .. } => FID + OP,
                PastMsg::DivertNack { .. } => FID + OP,
                PastMsg::StoreAck { .. } => RECEIPT + OP,
                PastMsg::InsertNack { .. } => FID + 1 + OP,
                PastMsg::LookupHop { path, .. } => FID + ADDR + 4 + 8 * path.len() as u64 + 1 + OP,
                PastMsg::FileReply { cert, .. } => CERT + 1 + OP + cert.size,
                PastMsg::LookupMiss { .. } => FID + OP,
                PastMsg::ReclaimFree { .. } => RCERT + ADDR + OP,
                PastMsg::ReclaimAck { .. } => RRECEIPT + OP,
                PastMsg::ReclaimDenied { .. } => FID + OP,
                PastMsg::CachePush { cert } => CERT + cert.size,
                PastMsg::AuditChallenge { .. } => FID + 8,
                PastMsg::AuditProof { proof, .. } => FID + proof.encoded_len(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_body_travels_and_is_skipped() {
        let content = ContentRef::synthetic(1, "f", 100);
        let bytes = content.to_wire();
        assert_eq!(bytes.len(), 140);
        let (back, used) = ContentRef::decode(&bytes).unwrap();
        assert_eq!(back, content);
        assert_eq!(used, 140);
        // A declared size larger than the frame is a typed error.
        assert_eq!(
            ContentRef::decode(&bytes[..50]).unwrap_err(),
            DecodeError::LengthOverflow
        );
    }

    #[test]
    fn nack_reason_rejects_unknown_tags() {
        for (i, r) in [
            NackReason::BadCertificate,
            NackReason::StoreRefused,
            NackReason::TargetDead,
            NackReason::InsufficientNodes,
        ]
        .into_iter()
        .enumerate()
        {
            let bytes = r.to_wire();
            assert_eq!(bytes, vec![i as u8]);
            assert_eq!(NackReason::decode(&bytes).unwrap(), (r, 1));
        }
        assert_eq!(
            NackReason::decode(&[4]).unwrap_err(),
            DecodeError::UnknownKind(4)
        );
    }
}
