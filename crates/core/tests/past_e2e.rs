//! End-to-end PAST protocol tests over the simulated overlay:
//! insert/lookup/reclaim, replication, diversion, churn recovery, quotas,
//! caching, and the security fault injections of §2.1.

use past_core::{BuildMode, ContentRef, FileId, PastConfig, PastNetwork, PastOut};
use past_crypto::rng::Rng;
use past_netsim::{Sphere, Topology};
use past_pastry::{random_ids, Config as PastryConfig};

const MB: u64 = 1 << 20;

fn pastry_cfg() -> PastryConfig {
    PastryConfig {
        leaf_len: 8,
        neighborhood_len: 8,
        ..PastryConfig::default()
    }
}

fn build(
    n: usize,
    seed: u64,
    capacity: u64,
    quota: u64,
    past_cfg: PastConfig,
) -> PastNetwork<Sphere> {
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    PastNetwork::build(
        Sphere::new(n, seed),
        pastry_cfg(),
        past_cfg,
        seed,
        &ids,
        &vec![capacity; n],
        &vec![quota; n],
        BuildMode::ProtocolJoins,
    )
}

fn insert_ok(events: &[past_core::PastEvent]) -> Vec<(u64, FileId)> {
    events
        .iter()
        .filter_map(|(_, _, e)| match e {
            PastOut::InsertOk {
                request_id,
                file_id,
                ..
            } => Some((*request_id, *file_id)),
            _ => None,
        })
        .collect()
}

#[test]
fn insert_stores_k_replicas_on_closest_nodes() {
    let mut net = build(40, 1, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(0, "doc", 2 * MB);
    net.insert(3, "doc", content, 5).unwrap();
    let events = net.run();
    let ok = insert_ok(&events);
    assert_eq!(ok.len(), 1, "insert should succeed: {events:?}");
    let fid = ok[0].1;
    let holders = net.replica_holders(&fid);
    assert_eq!(holders.len(), 5, "exactly k = 5 replicas");
    // Holders must be the 5 live nodes numerically closest to the fileId.
    let rid = fid.routing_id();
    let mut all = net.sim.live_handles();
    all.sort_by_key(|h| (h.id.ring_dist(&rid), h.id.0));
    let expect: std::collections::HashSet<_> = all[..5].iter().map(|h| h.addr).collect();
    let got: std::collections::HashSet<_> = holders.into_iter().collect();
    assert_eq!(got, expect, "replicas on the k numerically closest nodes");
}

#[test]
fn insert_survives_replica_holder_dying_mid_insert() {
    let mut net = build(40, 21, 100 * MB, 1_000 * MB, PastConfig::default());
    let client = 0;
    let content = ContentRef::synthetic(9, "fragile", 2 * MB);
    // Predict the fileId (salt 0) to find the prospective replica set.
    let owner = net.sim.engine.node(client).app.card.public();
    let fid = FileId::derive("fragile", &owner, 0);
    let rid = fid.routing_id();
    let mut all = net.sim.live_handles();
    all.sort_by_key(|h| (h.id.ring_dist(&rid), h.id.0));
    // Kill a non-root replica target while the insert is in flight: the
    // root's Replicate to it bounces, and the copy must be re-fanned to
    // the recomputed k-set rather than surfacing as a client nack.
    let victim = all[1].addr;
    assert_ne!(victim, client, "victim must not be the client");
    net.insert(client, "fragile", content, 5).unwrap();
    net.sim.engine.kill(victim);
    let events = net.run();
    let ok: Vec<u8> = events
        .iter()
        .filter_map(|(_, _, e)| match e {
            PastOut::InsertOk { receipts, .. } => Some(*receipts),
            _ => None,
        })
        .collect();
    assert_eq!(
        ok,
        vec![5],
        "insert must complete with all k receipts: {events:?}"
    );
    let holders = net.replica_holders(&fid);
    assert_eq!(holders.len(), 5, "k live replicas after the death");
    assert!(!holders.contains(&victim));
}

#[test]
fn lookup_returns_file_and_verifies_certificate() {
    let mut net = build(40, 2, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(1, "file-a", MB);
    net.insert(0, "file-a", content, 3).unwrap();
    let events = net.run();
    let fid = insert_ok(&events)[0].1;

    net.lookup(17, fid);
    let events = net.run();
    let ok = events.iter().any(|(_, a, e)| {
        matches!(e, PastOut::LookupOk { file_id, .. } if *file_id == fid) && *a == 17
    });
    assert!(ok, "lookup should succeed: {events:?}");
}

#[test]
fn lookup_of_absent_file_fails_cleanly() {
    let mut net = build(30, 3, 100 * MB, 1_000 * MB, PastConfig::default());
    let ghost = FileId::derive(
        "ghost",
        &past_crypto::KeyPair::from_seed(b"nobody").public,
        9,
    );
    net.lookup(5, ghost);
    let events = net.run();
    assert!(
        events
            .iter()
            .any(|(_, _, e)| matches!(e, PastOut::LookupFailed { file_id } if *file_id == ghost)),
        "absent file must produce LookupFailed: {events:?}"
    );
}

#[test]
fn reclaim_frees_storage_and_credits_quota() {
    let mut net = build(40, 4, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(2, "temp", 4 * MB);
    let client = 7;
    net.insert(client, "temp", content, 3).unwrap();
    let events = net.run();
    let fid = insert_ok(&events)[0].1;
    let quota_after_insert = net.sim.engine.node(client).app.card.quota_remaining();

    net.reclaim(client, fid);
    let events = net.run();
    let credited: u64 = events
        .iter()
        .filter_map(|(_, _, e)| match e {
            PastOut::ReclaimCredited { freed, .. } => Some(*freed),
            _ => None,
        })
        .sum();
    assert_eq!(credited, 3 * 4 * MB, "all k copies credited");
    assert!(net.replica_holders(&fid).is_empty(), "no replicas remain");
    let quota_after_reclaim = net.sim.engine.node(client).app.card.quota_remaining();
    assert_eq!(quota_after_reclaim, quota_after_insert + 3 * 4 * MB);
}

#[test]
fn reclaim_by_non_owner_is_denied() {
    let mut net = build(40, 5, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(3, "secret", MB);
    net.insert(2, "secret", content, 3).unwrap();
    let events = net.run();
    let fid = insert_ok(&events)[0].1;

    // A different node (different card) tries to reclaim.
    net.reclaim(9, fid);
    let events = net.run();
    assert!(
        events
            .iter()
            .any(|(_, a, e)| *a == 9 && matches!(e, PastOut::ReclaimDenied { .. })),
        "non-owner reclaim must be denied: {events:?}"
    );
    assert_eq!(
        net.replica_holders(&fid).len(),
        3,
        "replicas must survive a denied reclaim"
    );
}

#[test]
fn files_survive_failures_and_replicas_are_restored() {
    let mut net = build(50, 6, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(4, "precious", MB);
    net.insert(0, "precious", content, 4).unwrap();
    let events = net.run();
    let fid = insert_ok(&events)[0].1;
    let holders = net.replica_holders(&fid);
    assert_eq!(holders.len(), 4);

    // Kill two replica holders (not the client).
    for &h in holders.iter().filter(|&&h| h != 0).take(2) {
        net.sim.engine.kill(h);
    }
    assert!(net.replica_holders(&fid).len() >= 2, "some copies survive");

    // Heartbeat rounds detect the failures; leaf-set change hooks restore
    // replication.
    net.sim.stabilize();
    net.sim.stabilize();
    net.run();
    let restored = net.replica_holders(&fid);
    assert!(
        restored.len() >= 4,
        "replication restored to k after failures, got {}",
        restored.len()
    );

    // And the file is still retrievable.
    net.lookup(1, fid);
    let events = net.run();
    assert!(events
        .iter()
        .any(|(_, _, e)| matches!(e, PastOut::LookupOk { .. })));
}

#[test]
fn new_nodes_receive_replicas_for_keys_they_now_cover() {
    let mut net = build(30, 7, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(5, "mobile", MB);
    net.insert(0, "mobile", content, 3).unwrap();
    let events = net.run();
    let fid = insert_ok(&events)[0].1;

    // Join 20 fresh nodes; some will slot into the fileId's k-set.
    let mut rng = Rng::seed_from_u64(99);
    let new_ids = random_ids(60, &mut rng);
    let mut broker_card_idx = 1000;
    for id in new_ids.into_iter().take(20) {
        // Build an app for the newcomer from the same broker.
        let card = net.broker.issue_card(
            format!("late-{broker_card_idx}").as_bytes(),
            1_000 * MB,
            100 * MB,
        );
        broker_card_idx += 1;
        let app = past_core::PastApp::new(PastConfig::default(), card, 100 * MB, &net.broker);
        if net.sim.engine.len() >= net.sim.engine.topology().len() {
            break; // topology slots exhausted
        }
        net.sim.join_node_nearby(id, app, 4);
    }
    net.run();

    // Ground truth: the current 3 closest nodes must all hold the file.
    let rid = fid.routing_id();
    let mut all = net.sim.live_handles();
    all.sort_by_key(|h| (h.id.ring_dist(&rid), h.id.0));
    for h in &all[..3] {
        assert!(
            net.sim.engine.node(h.addr).app.store.get(&fid).is_some(),
            "node {} should have received a replica after joining",
            h.addr
        );
    }
}

#[test]
fn quota_prevents_over_insertion() {
    let mut net = build(30, 8, 1_000 * MB, 10 * MB, PastConfig::default());
    // 10 MB quota, k=3: a 4 MB file needs 12 MB -> refused by the card.
    let content = ContentRef::synthetic(6, "big", 4 * MB);
    let err = net.insert(0, "big", content, 3).unwrap_err();
    assert!(matches!(err, past_core::CardError::QuotaExceeded { .. }));
    // 3 MB file needs 9 MB -> fits.
    let content = ContentRef::synthetic(6, "ok", 3 * MB);
    net.insert(0, "ok", content, 3).unwrap();
    let events = net.run();
    assert_eq!(insert_ok(&events).len(), 1);
    assert_eq!(
        net.sim.engine.node(0).app.card.quota_remaining(),
        MB,
        "10 - 9 = 1 MB left"
    );
}

#[test]
fn full_nodes_divert_replicas_to_leaf_neighbors() {
    // Tiny capacities force diversion: k=3 but each node can hold barely
    // one copy at a time under the threshold policy.
    let cfg = PastConfig {
        t_pri: 0.6,
        t_div: 0.55,
        ..PastConfig::default()
    };
    let mut net = build(30, 9, 12 * MB, 10_000 * MB, cfg);
    // Fill the k-set nodes around one key with near-capacity files first.
    let mut rng = Rng::seed_from_u64(5);
    let mut succeeded = 0;
    let mut diverted_seen = false;
    for i in 0..40 {
        let name = format!("filler-{i}");
        let content = ContentRef::synthetic(7, &name, 5 * MB);
        let client = rng.random_range(0..30);
        if net.insert(client, &name, content, 3).is_err() {
            continue;
        }
        let events = net.run();
        succeeded += insert_ok(&events).len();
        // Check for diverted replicas anywhere.
        for a in net.sim.engine.live_addrs() {
            let st = &net.sim.engine.node(a).app.store;
            if st
                .files()
                .any(|(_, f)| f.kind == past_core::ReplicaKind::Diverted)
            {
                diverted_seen = true;
            }
        }
    }
    assert!(
        succeeded >= 5,
        "a good share of inserts should succeed: {succeeded}"
    );
    assert!(
        diverted_seen,
        "replica diversion should trigger once nodes near a key fill up"
    );
}

#[test]
fn file_diversion_retries_with_new_salt() {
    // One near-full region: force the first attempt to fail so the client
    // re-salts. We use a tiny network with tiny disks and a large file.
    let cfg = PastConfig {
        t_pri: 0.9,
        t_div: 0.1,
        max_insert_attempts: 4,
        ..PastConfig::default()
    };
    let mut net = build(20, 10, 20 * MB, 100_000 * MB, cfg);
    // Pre-fill every node a bit, unevenly.
    let mut rng = Rng::seed_from_u64(11);
    for i in 0..30 {
        let name = format!("pre-{i}");
        let content = ContentRef::synthetic(8, &name, 8 * MB);
        let client = rng.random_range(0..20);
        let _ = net.insert(client, &name, content, 2);
        net.run();
    }
    // Now a file that only fits in emptier regions; watch attempts.
    let content = ContentRef::synthetic(8, "last", 10 * MB);
    if net.insert(0, "last", content, 2).is_ok() {
        let events = net.run();
        for (_, _, e) in &events {
            if let PastOut::InsertOk { attempts, .. } = e {
                // Either it worked first time or re-salting kicked in;
                // both are valid outcomes — just assert bookkeeping sanity.
                assert!(*attempts >= 1 && *attempts <= 4);
            }
            if let PastOut::InsertFailed { attempts, .. } = e {
                assert_eq!(*attempts, 4, "must exhaust all attempts before failing");
            }
        }
    }
}

#[test]
fn corrupting_intermediate_is_detected_by_certificate() {
    let mut net = build(40, 12, 100 * MB, 1_000 * MB, PastConfig::default());
    // Make every node except the client corrupt passing inserts: any
    // multi-hop insert arrives damaged and must be refused.
    for a in 1..40 {
        net.sim.engine.node_mut(a).app.corrupts_content = true;
    }
    let content = ContentRef::synthetic(9, "fragile", MB);
    net.insert(0, "fragile", content, 3).unwrap();
    let events = net.run();
    let failed = events
        .iter()
        .any(|(_, _, e)| matches!(e, PastOut::InsertFailed { .. }));
    let ok = insert_ok(&events);
    if !ok.is_empty() {
        // Only possible if the route was zero-hop (client was the root);
        // verify integrity held.
        let fid = ok[0].1;
        assert!(!net.replica_holders(&fid).is_empty());
    } else {
        assert!(failed, "corrupted inserts must fail: {events:?}");
    }
}

#[test]
fn audits_expose_cheating_nodes() {
    let mut net = build(40, 13, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(10, "audited", MB);
    net.insert(0, "audited", content, 3).unwrap();
    let events = net.run();
    let fid = insert_ok(&events)[0].1;
    let holders = net.replica_holders(&fid);

    // An honest holder passes.
    net.audit(1, holders[0], fid, content.hash, 777);
    let events = net.run();
    assert!(events
        .iter()
        .any(|(_, _, e)| matches!(e, PastOut::AuditPassed { .. })));

    // A cheating node (drops data, still acks) fails its audit.
    let cheat = holders[1];
    net.sim.engine.node_mut(cheat).app.drops_stored_files = true;
    net.sim.engine.node_mut(cheat).app.store.remove(&fid);
    net.audit(1, cheat, fid, content.hash, 778);
    let events = net.run();
    assert!(
        events
            .iter()
            .any(|(_, _, e)| matches!(e, PastOut::AuditFailed { prover, .. } if *prover == cheat)),
        "cheater must fail the audit: {events:?}"
    );
}

#[test]
fn popular_files_get_cached_and_served_from_cache() {
    let mut net = build(50, 14, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(11, "viral", MB);
    net.insert(0, "viral", content, 3).unwrap();
    let events = net.run();
    let fid = insert_ok(&events)[0].1;

    // Hammer the file from many clients.
    let mut rng = Rng::seed_from_u64(15);
    let mut cache_hits = 0;
    for _ in 0..60 {
        let client = rng.random_range(0..50);
        net.lookup(client, fid);
        let events = net.run();
        for (_, _, e) in &events {
            if let PastOut::LookupOk { from_cache, .. } = e {
                if *from_cache {
                    cache_hits += 1;
                }
            }
        }
    }
    let cached_at = net.cache_holders(&fid);
    assert!(
        !cached_at.is_empty() || cache_hits > 0,
        "popular file should appear in caches (cached at {cached_at:?}, hits {cache_hits})"
    );
}

#[test]
fn cache_disabled_means_no_cache_hits() {
    let cfg = PastConfig {
        cache_enabled: false,
        cache_on_insert_path: false,
        ..PastConfig::default()
    };
    let mut net = build(40, 16, 100 * MB, 1_000 * MB, cfg);
    let content = ContentRef::synthetic(12, "plain", MB);
    net.insert(0, "plain", content, 3).unwrap();
    let events = net.run();
    let fid = insert_ok(&events)[0].1;
    let mut rng = Rng::seed_from_u64(17);
    for _ in 0..30 {
        let client = rng.random_range(0..40);
        net.lookup(client, fid);
        let events = net.run();
        for (_, _, e) in &events {
            if let PastOut::LookupOk { from_cache, .. } = e {
                assert!(!from_cache, "caching is off");
            }
        }
    }
    assert!(net.cache_holders(&fid).is_empty());
}

#[test]
fn immutability_same_fileid_not_overwritten() {
    // Inserting the same (name, owner, salt) twice yields the same fileId;
    // holders refuse the duplicate (files are immutable) but re-acknowledge.
    let mut net = build(30, 18, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(13, "fixed", MB);
    net.insert(4, "fixed", content, 3).unwrap();
    let e1 = net.run();
    let fid1 = insert_ok(&e1)[0].1;
    // Re-insert identical file from the same owner.
    net.insert(4, "fixed", content, 3).unwrap();
    let e2 = net.run();
    let again = insert_ok(&e2);
    assert_eq!(again.len(), 1, "duplicate insert acks idempotently");
    assert_eq!(again[0].1, fid1, "same fileId");
    assert_eq!(
        net.replica_holders(&fid1).len(),
        3,
        "still exactly k copies"
    );
}

#[test]
fn insufficient_nodes_reported_when_k_exceeds_network() {
    let mut net = build(3, 19, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(14, "wide", MB);
    net.insert(0, "wide", content, 5).unwrap();
    let events = net.run();
    // k=5 in a 3-node network cannot fully succeed; after retries the
    // client reports failure.
    assert!(
        events
            .iter()
            .any(|(_, _, e)| matches!(e, PastOut::InsertFailed { .. })),
        "k > N must fail: {events:?}"
    );
}

#[test]
fn deterministic_end_to_end_replay() {
    let fingerprint = || {
        let mut net = build(30, 20, 100 * MB, 1_000 * MB, PastConfig::default());
        let mut rng = Rng::seed_from_u64(2);
        let mut fp: u64 = 0;
        for i in 0..10 {
            let name = format!("f{i}");
            let content = ContentRef::synthetic(15, &name, MB * (1 + i % 3));
            let client = rng.random_range(0..30);
            net.insert(client, &name, content, 3).unwrap();
            for (_, _, e) in net.run() {
                if let PastOut::InsertOk { file_id, .. } = e {
                    fp = fp
                        .wrapping_mul(1099511628211)
                        .wrapping_add(file_id.routing_id().0 as u64);
                }
            }
        }
        (fp, net.sim.engine.stats.total_msgs, net.utilization().0)
    };
    assert_eq!(fingerprint(), fingerprint());
}

#[test]
fn invariants_hold_through_insert_churn_and_rejoin() {
    use past_invariants::{assert_clean, check_all};
    // l = 16 keeps k ≤ l/2 for k = 5: a k-set member must be able to see
    // the whole k-set inside its own leaf set.
    let mut rng = Rng::seed_from_u64(25);
    let ids = random_ids(44, &mut rng);
    let mut net: PastNetwork<Sphere> = PastNetwork::build(
        Sphere::new(44, 25),
        PastryConfig {
            leaf_len: 16,
            neighborhood_len: 8,
            ..PastryConfig::default()
        },
        PastConfig::default(),
        25,
        &ids[..40],
        &vec![100 * MB; 40],
        &vec![1_000 * MB; 40],
        BuildMode::ProtocolJoins,
    );
    net.run();
    assert_clean("after build", &check_all(&net.snapshot()));

    for i in 0..5u64 {
        let name = format!("inv-{i}");
        let content = ContentRef::synthetic(16, &name, MB);
        net.insert((i as usize) % 7, &name, content, 5).unwrap();
    }
    net.run();
    assert_clean("after inserts", &check_all(&net.snapshot()));

    // Fail k = 5 nodes; repair must restore replication *and* keep every
    // card's ledger exactly backed by stored + in-flight bytes.
    for a in 10..15 {
        net.sim.engine.kill(a);
    }
    net.sim.stabilize();
    net.sim.stabilize();
    net.run();
    assert_clean("after failing 5 nodes", &check_all(&net.snapshot()));

    // One node recovers with its old state, two fresh nodes join.
    net.sim.recover_node(10);
    for (j, id) in ids[40..42].iter().enumerate() {
        let card = net
            .broker
            .issue_card(format!("inv-late-{j}").as_bytes(), 1_000 * MB, 100 * MB);
        let app = past_core::PastApp::new(PastConfig::default(), card, 100 * MB, &net.broker);
        net.sim.join_node_nearby(*id, app, 4);
    }
    net.sim.stabilize();
    net.run();
    assert_clean("after recovery and rejoin", &check_all(&net.snapshot()));
}

#[test]
fn reclaimed_diverted_file_is_not_served_from_stale_state() {
    // Regression: `Store::remove` must drop the diversion pointer and any
    // cached copy, or a reclaimed file keeps being served. Tiny disks force
    // diversion; caching is off so a post-reclaim lookup has no legitimate
    // source.
    let cfg = PastConfig {
        t_pri: 0.6,
        t_div: 0.55,
        cache_enabled: false,
        cache_on_insert_path: false,
        ..PastConfig::default()
    };
    let mut net = build(30, 26, 12 * MB, 10_000 * MB, cfg);
    let mut inserted = Vec::new();
    for i in 0..10u64 {
        let name = format!("stale-{i}");
        let content = ContentRef::synthetic(17, &name, 4 * MB);
        if net.insert((i as usize) % 30, &name, content, 3).is_err() {
            continue;
        }
        for (_, fid) in insert_ok(&net.run()) {
            inserted.push(((i as usize) % 30, fid));
        }
    }
    assert!(inserted.len() >= 3, "need a few successful inserts");
    for (owner, fid) in inserted {
        net.reclaim(owner, fid);
        net.run();
        net.lookup((owner + 11) % 30, fid);
        let events = net.run();
        assert!(
            events
                .iter()
                .any(|(_, _, e)| matches!(e, PastOut::LookupFailed { file_id } if *file_id == fid)),
            "reclaimed file must not be found: {events:?}"
        );
        assert!(
            !events
                .iter()
                .any(|(_, _, e)| matches!(e, PastOut::LookupOk { file_id, .. } if *file_id == fid)),
            "reclaimed file served from stale pointer/cache state"
        );
        assert!(net.replica_holders(&fid).is_empty());
    }
}

#[test]
fn duplicate_insert_conserves_quota_exactly() {
    use past_invariants::{assert_clean, check_quota};
    // Regression: a holder that already stores the file acks with a
    // zero-`stored` receipt and the client must credit the whole duplicate
    // debit back — quota conservation (I5) holds across the duplicate.
    let mut net = build(30, 27, 100 * MB, 1_000 * MB, PastConfig::default());
    let content = ContentRef::synthetic(18, "dup", 2 * MB);
    net.insert(4, "dup", content, 3).unwrap();
    net.run();
    let q1 = net.sim.engine.node(4).app.card.quota_remaining();

    net.insert(4, "dup", content, 3).unwrap();
    let events = net.run();
    assert_eq!(insert_ok(&events).len(), 1, "duplicate insert still acks");
    let q2 = net.sim.engine.node(4).app.card.quota_remaining();
    assert_eq!(q2, q1, "duplicate insert must not leak quota");
    assert_clean("after duplicate insert", &check_quota(&net.snapshot()));
}
