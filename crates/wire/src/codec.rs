//! Byte-level codec primitives (DESIGN.md §13).
//!
//! Conventions, normative for every message codec in the workspace:
//!
//! - all integers are **little-endian**, fixed width;
//! - vectors are prefixed by their element count as a `u32`;
//! - `Option<T>` is a one-byte presence tag (`0` absent, `1` present)
//!   followed by the payload when present;
//! - every **top-level** message enum leads with `[version][kind]`, one
//!   byte each ([`WIRE_VERSION`] and the enum's `kind_id`); nested
//!   structs are encoded inline with no version or kind byte;
//! - cryptographic digests, keys, and signatures are their canonical
//!   big-endian byte arrays (matching the signed-message encodings).
//!
//! Decoding is total: every helper returns a typed [`DecodeError`]
//! instead of panicking, and length prefixes are validated against the
//! remaining input *before* any allocation, so hostile frames cannot
//! drive memory use past the size of the frame itself.

use past_crypto::u256::U256;
use past_crypto::{Digest160, Digest256, PublicKey, Signature};
use past_trace::OpId;

/// Version byte leading every top-level message frame. Bump on any
/// incompatible layout change; decoders reject other versions with
/// [`DecodeError::BadVersion`] (evolution rules in DESIGN.md §13.4).
pub const WIRE_VERSION: u8 = 1;

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the frame did.
    Truncated,
    /// The leading version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// A length prefix (or declared content size) exceeds the remaining
    /// input — the frame lies about its own extent.
    LengthOverflow,
    /// An unknown message kind or enum tag byte.
    UnknownKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::LengthOverflow => write!(f, "length prefix exceeds frame"),
            DecodeError::UnknownKind(k) => write!(f, "unknown kind/tag byte {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A value with a byte-level encoding.
///
/// `decode` returns the value and the number of bytes consumed; trailing
/// bytes are the caller's concern (composition consumes sub-frames in
/// field order). Implementations must never panic on any input.
pub trait Wire: Sized {
    /// Minimum encoded size in bytes, used to bound vector length
    /// prefixes before allocating.
    const MIN_WIRE_LEN: usize;

    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `buf`.
    fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError>;

    /// Exact encoded size in bytes: `self.encoded_len() as usize` always
    /// equals the length `encode` appends.
    fn encoded_len(&self) -> u64;

    /// Convenience: encodes into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

// ---------------- put/get primitives --------------------------------

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u16`, little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u128`, little-endian.
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a bool as one byte (`0` or `1`).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Appends raw bytes (no length prefix).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(bytes);
}

/// The unread remainder of `buf`; empty if `pos` ran past the end.
pub fn tail(buf: &[u8], pos: usize) -> &[u8] {
    buf.get(pos..).unwrap_or(&[])
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], DecodeError> {
    let s = buf
        .get(*pos..)
        .and_then(|rest| rest.get(..n))
        .ok_or(DecodeError::Truncated)?;
    *pos += n;
    Ok(s)
}

/// Reads one byte.
pub fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, DecodeError> {
    Ok(take(buf, pos, 1)?[0])
}

/// Reads a little-endian `u16`.
pub fn get_u16(buf: &[u8], pos: &mut usize) -> Result<u16, DecodeError> {
    let s = take(buf, pos, 2)?;
    Ok(u16::from_le_bytes([s[0], s[1]]))
}

/// Reads a little-endian `u32`.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    let s = take(buf, pos, 4)?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Reads a little-endian `u64`.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut b = [0u8; 8];
    b.copy_from_slice(take(buf, pos, 8)?);
    Ok(u64::from_le_bytes(b))
}

/// Reads a little-endian `u128`.
pub fn get_u128(buf: &[u8], pos: &mut usize) -> Result<u128, DecodeError> {
    let mut b = [0u8; 16];
    b.copy_from_slice(take(buf, pos, 16)?);
    Ok(u128::from_le_bytes(b))
}

/// Reads a bool byte (any non-zero is `true`).
pub fn get_bool(buf: &[u8], pos: &mut usize) -> Result<bool, DecodeError> {
    Ok(get_u8(buf, pos)? != 0)
}

/// Reads `n` raw bytes.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], DecodeError> {
    take(buf, pos, n)
}

fn get_array<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], DecodeError> {
    let mut b = [0u8; N];
    b.copy_from_slice(take(buf, pos, N)?);
    Ok(b)
}

/// Reads a vector length prefix and validates it against the remaining
/// input assuming each element occupies at least `min_elem` bytes, so a
/// hostile prefix cannot force an allocation larger than the frame.
pub fn get_len(buf: &[u8], pos: &mut usize, min_elem: usize) -> Result<usize, DecodeError> {
    let n = get_u32(buf, pos)? as usize;
    let remaining = buf.len().saturating_sub(*pos);
    let need = n.checked_mul(min_elem.max(1));
    if need.map_or(true, |need| need > remaining) {
        return Err(DecodeError::LengthOverflow);
    }
    Ok(n)
}

/// Appends a `u32` length prefix followed by each element in order.
pub fn put_vec<T: Wire>(out: &mut Vec<u8>, items: &[T]) {
    debug_assert!(items.len() <= u32::MAX as usize);
    put_u32(out, items.len() as u32);
    for item in items {
        item.encode(out);
    }
}

/// Reads a length-prefixed vector of `T`.
pub fn get_vec<T: Wire>(buf: &[u8], pos: &mut usize) -> Result<Vec<T>, DecodeError> {
    let n = get_len(buf, pos, T::MIN_WIRE_LEN)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        let (item, used) = T::decode(tail(buf, *pos))?;
        *pos += used;
        v.push(item);
    }
    Ok(v)
}

// ---------------- Wire impls for primitives -------------------------

impl Wire for () {
    const MIN_WIRE_LEN: usize = 0;

    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_buf: &[u8]) -> Result<((), usize), DecodeError> {
        Ok(((), 0))
    }

    fn encoded_len(&self) -> u64 {
        0
    }
}

impl Wire for u32 {
    const MIN_WIRE_LEN: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }

    fn decode(buf: &[u8]) -> Result<(u32, usize), DecodeError> {
        let mut pos = 0;
        Ok((get_u32(buf, &mut pos)?, pos))
    }

    fn encoded_len(&self) -> u64 {
        4
    }
}

impl Wire for u64 {
    const MIN_WIRE_LEN: usize = 8;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }

    fn decode(buf: &[u8]) -> Result<(u64, usize), DecodeError> {
        let mut pos = 0;
        Ok((get_u64(buf, &mut pos)?, pos))
    }

    fn encoded_len(&self) -> u64 {
        8
    }
}

// Addresses (`usize` in the simulator) travel as `u64`.
impl Wire for usize {
    const MIN_WIRE_LEN: usize = 8;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self as u64);
    }

    fn decode(buf: &[u8]) -> Result<(usize, usize), DecodeError> {
        let mut pos = 0;
        let v = get_u64(buf, &mut pos)?;
        usize::try_from(v)
            .map(|v| (v, pos))
            .map_err(|_| DecodeError::LengthOverflow)
    }

    fn encoded_len(&self) -> u64 {
        8
    }
}

// Torus coordinates (CAN) travel as their IEEE-754 bit pattern.
impl Wire for f64 {
    const MIN_WIRE_LEN: usize = 8;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.to_bits());
    }

    fn decode(buf: &[u8]) -> Result<(f64, usize), DecodeError> {
        let mut pos = 0;
        Ok((f64::from_bits(get_u64(buf, &mut pos)?), pos))
    }

    fn encoded_len(&self) -> u64 {
        8
    }
}

impl<T: Wire> Wire for Option<T> {
    const MIN_WIRE_LEN: usize = 1;

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => put_u8(out, 0),
            Some(v) => {
                put_u8(out, 1);
                v.encode(out);
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<(Option<T>, usize), DecodeError> {
        let mut pos = 0;
        match get_u8(buf, &mut pos)? {
            0 => Ok((None, pos)),
            1 => {
                let (v, used) = T::decode(tail(buf, pos))?;
                Ok((Some(v), pos + used))
            }
            tag => Err(DecodeError::UnknownKind(tag)),
        }
    }

    fn encoded_len(&self) -> u64 {
        match self {
            None => 1,
            Some(v) => 1 + v.encoded_len(),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    const MIN_WIRE_LEN: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        put_vec(out, self);
    }

    fn decode(buf: &[u8]) -> Result<(Vec<T>, usize), DecodeError> {
        let mut pos = 0;
        let v = get_vec(buf, &mut pos)?;
        Ok((v, pos))
    }

    fn encoded_len(&self) -> u64 {
        4 + self.iter().map(Wire::encoded_len).sum::<u64>()
    }
}

// ---------------- Wire impls for crypto/trace handles ---------------

impl Wire for Digest256 {
    const MIN_WIRE_LEN: usize = 32;

    fn encode(&self, out: &mut Vec<u8>) {
        put_bytes(out, &self.0);
    }

    fn decode(buf: &[u8]) -> Result<(Digest256, usize), DecodeError> {
        let mut pos = 0;
        Ok((Digest256(get_array::<32>(buf, &mut pos)?), pos))
    }

    fn encoded_len(&self) -> u64 {
        32
    }
}

impl Wire for Digest160 {
    const MIN_WIRE_LEN: usize = 20;

    fn encode(&self, out: &mut Vec<u8>) {
        put_bytes(out, &self.0);
    }

    fn decode(buf: &[u8]) -> Result<(Digest160, usize), DecodeError> {
        let mut pos = 0;
        Ok((Digest160(get_array::<20>(buf, &mut pos)?), pos))
    }

    fn encoded_len(&self) -> u64 {
        20
    }
}

impl Wire for U256 {
    const MIN_WIRE_LEN: usize = 32;

    fn encode(&self, out: &mut Vec<u8>) {
        put_bytes(out, &self.to_be_bytes());
    }

    fn decode(buf: &[u8]) -> Result<(U256, usize), DecodeError> {
        let mut pos = 0;
        Ok((U256::from_be_bytes(&get_array::<32>(buf, &mut pos)?), pos))
    }

    fn encoded_len(&self) -> u64 {
        32
    }
}

impl Wire for PublicKey {
    const MIN_WIRE_LEN: usize = 32;

    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(buf: &[u8]) -> Result<(PublicKey, usize), DecodeError> {
        let (v, used) = U256::decode(buf)?;
        Ok((PublicKey(v), used))
    }

    fn encoded_len(&self) -> u64 {
        32
    }
}

impl Wire for Signature {
    const MIN_WIRE_LEN: usize = 64;

    fn encode(&self, out: &mut Vec<u8>) {
        self.commitment.encode(out);
        self.response.encode(out);
    }

    fn decode(buf: &[u8]) -> Result<(Signature, usize), DecodeError> {
        let mut pos = 0;
        let (commitment, used) = U256::decode(tail(buf, pos))?;
        pos += used;
        let (response, used) = U256::decode(tail(buf, pos))?;
        pos += used;
        Ok((
            Signature {
                commitment,
                response,
            },
            pos,
        ))
    }

    fn encoded_len(&self) -> u64 {
        64
    }
}

impl Wire for OpId {
    const MIN_WIRE_LEN: usize = 8;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }

    fn decode(buf: &[u8]) -> Result<(OpId, usize), DecodeError> {
        let mut pos = 0;
        Ok((OpId(get_u64(buf, &mut pos)?), pos))
    }

    fn encoded_len(&self) -> u64 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 0xab);
        put_u16(&mut out, 0x1234);
        put_u32(&mut out, 0xdead_beef);
        put_u64(&mut out, 0x0123_4567_89ab_cdef);
        put_u128(&mut out, u128::MAX - 7);
        put_bool(&mut out, true);
        let mut pos = 0;
        assert_eq!(get_u8(&out, &mut pos), Ok(0xab));
        assert_eq!(get_u16(&out, &mut pos), Ok(0x1234));
        assert_eq!(get_u32(&out, &mut pos), Ok(0xdead_beef));
        assert_eq!(get_u64(&out, &mut pos), Ok(0x0123_4567_89ab_cdef));
        assert_eq!(get_u128(&out, &mut pos), Ok(u128::MAX - 7));
        assert_eq!(get_bool(&out, &mut pos), Ok(true));
        assert_eq!(pos, out.len());
        assert_eq!(get_u8(&out, &mut pos), Err(DecodeError::Truncated));
    }

    #[test]
    fn little_endian_on_the_wire() {
        let mut out = Vec::new();
        put_u32(&mut out, 0x0403_0201);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn length_prefix_is_validated_before_allocation() {
        // Prefix claims 2^32-1 8-byte elements in a 12-byte buffer.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u64(&mut buf, 0);
        let mut pos = 0;
        assert_eq!(get_len(&buf, &mut pos, 8), Err(DecodeError::LengthOverflow));
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v: Vec<u64> = vec![1, u64::MAX, 42];
        let (back, used) = Vec::<u64>::decode(&v.to_wire()).unwrap();
        assert_eq!(back, v);
        assert_eq!(used as u64, v.encoded_len());

        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::decode(&some.to_wire()).unwrap().0, some);
        assert_eq!(Option::<u32>::decode(&none.to_wire()).unwrap().0, none);
        assert_eq!(
            Option::<u32>::decode(&[9u8]),
            Err(DecodeError::UnknownKind(9))
        );
    }

    #[test]
    fn crypto_handles_round_trip() {
        let d = Digest256([7u8; 32]);
        assert_eq!(Digest256::decode(&d.to_wire()).unwrap(), (d, 32));
        let d = Digest160([9u8; 20]);
        assert_eq!(Digest160::decode(&d.to_wire()).unwrap(), (d, 20));
        let sig = Signature {
            commitment: U256([1, 2, 3, 4]),
            response: U256([5, 6, 7, 8]),
        };
        let (back, used) = Signature::decode(&sig.to_wire()).unwrap();
        assert_eq!(
            (back.commitment, back.response, used),
            (sig.commitment, sig.response, 64)
        );
        let op = OpId(77);
        assert_eq!(OpId::decode(&op.to_wire()).unwrap(), (op, 8));
    }
}
