//! The sans-io protocol substrate.
//!
//! Protocol state machines in this workspace are written as transition
//! functions `(state, Input) → effects`, where every effect — a message
//! send, a timer, an observation — goes through the [`Io`] sink in call
//! order. The deterministic simulator's `Ctx` implements [`Io`], so the
//! same state machine runs unmodified under the engine; [`StepIo`]
//! collects effects into a plain vector for engine-free unit tests and,
//! later, socket transports.

use crate::Addr;
use past_crypto::rng::Rng;
use past_trace::Tracer;

/// One protocol event delivered to a node.
#[derive(Clone, Debug)]
pub enum Input<M> {
    /// A message arrived from `from`.
    Message {
        /// The sending node.
        from: Addr,
        /// The message.
        msg: M,
    },
    /// A previously sent message could not be delivered (dead peer).
    SendFailed {
        /// The unreachable peer.
        to: Addr,
        /// The undeliverable message.
        msg: M,
    },
    /// A timer armed by this node fired.
    Timer {
        /// The timer kind.
        kind: u64,
    },
}

/// The effect sink a transition function writes through.
///
/// Implemented by the simulator's `Ctx` (effects enter the event queue)
/// and by [`StepIo`] (effects collect into a vector). Environment
/// queries (`now_us`, `me`, `rng`, `tracer`, `delay_to`) live here too:
/// they are the full set of facts a node may observe about the outside
/// world, which is what keeps runs deterministic and replayable.
pub trait Io<M, O> {
    /// Current time in microseconds.
    fn now_us(&self) -> u64;

    /// This node's address.
    fn me(&self) -> Addr;

    /// The seeded RNG.
    fn rng(&mut self) -> &mut Rng;

    /// The trace sink (no-op unless tracing is enabled).
    fn tracer(&mut self) -> &mut Tracer;

    /// One-way delay to another node (the proximity metric). A real
    /// transport answers from probe measurements.
    fn delay_to(&self, other: Addr) -> u64;

    /// Sends `msg` to `to`.
    fn send(&mut self, to: Addr, msg: M);

    /// Sends `msg` to `to` with additional local processing delay.
    fn send_after(&mut self, to: Addr, msg: M, extra_us: u64);

    /// Arms a timer that fires back into this node after `delay_us`.
    fn set_timer(&mut self, delay_us: u64, kind: u64);

    /// Emits an observation to the harness.
    fn emit(&mut self, out: O);
}

/// One collected effect of a pure transition step.
#[derive(Clone, Debug)]
pub enum Effect<M, O> {
    /// Send `msg` to `to` after `extra_us` of local delay.
    Send {
        /// Destination node.
        to: Addr,
        /// The message.
        msg: M,
        /// Additional local processing delay.
        extra_us: u64,
    },
    /// Arm a timer on the stepped node.
    Timer {
        /// Delay before firing.
        delay_us: u64,
        /// Timer kind.
        kind: u64,
    },
    /// An observation for the harness.
    Out(O),
}

/// A proximity oracle: pairwise one-way delay in microseconds.
pub trait Proximity {
    /// One-way delay from `a` to `b`.
    fn delay_us(&self, a: Addr, b: Addr) -> u64;
}

impl<F: Fn(Addr, Addr) -> u64> Proximity for F {
    fn delay_us(&self, a: Addr, b: Addr) -> u64 {
        self(a, b)
    }
}

/// An engine-free [`Io`]: effects append to a caller-owned vector in the
/// exact order the transition function produced them.
pub struct StepIo<'a, M, O> {
    /// Current time in microseconds.
    pub now_us: u64,
    /// The stepped node's address.
    pub me: Addr,
    /// The seeded RNG.
    pub rng: &'a mut Rng,
    /// The trace sink.
    pub tracer: &'a mut Tracer,
    /// The proximity oracle.
    pub proximity: &'a dyn Proximity,
    /// Collected effects, in call order.
    pub effects: &'a mut Vec<Effect<M, O>>,
}

impl<M, O> Io<M, O> for StepIo<'_, M, O> {
    fn now_us(&self) -> u64 {
        self.now_us
    }

    fn me(&self) -> Addr {
        self.me
    }

    fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    fn tracer(&mut self) -> &mut Tracer {
        self.tracer
    }

    fn delay_to(&self, other: Addr) -> u64 {
        self.proximity.delay_us(self.me, other)
    }

    fn send(&mut self, to: Addr, msg: M) {
        self.effects.push(Effect::Send {
            to,
            msg,
            extra_us: 0,
        });
    }

    fn send_after(&mut self, to: Addr, msg: M, extra_us: u64) {
        self.effects.push(Effect::Send { to, msg, extra_us });
    }

    fn set_timer(&mut self, delay_us: u64, kind: u64) {
        self.effects.push(Effect::Timer { delay_us, kind });
    }

    fn emit(&mut self, out: O) {
        self.effects.push(Effect::Out(out));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_trace::Tracer;

    #[test]
    fn step_io_collects_effects_in_order() {
        let mut rng = Rng::seed_from_u64(1);
        let mut tracer = Tracer::default();
        let mut effects: Vec<Effect<u32, &'static str>> = Vec::new();
        let prox = |a: Addr, b: Addr| (a + b) as u64;
        let mut io = StepIo {
            now_us: 5,
            me: 2,
            rng: &mut rng,
            tracer: &mut tracer,
            proximity: &prox,
            effects: &mut effects,
        };
        assert_eq!(io.now_us(), 5);
        assert_eq!(io.me(), 2);
        assert_eq!(io.delay_to(3), 5);
        io.send(7, 10);
        io.set_timer(99, 1);
        io.emit("done");
        io.send_after(8, 11, 4);
        assert!(matches!(
            effects[0],
            Effect::Send {
                to: 7,
                msg: 10,
                extra_us: 0
            }
        ));
        assert!(matches!(
            effects[1],
            Effect::Timer {
                delay_us: 99,
                kind: 1
            }
        ));
        assert!(matches!(effects[2], Effect::Out("done")));
        assert!(matches!(
            effects[3],
            Effect::Send {
                to: 8,
                msg: 11,
                extra_us: 4
            }
        ));
    }
}
