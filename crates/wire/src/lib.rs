//! The wire layer: a versioned byte-level codec plus the sans-io
//! protocol substrate.
//!
//! Two halves, deliberately small and dependency-free (hermeticity rule
//! H1):
//!
//! - [`codec`]: the [`Wire`] trait — explicit field order, little-endian
//!   integers, `u32` length-prefixed vectors, a leading version byte on
//!   every top-level message — and the typed [`DecodeError`] that makes
//!   malformed input a value, never a panic. DESIGN.md §13 is the
//!   normative spec.
//! - [`sansio`]: the [`Io`] effect sink and [`Input`] event type that
//!   protocol state machines are written against, so the same
//!   `(state, input) → effects` transition functions run under the
//!   deterministic simulator today and real sockets later. [`StepIo`]
//!   is the engine-free driver used by pure tests.

pub mod codec;
pub mod sansio;

pub use codec::{
    get_bool, get_bytes, get_len, get_u128, get_u16, get_u32, get_u64, get_u8, get_vec, put_bool,
    put_bytes, put_u128, put_u16, put_u32, put_u64, put_u8, put_vec, tail, DecodeError, Wire,
    WIRE_VERSION,
};
pub use sansio::{Effect, Input, Io, Proximity, StepIo};

// The handles node logic needs, re-exported so a sans-io protocol crate
// can name them without depending on the simulator.
pub use past_crypto::rng::Rng;
pub use past_trace::{OpId, TraceConfig, Tracer};

/// A network address. In the simulator this is a topology slot index; a
/// socket transport would map it to a peer table entry.
pub type Addr = usize;
