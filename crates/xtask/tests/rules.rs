//! Fixture tests for every lint rule family: one fixture that must
//! trigger the rule and one that must pass. Fixtures live in raw
//! strings (the lexer strips literals, so this file cannot flag
//! itself when the workspace is scanned).
//!
//! The workflow for adding a rule is documented in EXPERIMENTS.md:
//! write the trigger fixture first, watch it fail, implement the
//! rule, then add the pass fixture to pin down the false-positive
//! boundary.

use xtask::{analyze_sources, check_manifest, AnalyzeOpts, Diagnostic};

/// Run the analyzer on a single fixture file.
fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
    analyze_sources(&[(path, src)], &AnalyzeOpts::default())
}

/// Rule IDs reported for a fixture.
fn rules(path: &str, src: &str) -> Vec<&'static str> {
    diags(path, src).into_iter().map(|d| d.rule).collect()
}

fn assert_clean(path: &str, src: &str) {
    let found = diags(path, src);
    assert!(found.is_empty(), "expected clean, got: {found:?}");
}

// ------------------------------------------------------------------ H1

#[test]
fn h1_triggers_on_registry_dependency() {
    let src = "[package]\nname = \"demo\"\n\n[dependencies]\nserde = \"1\"\n";
    let v = check_manifest("crates/demo/Cargo.toml", src);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "H1");
    assert_eq!(v[0].line, 5);
}

#[test]
fn h1_passes_path_and_workspace_deps() {
    let src = "[dependencies]\npast-core = { path = \"../core\" }\n\
               past-trace.workspace = true\n\n[dependencies.past-netsim]\n\
               workspace = true\n";
    assert!(check_manifest("crates/demo/Cargo.toml", src).is_empty());
}

// ------------------------------------------------------------------ D1

#[test]
fn d1_triggers_on_wall_clock() {
    let src = "use std::time::Instant;\nfn f() -> u64 { let t = Instant::now(); 0 }\n";
    let r = rules("crates/netsim/src/x.rs", src);
    assert_eq!(r, vec!["D1", "D1"]);
}

#[test]
fn d1_passes_comments_strings_and_sim_time() {
    let src = "// std::time::Instant is banned here\n\
               fn f(now: SimTime) -> &'static str { \"Instant::now\" }\n";
    assert_clean("crates/netsim/src/x.rs", src);
}

// ------------------------------------------------------------------ D2

#[test]
fn d2_triggers_on_os_entropy() {
    let src = "fn f() { let mut r = rand::thread_rng(); }\nfn g() { OsRng.fill(); }\n";
    let r = rules("crates/sim/src/x.rs", src);
    assert_eq!(r, vec!["D2", "D2"]);
}

#[test]
fn d2_passes_seeded_rng() {
    let src = "fn f(rng: &mut SimRng) -> u64 { rng.next_u64() }\n";
    assert_clean("crates/sim/src/x.rs", src);
}

// ------------------------------------------------------------------ D3

#[test]
fn d3_triggers_on_hash_iteration_in_decision_crate() {
    let src = "use std::collections::HashMap;\n\
               struct S { entries: HashMap<u64, u64> }\n\
               impl S {\n\
                   fn total(&self) -> u64 { self.entries.values().sum() }\n\
                   fn walk(&self) { for (k, v) in &self.entries {} }\n\
               }\n";
    let r = rules("crates/pastry/src/x.rs", src);
    assert_eq!(r, vec!["D3", "D3"]);
}

/// The motivating case for the token-level engine: a method chain
/// split across lines, invisible to a line-oriented scanner.
#[test]
fn d3_triggers_on_multiline_chain() {
    let src = "use std::collections::HashMap;\n\
               struct S { pending: HashMap<u64, u64> }\n\
               impl S {\n\
                   fn total(&self) -> u64 {\n\
                       self.pending\n\
                           .values()\n\
                           .map(|v| v + 1)\n\
                           .sum()\n\
                   }\n\
               }\n";
    let d = diags("crates/core/src/x.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "D3");
    assert_eq!(d[0].line, 5, "diagnostic points at the chain head");
}

#[test]
fn d3_passes_btree_iteration_and_keyed_hash_access() {
    let src = "use std::collections::{BTreeMap, HashMap};\n\
               struct S { a: BTreeMap<u64, u64>, b: HashMap<u64, u64> }\n\
               impl S {\n\
                   fn total(&self) -> u64 { self.a.values().sum() }\n\
                   fn get(&self, k: u64) -> Option<&u64> { self.b.get(&k) }\n\
               }\n";
    assert_clean("crates/pastry/src/x.rs", src);
}

#[test]
fn d3_ignores_cfg_test_modules() {
    let src = "use std::collections::HashMap;\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn f(m: HashMap<u64, u64>) -> u64 { m.values().sum() }\n\
               }\n";
    assert_clean("crates/pastry/src/x.rs", src);
}

// ------------------------------------------------------------------ D4

#[test]
fn d4_triggers_on_hash_iteration_in_library_crate() {
    // trace is a library crate but not a decision crate: hash
    // iteration there is D4, not D3.
    let src = "use std::collections::HashMap;\n\
               struct S { m: HashMap<u64, u64> }\n\
               impl S { fn all(&self) -> u64 { self.m.values().sum() } }\n";
    let r = rules("crates/trace/src/x.rs", src);
    assert_eq!(r, vec!["D4"]);
}

#[test]
fn d4_triggers_on_partial_cmp_comparator() {
    let src = "fn f(mut v: Vec<f64>) -> Vec<f64> {\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   v\n\
               }\n";
    let r = rules("crates/trace/src/x.rs", src);
    assert_eq!(r, vec!["D4"]);
}

#[test]
fn d4_triggers_on_multiline_partial_cmp() {
    let src = "fn pick(v: &[(f64, u32)]) -> Option<&(f64, u32)> {\n\
                   v.iter().min_by(|a, b| {\n\
                       a.0\n\
                           .partial_cmp(&b.0)\n\
                           .unwrap()\n\
                   })\n\
               }\n";
    let r = rules("crates/workload/src/x.rs", src);
    assert_eq!(r, vec!["D4"]);
}

#[test]
fn d4_triggers_on_bare_instant_field() {
    // A struct field of type Instant, with no `Instant::now()` call:
    // D1's path patterns miss it, the taint rule does not.
    let src = "pub struct Timer { started: Instant }\n";
    let r = rules("crates/trace/src/x.rs", src);
    assert_eq!(r, vec!["D4"]);
}

#[test]
fn d4_passes_total_cmp_and_btree() {
    let src = "use std::collections::BTreeMap;\n\
               fn f(mut v: Vec<f64>, m: &BTreeMap<u64, u64>) -> u64 {\n\
                   v.sort_by(f64::total_cmp);\n\
                   m.values().sum()\n\
               }\n";
    assert_clean("crates/trace/src/x.rs", src);
}

#[test]
fn d4_does_not_double_report_d1_matches() {
    // `Instant::now()` is D1; the taint rule must not stack a second
    // diagnostic on the same tokens.
    let src = "fn f() { let t = Instant::now(); }\n";
    let r = rules("crates/trace/src/x.rs", src);
    assert_eq!(r, vec!["D1"]);
}

// ------------------------------------------------------------------ P1

#[test]
fn p1_triggers_on_panics_in_protocol_core() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               fn g(x: Option<u32>) -> u32 { x.expect(\"set\") }\n\
               fn h() { panic!(\"no\"); }\n";
    let r = rules("crates/core/src/x.rs", src);
    assert_eq!(r, vec!["P1", "P1", "P1"]);
}

#[test]
fn p1_passes_outside_scope_and_in_tests() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_clean("crates/netsim/src/x.rs", src);
    let src = "#[cfg(test)]\nmod tests {\n    fn f() { panic!(\"fine\"); }\n}\n";
    assert_clean("crates/core/src/x.rs", src);
}

// ------------------------------------------------------------------ U1

#[test]
fn u1_triggers_on_unsafe_anywhere_even_tests() {
    let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(rules("crates/netsim/tests/x.rs", src), vec!["U1"]);
}

#[test]
fn u1_passes_mentions_in_strings() {
    let src = "const NOTE: &str = \"unsafe is banned\";\n";
    assert_clean("crates/netsim/src/x.rs", src);
}

// ------------------------------------------------------------------ O1

#[test]
fn o1_triggers_on_println_in_library_code() {
    let src = "fn f() { println!(\"debug\"); }\nfn g() { dbg!(42); }\n";
    assert_eq!(rules("crates/core/src/x.rs", src), vec!["O1", "O1"]);
}

#[test]
fn o1_passes_bins_tests_and_main() {
    let src = "fn main() { println!(\"report\"); }\n";
    assert_clean("crates/sim/src/bin/tool.rs", src);
    assert_clean("crates/sim/src/main.rs", src);
    assert_clean("crates/sim/tests/t.rs", src);
}

// ------------------------------------------------------------------ E1

#[test]
fn e1_triggers_on_discarded_call_result() {
    let src = "fn f(s: &mut Store) { let _ = s.insert(1, 2); }\n";
    assert_eq!(rules("crates/trace/src/x.rs", src), vec!["E1"]);
}

#[test]
fn e1_triggers_on_multiline_discard() {
    let src = "fn f(s: &mut Store) {\n\
                   let _ = s\n\
                       .insert(1, 2);\n\
               }\n";
    assert_eq!(rules("crates/trace/src/x.rs", src), vec!["E1"]);
}

#[test]
fn e1_passes_pure_binds_and_tests() {
    // Destructuring-style discards with no call are deliberate.
    let src = "fn f(k: u32, v: u32) { let _ = (k, v); let _ = k; }\n";
    assert_clean("crates/trace/src/x.rs", src);
    let src = "#[cfg(test)]\nmod tests {\n    fn f(s: &mut Store) { let _ = s.insert(1, 2); }\n}\n";
    assert_clean("crates/trace/src/x.rs", src);
}

// ------------------------------------------------------------------ L1

#[test]
fn l1_triggers_on_engine_reach_through() {
    let src = "fn step(sim: &mut PastrySim<App, Mesh>) { sim.engine.step(); }\n";
    assert_eq!(rules("crates/core/src/x.rs", src), vec!["L1"]);
}

#[test]
fn l1_triggers_on_engine_types_and_module_paths() {
    let src = "use past_netsim::engine::Engine;\n";
    let r = rules("crates/pastry/src/x.rs", src);
    assert_eq!(r, vec!["L1"], "one diagnostic per line, not per pattern");
    let src = "pub struct Sim { eng: Engine<Node, Mesh> }\n";
    assert_eq!(rules("crates/pastry/src/x.rs", src), vec!["L1"]);
}

#[test]
fn l1_triggers_on_sharded_engine_and_wheel() {
    let src = "use past_netsim::shard::ShardedEngine;\n";
    assert_eq!(rules("crates/pastry/src/x.rs", src), vec!["L1"]);
    let src = "fn f(cfg: ShardConfig) -> ShardConfig { cfg }\n";
    assert_eq!(rules("crates/core/src/x.rs", src), vec!["L1"]);
    let src = "use past_netsim::wheel::TimerWheel;\n";
    assert_eq!(rules("crates/pastry/src/x.rs", src), vec!["L1"]);
}

#[test]
fn l1_triggers_on_backend_module_path() {
    let src = "use past_netsim::backend::SimBackend;\n";
    assert_eq!(rules("crates/pastry/src/x.rs", src), vec!["L1"]);
    let src = "use netsim::backend::WindowTooWide;\n";
    assert_eq!(rules("crates/core/src/x.rs", src), vec!["L1"]);
}

#[test]
fn l1_passes_vocabulary_types_and_other_crates() {
    // Addr/SimTime/OpId/Message are the sanctioned sans-io surface.
    let src = "use past_netsim::{Addr, Message, OpId, SimTime};\n\
               fn f(a: Addr, t: SimTime) -> Addr { a }\n";
    assert_clean("crates/pastry/src/x.rs", src);
    // The same engine-driving code is fine outside the protocol crates.
    let src = "fn step(sim: &mut Harness) { sim.engine.step(); }\n";
    assert_clean("crates/sim/src/x.rs", src);
}

#[test]
fn l1_passes_backend_abstraction_reexports() {
    // Backend-generic protocol code is sanctioned as long as it goes
    // through the crate-root re-exports, not the backend module path.
    let src = "use past_netsim::{SimBackend, WindowTooWide};\n\
               fn f<B: SimBackend<N, Topo = T>>(b: &B) -> usize { b.len() }\n";
    assert_clean("crates/pastry/src/x.rs", src);
    let src = "use past_netsim::Backend;\n\
               fn pick(b: Backend) -> Backend { b }\n";
    assert_clean("crates/core/src/x.rs", src);
}

// ------------------------------------------------------------------ M1

/// A complete, hygienic message enum: every variant named in every
/// covering fn (the codec triple plus `kind_id`), KINDS arity matches.
const M1_CLEAN: &str = "pub enum ChordMsg { Lookup(Q), Probe }\n\
    impl Message for ChordMsg {\n\
        const KINDS: &'static [&'static str] = &[\"lookup\", \"probe\"];\n\
        fn kind_id(&self) -> usize {\n\
            match self { ChordMsg::Lookup(_) => 0, ChordMsg::Probe => 1 }\n\
        }\n\
    }\n\
    impl Wire for ChordMsg {\n\
        fn encode(&self, out: &mut Vec<u8>) {\n\
            match self { ChordMsg::Lookup(_) => out.push(0), ChordMsg::Probe => out.push(1) }\n\
        }\n\
        fn decode(buf: &[u8]) -> Result<(ChordMsg, usize), DecodeError> {\n\
            match buf[1] { 0 => Ok((ChordMsg::Lookup(q()), 2)), _ => Ok((ChordMsg::Probe, 2)) }\n\
        }\n\
        fn encoded_len(&self) -> u64 {\n\
            match self { ChordMsg::Lookup(_) => 39, ChordMsg::Probe => 2 }\n\
        }\n\
    }\n";

#[test]
fn m1_passes_full_coverage() {
    assert_clean("crates/baselines/src/x.rs", M1_CLEAN);
}

#[test]
fn m1_triggers_on_wildcard_hidden_variant() {
    // Wildcard hides `Probe` from `kind_id`; everything else is covered.
    let src = M1_CLEAN.replace(
        "ChordMsg::Lookup(_) => 0, ChordMsg::Probe => 1",
        "ChordMsg::Lookup(_) => 0, _ => 1",
    );
    let d = diags("crates/baselines/src/x.rs", &src);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "M1");
    assert!(d[0].msg.contains("ChordMsg::Probe"), "{}", d[0].msg);
    assert!(d[0].msg.contains("kind_id"), "{}", d[0].msg);
}

#[test]
fn m1_triggers_on_variant_missing_from_codec_fn() {
    // A decode that never constructs `Probe` (e.g. maps its tag onto
    // `Lookup`) is exactly the drift the codec obligation exists to
    // catch: the variant would encode but silently stop decoding.
    let src = M1_CLEAN.replace(
        "_ => Ok((ChordMsg::Probe, 2))",
        "_ => Ok((ChordMsg::Lookup(q()), 2))",
    );
    let d = diags("crates/baselines/src/x.rs", &src);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "M1");
    assert!(d[0].msg.contains("ChordMsg::Probe"), "{}", d[0].msg);
    assert!(d[0].msg.contains("decode"), "{}", d[0].msg);
}

#[test]
fn m1_triggers_on_missing_covering_fn() {
    // Strip the whole `impl Wire` block: all three codec obligations
    // (`encode`, `decode`, `encoded_len`) are reported missing.
    let src = &M1_CLEAN[..M1_CLEAN.find("impl Wire").unwrap()];
    let d = diags("crates/baselines/src/x.rs", src);
    assert_eq!(d.len(), 3, "{d:?}");
    for (x, fname) in d.iter().zip(["encode", "decode", "encoded_len"]) {
        assert_eq!(x.rule, "M1");
        assert!(x.msg.contains(fname), "{}", x.msg);
    }
}

#[test]
fn m1_triggers_on_kinds_arity_mismatch() {
    let src = M1_CLEAN.replace("&[\"lookup\", \"probe\"]", "&[\"lookup\"]");
    let d = diags("crates/baselines/src/x.rs", &src);
    assert_eq!(d.len(), 1);
    assert!(d[0].msg.contains("1 labels"), "{}", d[0].msg);
    assert!(d[0].msg.contains("2 variants"), "{}", d[0].msg);
}

/// M1 is cross-file: the enum and its impls may live in different
/// files, and `Self::Variant` paths count as coverage.
#[test]
fn m1_is_cross_file_and_accepts_self_paths() {
    let enum_file = "pub enum ChordMsg { Lookup(Q), Probe }\n";
    let impl_file = "impl Message for ChordMsg {\n\
        const KINDS: &'static [&'static str] = &[\"lookup\", \"probe\"];\n\
        fn kind_id(&self) -> usize {\n\
            match self { Self::Lookup(_) => 0, Self::Probe => 1 }\n\
        }\n\
    }\n\
    impl Wire for ChordMsg {\n\
        fn encode(&self, out: &mut Vec<u8>) {\n\
            match self { Self::Lookup(_) => out.push(0), Self::Probe => out.push(1) }\n\
        }\n\
        fn decode(buf: &[u8]) -> Result<(ChordMsg, usize), DecodeError> {\n\
            match buf[1] { 0 => Ok((Self::Lookup(q()), 2)), _ => Ok((Self::Probe, 2)) }\n\
        }\n\
        fn encoded_len(&self) -> u64 {\n\
            match self { Self::Lookup(_) => 39, Self::Probe => 2 }\n\
        }\n\
    }\n";
    let d = analyze_sources(
        &[
            ("crates/baselines/src/chord.rs", enum_file),
            ("crates/baselines/src/chord_impl.rs", impl_file),
        ],
        &AnalyzeOpts::default(),
    );
    assert!(d.is_empty(), "expected clean, got: {d:?}");
}

#[test]
fn m1_requires_tracked_enums_in_workspace_mode() {
    let d = analyze_sources(
        &[("crates/baselines/src/x.rs", "fn f() {}\n")],
        &AnalyzeOpts {
            require_enums: true,
        },
    );
    // All four tracked enums are missing from this tiny "workspace".
    assert_eq!(d.len(), 4);
    assert!(d.iter().all(|x| x.rule == "M1"));
}

// ---------------------------------------------------- spans & ordering

#[test]
fn diagnostics_carry_spans_and_sort_stably() {
    let src = "fn f() { let t = Instant::now(); }\nfn g() { unsafe {} }\n";
    let d = diags("crates/netsim/src/x.rs", src);
    assert_eq!(d.len(), 2);
    assert_eq!((d[0].rule, d[0].line, d[0].col), ("D1", 1, 18));
    assert_eq!((d[1].rule, d[1].line), ("U1", 2));
    assert!(d[1].col > 1);
}
