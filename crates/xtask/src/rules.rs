//! The lint rules, evaluated over spanned token streams.
//!
//! Each rule family has an ID (`D1`, `L1`, …) that diagnostics carry
//! and `allow.toml` entries reference. The full catalog — rationale,
//! scope, and suppression mechanics per rule — lives in DESIGN.md §9.
//!
//! Scopes used below:
//! - *everywhere*: every `.rs` file in the workspace, tests included
//! - *decision crates*: crates whose control flow steers the
//!   simulation ([`DECISION_CRATES`]), non-test code only
//! - *library code*: `crates/*/src/**` excluding `src/bin/` and
//!   `#[cfg(test)]` items — code that ships in a library target
//! - *protocol crates*: `crates/core/src/**` and
//!   `crates/pastry/src/**` (the L1 layering fence)

use crate::lexer::{lex, Lexed, Tok};
use crate::parse::{parse, ItemMap};
use std::collections::{BTreeMap, BTreeSet};

/// A spanned lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID, e.g. `"D4"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 for workspace-level findings).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    pub msg: String,
}

/// Options for [`analyze_sources`].
pub struct AnalyzeOpts {
    /// Require every tracked message enum (M1) to exist somewhere in
    /// the input set. True for real workspace runs; fixture tests
    /// pass false so a one-file fixture isn't asked to define
    /// `PastMsg`.
    pub require_enums: bool,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            require_enums: false,
        }
    }
}

/// Crates whose control flow steers the simulation: hash-order
/// iteration here (D3) changes results, not just aesthetics.
pub const DECISION_CRATES: &[&str] = &[
    "crates/pastry/",
    "crates/core/",
    "crates/netsim/",
    "crates/sim/",
    "crates/baselines/",
    "crates/invariants/",
];

/// Crates under the strict no-panic policy (P1).
pub const PANIC_POLICY_PATHS: &[&str] = &["crates/pastry/src/", "crates/core/src/"];

/// Protocol crates fenced off from engine internals (L1).
pub const L1_SCOPE: &[&str] = &["crates/core/src/", "crates/pastry/src/"];

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Integration tests, benches, and example binaries: exempt from
/// library-code rules.
fn is_test_file(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.starts_with("tests/")
}

/// Library code proper: `crates/*/src/**` minus binary entry points
/// (`src/bin/`, `src/main.rs`), which are allowed to print and own
/// their error handling.
fn is_library_code(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.contains("/src/bin/")
        && !path.ends_with("/src/main.rs")
}

/// Per-file context shared by the rule passes.
struct FileCx<'a> {
    path: &'a str,
    lx: &'a Lexed<'a>,
    items: &'a ItemMap,
    /// True when the whole file is test/bench/example code.
    test_file: bool,
}

impl<'a> FileCx<'a> {
    fn t(&self, i: usize) -> &'a str {
        self.lx.text(i)
    }

    /// Token `i` is exempt from non-test rules: the file is a test
    /// file, or the token sits inside a `#[cfg(test)]` item.
    fn in_test(&self, i: usize) -> bool {
        self.test_file || self.items.in_test(i)
    }

    /// Does the token sequence starting at `i` spell out `pat`?
    fn seq(&self, i: usize, pat: &[&str]) -> bool {
        pat.iter().enumerate().all(|(k, p)| self.t(i + k) == *p)
    }

    fn is_ident(&self, i: usize) -> bool {
        self.lx.kind(i) == Some(Tok::Ident)
    }

    fn diag(&self, rule: &'static str, i: usize, msg: String) -> Diagnostic {
        let (line, col) = self
            .lx
            .toks
            .get(i)
            .map(|t| (t.line, t.col))
            .unwrap_or((0, 0));
        Diagnostic {
            rule,
            path: self.path.to_string(),
            line,
            col,
            msg,
        }
    }
}

/// Emit at most one diagnostic per (rule, line).
struct LineDedup {
    seen: BTreeSet<(&'static str, u32)>,
}

impl LineDedup {
    fn new() -> Self {
        LineDedup {
            seen: BTreeSet::new(),
        }
    }

    fn push(&mut self, out: &mut Vec<Diagnostic>, d: Diagnostic) {
        if self.seen.insert((d.rule, d.line)) {
            out.push(d);
        }
    }
}

// ---------------------------------------------------------------- D1/D2

const D1_PATHS: &[&[&str]] = &[
    &["std", ":", ":", "time", ":", ":", "Instant"],
    &["std", ":", ":", "time", ":", ":", "SystemTime"],
    &["time", ":", ":", "Instant"],
    &["time", ":", ":", "SystemTime"],
    &["Instant", ":", ":", "now"],
    &["SystemTime", ":", ":", "now"],
];

/// D1: wall-clock time. Applies everywhere; returns the set of token
/// indices claimed by a match so D4's bare-ident time check doesn't
/// double-report the same tokens.
fn rule_d1(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) -> BTreeSet<usize> {
    let mut claimed = BTreeSet::new();
    let mut dedup = LineDedup::new();
    for i in 0..cx.lx.len() {
        for pat in D1_PATHS {
            if cx.is_ident(i) && cx.seq(i, pat) {
                for k in 0..pat.len() {
                    claimed.insert(i + k);
                }
                dedup.push(
                    out,
                    cx.diag(
                        "D1",
                        i,
                        format!(
                            "wall-clock `{}` breaks determinism; use sim time \
                             (`past_netsim::SimTime`)",
                            pat.join("")
                        ),
                    ),
                );
            }
        }
    }
    claimed
}

const D2_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// D2: OS entropy. Applies everywhere.
fn rule_d2(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let mut dedup = LineDedup::new();
    for i in 0..cx.lx.len() {
        if !cx.is_ident(i) {
            continue;
        }
        let t = cx.t(i);
        if D2_IDENTS.contains(&t) {
            dedup.push(
                out,
                cx.diag(
                    "D2",
                    i,
                    format!("OS entropy `{t}` breaks reproducibility; use the seeded sim RNG"),
                ),
            );
        } else if cx.seq(i, &["rand", ":", ":", "random"]) {
            dedup.push(
                out,
                cx.diag(
                    "D2",
                    i,
                    "OS entropy `rand::random` breaks reproducibility; use the seeded sim RNG"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- D3/D4 hash order

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Names bound to `HashMap`/`HashSet` values in non-test code, found
/// via `name: HashMap<…>` annotations and
/// `name = HashMap::new()`-style initializers.
fn hash_bound_names(cx: &FileCx<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..cx.lx.len() {
        let t = cx.t(i);
        if (t != "HashMap" && t != "HashSet") || !cx.is_ident(i) || cx.items.in_test(i) {
            continue;
        }
        // `name : HashMap` (struct field or let annotation). Path
        // segments (`collections::HashMap`) don't match because the
        // token two back is another `:`, not an identifier.
        if i >= 2 && cx.t(i - 1) == ":" && cx.is_ident(i - 2) {
            names.insert(cx.t(i - 2).to_string());
        }
        // `name = HashMap::new()` / `with_capacity` / `default` /
        // `from`, walking back over an optional `mut`.
        if i >= 2 && cx.t(i - 1) == "=" {
            let mut j = i - 2;
            if cx.t(j) == "mut" && j >= 1 {
                j -= 1;
            }
            if cx.is_ident(j) {
                names.insert(cx.t(j).to_string());
            }
        }
    }
    names
}

/// Shared engine for D3 (decision crates) and D4 (other library
/// crates): flag order-dependent iteration over names bound to
/// std hash containers. Token-level, so multi-line method chains
/// (`self.map\n.values()\n.sum()`) are caught.
fn rule_hash_iteration(cx: &FileCx<'_>, rule: &'static str, out: &mut Vec<Diagnostic>) {
    let names = hash_bound_names(cx);
    if names.is_empty() {
        return;
    }
    let mut dedup = LineDedup::new();
    let remedy = "iterate a BTreeMap/BTreeSet (or sort first) so order is deterministic";
    for i in 0..cx.lx.len() {
        if cx.in_test(i) {
            continue;
        }
        // `name . method (`
        if cx.is_ident(i)
            && names.contains(cx.t(i))
            && cx.t(i + 1) == "."
            && HASH_ITER_METHODS.contains(&cx.t(i + 2))
            && cx.t(i + 3) == "("
        {
            dedup.push(
                out,
                cx.diag(
                    rule,
                    i,
                    format!(
                        "hash-order iteration `{}.{}()` is nondeterministic; {remedy}",
                        cx.t(i),
                        cx.t(i + 2)
                    ),
                ),
            );
        }
        // `for pat in [&][mut] [self.] name {`
        if cx.t(i) == "in" && cx.is_ident(i) {
            let mut j = i + 1;
            if cx.t(j) == "&" {
                j += 1;
            }
            if cx.t(j) == "mut" {
                j += 1;
            }
            if cx.t(j) == "self" && cx.t(j + 1) == "." {
                j += 2;
            }
            if cx.is_ident(j) && names.contains(cx.t(j)) && cx.t(j + 1) == "{" {
                dedup.push(
                    out,
                    cx.diag(
                        rule,
                        j,
                        format!(
                            "hash-order iteration `for … in {}` is nondeterministic; {remedy}",
                            cx.t(j)
                        ),
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- D4 float order / time

const ORDER_ADAPTERS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
    "select_nth_unstable_by",
];

/// D4 (float-keyed ordering): `partial_cmp` inside the argument of an
/// ordering adapter. `partial_cmp` returns `None` for NaN, so these
/// comparators either panic or — worse — silently produce
/// order-dependent results; `f64::total_cmp` is the deterministic
/// replacement.
fn rule_d4_float_order(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let mut dedup = LineDedup::new();
    for i in 0..cx.lx.len() {
        if cx.in_test(i) || cx.t(i) != "." || !ORDER_ADAPTERS.contains(&cx.t(i + 1)) {
            continue;
        }
        if cx.t(i + 2) != "(" {
            continue;
        }
        // Scan the balanced argument span for `partial_cmp`.
        let mut depth = 0i64;
        let mut j = i + 2;
        while j < cx.lx.len() {
            match cx.t(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "partial_cmp" => {
                    dedup.push(
                        out,
                        cx.diag(
                            "D4",
                            i + 1,
                            format!(
                                "`partial_cmp` inside `{}` is not a total order (NaN); \
                                 use `f64::total_cmp`",
                                cx.t(i + 1)
                            ),
                        ),
                    );
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// D4 (wall-clock taint): bare `Instant`/`SystemTime` identifiers in
/// library code that D1's path patterns did not already claim — e.g.
/// a struct field of type `Instant` imported once at the top.
fn rule_d4_time(cx: &FileCx<'_>, claimed: &BTreeSet<usize>, out: &mut Vec<Diagnostic>) {
    let mut dedup = LineDedup::new();
    for i in 0..cx.lx.len() {
        if cx.in_test(i) || claimed.contains(&i) || !cx.is_ident(i) {
            continue;
        }
        let t = cx.t(i);
        if t == "Instant" || t == "SystemTime" {
            dedup.push(
                out,
                cx.diag(
                    "D4",
                    i,
                    format!(
                        "`{t}` in library code taints determinism; thread sim time through \
                         instead"
                    ),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- P1/U1/O1

const P1_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// P1: panics in the storage/routing core.
fn rule_p1(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let mut dedup = LineDedup::new();
    let remedy = "return an error or document the invariant in an expect-free way";
    for i in 0..cx.lx.len() {
        if cx.in_test(i) {
            continue;
        }
        let t = cx.t(i);
        if t == "." && cx.t(i + 2) == "(" {
            let m = cx.t(i + 1);
            if m == "unwrap" || m == "expect" {
                dedup.push(
                    out,
                    cx.diag(
                        "P1",
                        i + 1,
                        format!("`.{m}()` can panic in the protocol core; {remedy}"),
                    ),
                );
            }
        } else if cx.is_ident(i) && P1_MACROS.contains(&t) && cx.t(i + 1) == "!" {
            dedup.push(
                out,
                cx.diag("P1", i, format!("`{t}!` in the protocol core; {remedy}")),
            );
        }
    }
}

/// U1: `unsafe` anywhere.
fn rule_u1(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let mut dedup = LineDedup::new();
    for i in 0..cx.lx.len() {
        if cx.is_ident(i) && cx.t(i) == "unsafe" {
            dedup.push(
                out,
                cx.diag(
                    "U1",
                    i,
                    "`unsafe` is banned in this workspace (no FFI, no manual memory)".to_string(),
                ),
            );
        }
    }
}

const O1_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// O1: stdout/stderr noise from library code.
fn rule_o1(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let mut dedup = LineDedup::new();
    for i in 0..cx.lx.len() {
        if cx.in_test(i) {
            continue;
        }
        let t = cx.t(i);
        if cx.is_ident(i) && O1_MACROS.contains(&t) && cx.t(i + 1) == "!" {
            dedup.push(
                out,
                cx.diag(
                    "O1",
                    i,
                    format!("`{t}!` in library code; return data or use the trace layer instead"),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- E1

/// E1: `let _ = some_call(…);` in library code silently discards a
/// result (typically a `#[must_use]` `Result`). Pure binds like
/// `let _ = (a, b);` are fine — only RHSes containing a call are
/// flagged.
fn rule_e1(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let mut dedup = LineDedup::new();
    for i in 0..cx.lx.len() {
        if cx.in_test(i) || cx.t(i) != "let" || !cx.is_ident(i) {
            continue;
        }
        if cx.t(i + 1) != "_" || cx.t(i + 2) != "=" {
            continue;
        }
        // Scan the RHS to its terminating `;` (balanced, so closures
        // with `;` inside don't end the scan early) looking for a
        // call: `(` preceded by an ident, `!`, `)`, `]`, or `>`.
        let mut depth = 0i64;
        let mut j = i + 3;
        let mut has_call = false;
        while j < cx.lx.len() {
            match cx.t(j) {
                "(" | "[" | "{" => {
                    if cx.t(j) == "("
                        && j > 0
                        && (cx.is_ident(j - 1) || matches!(cx.t(j - 1), "!" | ")" | "]" | ">"))
                    {
                        has_call = true;
                    }
                    depth += 1;
                }
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if has_call {
            dedup.push(
                out,
                cx.diag(
                    "E1",
                    i,
                    "`let _ =` silently drops a call result in library code; handle the \
                     value or allowlist with a reason"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- L1

const L1_ENGINE_TYPES: &[&str] = &[
    "Engine",
    "NetStats",
    "FaultConfig",
    "EventQueue",
    "ShardedEngine",
    "ShardConfig",
    "TimerWheel",
];
const L1_MODULE_PATHS: &[&[&str]] = &[
    &["past_netsim", ":", ":", "engine"],
    &["past_netsim", ":", ":", "event"],
    &["past_netsim", ":", ":", "shard"],
    &["past_netsim", ":", ":", "wheel"],
    &["past_netsim", ":", ":", "backend"],
    &["netsim", ":", ":", "engine"],
    &["netsim", ":", ":", "shard"],
    &["netsim", ":", ":", "backend"],
];

/// L1: protocol crates must stay sans-io — they may use netsim's
/// vocabulary types (`Addr`, `SimTime`, `OpId`, the `Message` /
/// `NodeLogic` traits) and the backend abstraction's crate-root
/// re-exports (`SimBackend`, `Backend`, `WindowTooWide`, for code
/// generic over the sequential and sharded engines) but not drive or
/// inspect a concrete engine, nor spell out `past_netsim::backend`
/// module paths. The two sim adapters are the explicit, allowlisted
/// exceptions.
fn rule_l1(cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
    let mut dedup = LineDedup::new();
    for i in 0..cx.lx.len() {
        if cx.in_test(i) {
            continue;
        }
        let t = cx.t(i);
        if cx.is_ident(i) && L1_ENGINE_TYPES.contains(&t) {
            dedup.push(
                out,
                cx.diag(
                    "L1",
                    i,
                    format!(
                        "engine-internal type `{t}` referenced from a protocol crate; keep \
                         protocol logic sans-io and drive the engine from the sim adapter"
                    ),
                ),
            );
            continue;
        }
        for pat in L1_MODULE_PATHS {
            if cx.is_ident(i) && cx.seq(i, pat) {
                dedup.push(
                    out,
                    cx.diag(
                        "L1",
                        i,
                        format!(
                            "protocol crate reaches into `{}::{}` internals; depend on the \
                             crate-root re-exports only",
                            pat[0],
                            pat[pat.len() - 1]
                        ),
                    ),
                );
            }
        }
        if t == "." && cx.t(i + 1) == "engine" {
            dedup.push(
                out,
                cx.diag(
                    "L1",
                    i + 1,
                    "reaching through the sim adapter's `engine` field from protocol code; \
                     add a typed accessor on the adapter instead"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- M1

/// What each tracked message enum must cover. `kinds` says a `KINDS`
/// label table with one entry per variant is required.
struct MsgSpec {
    enum_name: &'static str,
    cover_fns: &'static [&'static str],
    kinds: bool,
}

/// The wire-message enums under M1 hygiene. Since the byte codec
/// became the single source of wire truth (`wire_size()` and
/// `payload_size()` both delegate to `encoded_len()`), the covered
/// fns are the codec triple — `encode`/`decode`/`encoded_len` — plus
/// trace attribution (`op_id`) and engine kind labels (`kind_id`).
/// `PastryMsg` implements the engine's `Message` trait directly;
/// `PastMsg` rides inside it as a payload.
const MESSAGE_SPECS: &[MsgSpec] = &[
    MsgSpec {
        enum_name: "PastryMsg",
        cover_fns: &["kind_id", "encode", "decode", "encoded_len", "op_id"],
        kinds: true,
    },
    MsgSpec {
        enum_name: "PastMsg",
        cover_fns: &["encode", "decode", "encoded_len", "op_id"],
        kinds: false,
    },
    MsgSpec {
        enum_name: "ChordMsg",
        cover_fns: &["kind_id", "encode", "decode", "encoded_len"],
        kinds: true,
    },
    MsgSpec {
        enum_name: "CanMsg",
        cover_fns: &["kind_id", "encode", "decode", "encoded_len"],
        kinds: true,
    },
];

/// Cross-file index of tracked enums, their covering fns, and KINDS
/// tables, accumulated over all non-test library files.
#[derive(Default)]
pub struct MsgIndex {
    /// enum name -> (path, line, variant names in declaration order)
    enums: BTreeMap<String, (String, u32, Vec<(String, u32)>)>,
    /// (self_ty, fn name) -> (path, line, variants mentioned as
    /// `Ty::V` or `Self::V` in the body)
    fns: BTreeMap<(String, String), (String, u32, BTreeSet<String>)>,
    /// self_ty -> (path, line, label count)
    kinds: BTreeMap<String, (String, u32, usize)>,
}

fn tracked(name: &str) -> Option<&'static MsgSpec> {
    MESSAGE_SPECS.iter().find(|s| s.enum_name == name)
}

impl MsgIndex {
    fn collect(&mut self, path: &str, lx: &Lexed<'_>, items: &ItemMap) {
        if is_test_file(path) {
            return;
        }
        for e in &items.enums {
            if tracked(&e.name).is_none() {
                continue;
            }
            self.enums.entry(e.name.clone()).or_insert_with(|| {
                (
                    path.to_string(),
                    e.line,
                    e.variants
                        .iter()
                        .map(|v| (v.name.clone(), v.line))
                        .collect(),
                )
            });
        }
        for f in &items.impl_fns {
            let Some(spec) = tracked(&f.self_ty) else {
                continue;
            };
            if !spec.cover_fns.contains(&f.name.as_str()) {
                continue;
            }
            // Variants referenced in the body as `Ty::V` or `Self::V`.
            let mut mentioned = BTreeSet::new();
            for i in f.body.0..f.body.1 {
                let head = lx.text(i);
                if (head == f.self_ty || head == "Self")
                    && lx.text(i + 1) == ":"
                    && lx.text(i + 2) == ":"
                    && lx.kind(i + 3) == Some(Tok::Ident)
                    && i + 3 < f.body.1
                {
                    mentioned.insert(lx.text(i + 3).to_string());
                }
            }
            self.fns
                .entry((f.self_ty.clone(), f.name.clone()))
                .and_modify(|(_, _, set)| set.extend(mentioned.iter().cloned()))
                .or_insert_with(|| (path.to_string(), f.line, mentioned));
        }
        for k in &items.kinds {
            if tracked(&k.self_ty).is_some() {
                self.kinds
                    .entry(k.self_ty.clone())
                    .or_insert_with(|| (path.to_string(), k.line, k.strings));
            }
        }
    }
}

/// M1: every variant of a tracked wire-message enum must be named in
/// each covering fn (wildcard `_` arms hide new variants from size
/// accounting and trace attribution), and `KINDS` tables must have
/// exactly one label per variant.
fn check_messages(index: &MsgIndex, opts: &AnalyzeOpts, out: &mut Vec<Diagnostic>) {
    for spec in MESSAGE_SPECS {
        let Some((epath, eline, variants)) = index.enums.get(spec.enum_name) else {
            if opts.require_enums {
                out.push(Diagnostic {
                    rule: "M1",
                    path: "<workspace>".to_string(),
                    line: 0,
                    col: 0,
                    msg: format!(
                        "tracked message enum `{}` not found in any library crate; update \
                         MESSAGE_SPECS in crates/xtask/src/rules.rs if it moved or was renamed",
                        spec.enum_name
                    ),
                });
            }
            continue;
        };
        for fname in spec.cover_fns {
            match index
                .fns
                .get(&(spec.enum_name.to_string(), fname.to_string()))
            {
                None => out.push(Diagnostic {
                    rule: "M1",
                    path: epath.clone(),
                    line: *eline,
                    col: 1,
                    msg: format!(
                        "message enum `{}` has no `{fname}()` impl covering its variants",
                        spec.enum_name
                    ),
                }),
                Some((fpath, fline, mentioned)) => {
                    for (v, _) in variants {
                        if !mentioned.contains(v) {
                            out.push(Diagnostic {
                                rule: "M1",
                                path: fpath.clone(),
                                line: *fline,
                                col: 1,
                                msg: format!(
                                    "variant `{}::{v}` is not named in `{fname}()`; wildcard \
                                     or default arms hide new variants — name every variant \
                                     explicitly",
                                    spec.enum_name
                                ),
                            });
                        }
                    }
                }
            }
        }
        if spec.kinds {
            match index.kinds.get(spec.enum_name) {
                None => out.push(Diagnostic {
                    rule: "M1",
                    path: epath.clone(),
                    line: *eline,
                    col: 1,
                    msg: format!(
                        "message enum `{}` has no `KINDS` label table",
                        spec.enum_name
                    ),
                }),
                Some((kpath, kline, n)) if *n != variants.len() => out.push(Diagnostic {
                    rule: "M1",
                    path: kpath.clone(),
                    line: *kline,
                    col: 1,
                    msg: format!(
                        "`KINDS` has {n} labels but `{}` has {} variants",
                        spec.enum_name,
                        variants.len()
                    ),
                }),
                Some(_) => {}
            }
        }
    }
}

// ---------------------------------------------------------------- driver

/// Run every source rule over one file.
fn scan_file(path: &str, lx: &Lexed<'_>, items: &ItemMap, out: &mut Vec<Diagnostic>) {
    let cx = FileCx {
        path,
        lx,
        items,
        test_file: is_test_file(path),
    };
    let claimed = rule_d1(&cx, out);
    rule_d2(&cx, out);
    rule_u1(&cx, out);
    if in_any(path, DECISION_CRATES) && !cx.test_file {
        rule_hash_iteration(&cx, "D3", out);
    }
    if in_any(path, PANIC_POLICY_PATHS) {
        rule_p1(&cx, out);
    }
    if is_library_code(path) && !cx.test_file {
        rule_o1(&cx, out);
        rule_e1(&cx, out);
        rule_d4_float_order(&cx, out);
        rule_d4_time(&cx, &claimed, out);
        if !in_any(path, DECISION_CRATES) {
            // Decision crates already get the stricter D3 version.
            rule_hash_iteration(&cx, "D4", out);
        }
    }
    if in_any(path, L1_SCOPE) {
        rule_l1(&cx, out);
    }
}

/// Analyze a set of `(path, source)` pairs: per-file rules plus the
/// cross-file M1 message-hygiene pass. Diagnostics come back sorted
/// by (path, line, col, rule).
pub fn analyze_sources(files: &[(&str, &str)], opts: &AnalyzeOpts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut index = MsgIndex::default();
    for (path, src) in files {
        let lx = lex(src);
        let items = parse(&lx);
        scan_file(path, &lx, &items, &mut out);
        index.collect(path, &lx, &items);
    }
    check_messages(&index, opts, &mut out);
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    out
}
