//! CLI for the in-tree static-analysis pass.
//!
//! Usage: `cargo run -p xtask -- check [--root <dir>]`

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- check [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" if cmd.is_none() => cmd = Some("check"),
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if cmd != Some("check") {
        return usage();
    }
    // Default to the workspace root: two levels above this crate.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = match xtask::run_check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask check: error: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    for a in &report.unused_allows {
        eprintln!(
            "xtask check: warning: unused allowlist entry {} for {} ({})",
            a.rule, a.path, a.reason
        );
    }
    if report.violations.is_empty() {
        println!(
            "xtask check: OK ({} files scanned, {} allowlisted exception{})",
            report.files_scanned,
            report.suppressed,
            if report.suppressed == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask check: {} violation{} ({} files scanned)",
            report.violations.len(),
            if report.violations.len() == 1 {
                ""
            } else {
                "s"
            },
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
