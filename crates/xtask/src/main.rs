//! CLI for the in-tree static-analysis pass.
//!
//! Usage: `cargo run -p xtask -- check [--root <dir>]
//! [--format text|json] [--prune-allows]`
//!
//! Exit codes: 0 = clean, 1 = violations or stale allowlist entries,
//! 2 = usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- check [--root <dir>] [--format text|json] [--prune-allows]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut format = "text";
    let mut prune = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" if cmd.is_none() => cmd = Some("check"),
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = "text",
                Some("json") => format = "json",
                _ => return usage(),
            },
            "--prune-allows" => prune = true,
            _ => return usage(),
        }
    }
    if cmd != Some("check") {
        return usage();
    }
    // Default to the workspace root: two levels above this crate.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = match xtask::run_check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask check: error: {e}");
            return ExitCode::from(2);
        }
    };

    // Stale allowlist entries fail the check unless pruned away.
    let mut stale = report.stale_allows.clone();
    let mut pruned = 0usize;
    if prune && !stale.is_empty() {
        match xtask::prune_allow_file(&root, &stale) {
            Ok(n) => {
                pruned = n;
                stale.clear();
            }
            Err(e) => {
                eprintln!("xtask check: error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let clean = report.violations.is_empty() && stale.is_empty();

    if format == "json" {
        println!("{}", report.to_json());
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        for a in &stale {
            let at = match a.line {
                Some(l) => format!("{}:{l}", a.path),
                None => a.path.clone(),
            };
            eprintln!(
                "xtask check: error: stale allowlist entry {} for {at}: matched nothing \
                 (remove it, or re-run with --prune-allows)",
                a.rule
            );
        }
        if pruned > 0 {
            eprintln!(
                "xtask check: pruned {pruned} stale allowlist entr{}",
                if pruned == 1 { "y" } else { "ies" }
            );
        }
        if clean {
            println!(
                "xtask check: OK ({} files scanned, {} allowlisted exception{})",
                report.files_scanned,
                report.suppressed,
                if report.suppressed == 1 { "" } else { "s" }
            );
        } else {
            eprintln!(
                "xtask check: {} violation{}, {} stale allow{} ({} files scanned)",
                report.violations.len(),
                if report.violations.len() == 1 {
                    ""
                } else {
                    "s"
                },
                stale.len(),
                if stale.len() == 1 { "" } else { "s" },
                report.files_scanned
            );
        }
    }

    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
