//! `allow.toml` v2: per-rule, per-span suppressions.
//!
//! Each `[[allow]]` table names a `rule`, a `path`, a mandatory
//! one-line `reason`, and optionally a `line` — when present the
//! entry suppresses only diagnostics of that rule on that exact line
//! (a per-span suppression); without it the whole file is covered for
//! that rule. An entry that suppresses nothing is *stale* and fails
//! the check (the allowlist must not rot); `--prune-allows` rewrites
//! the file with stale entries removed.

use crate::manifest::toml_strip_comment;
use crate::rules::Diagnostic;

/// One allowlist entry, with the source-line span it occupies in
/// `allow.toml` so stale entries can be pruned textually.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// Rule this entry suppresses (`D1`, `L1`, …).
    pub rule: String,
    /// Workspace-relative file the exception applies to.
    pub path: String,
    /// Restrict the suppression to one source line of `path`.
    pub line: Option<u32>,
    /// One-line justification (mandatory).
    pub reason: String,
    /// 1-based inclusive line range of this entry in `allow.toml`.
    pub span: (u32, u32),
}

impl Allow {
    /// Whether this entry suppresses diagnostic `d`.
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule && self.path == d.path && self.line.map_or(true, |l| l == d.line)
    }
}

/// Parses `allow.toml`: `[[allow]]` tables with mandatory `rule`,
/// `path`, `reason` string keys and an optional integer `line`.
pub fn parse_allowlist(src: &str) -> Result<Vec<Allow>, String> {
    let mut out: Vec<Allow> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = toml_strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            out.push(Allow {
                rule: String::new(),
                path: String::new(),
                line: None,
                reason: String::new(),
                span: (lineno, lineno),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("allow.toml:{lineno}: expected `key = \"value\"`"));
        };
        let Some(entry) = out.last_mut() else {
            return Err(format!(
                "allow.toml:{lineno}: key outside an [[allow]] table"
            ));
        };
        let value = value.trim().trim_matches('"').to_string();
        match key.trim() {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "reason" => entry.reason = value,
            "line" => {
                entry.line = Some(value.parse().map_err(|_| {
                    format!("allow.toml:{lineno}: `line` must be a positive integer")
                })?)
            }
            other => return Err(format!("allow.toml:{lineno}: unknown key `{other}`")),
        }
        entry.span.1 = lineno;
    }
    for (i, e) in out.iter().enumerate() {
        if e.rule.is_empty() || e.path.is_empty() || e.reason.is_empty() {
            return Err(format!(
                "allow.toml: entry #{} must set rule, path, and a non-empty reason",
                i + 1
            ));
        }
    }
    Ok(out)
}

/// Returns `src` with the given stale entries' line spans removed,
/// collapsing any blank-line runs the removal leaves behind. Pure so
/// it is unit-testable; [`crate::prune_allow_file`] wraps it with IO.
pub fn prune_source(src: &str, stale: &[Allow]) -> String {
    let drop: Vec<(u32, u32)> = stale.iter().map(|a| a.span).collect();
    let mut kept: Vec<&str> = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        if drop.iter().any(|&(lo, hi)| lineno >= lo && lineno <= hi) {
            continue;
        }
        kept.push(line);
    }
    let mut out = String::new();
    let mut prev_blank = true; // also trims leading blanks
    for line in kept {
        let blank = line.trim().is_empty();
        if blank && prev_blank {
            continue;
        }
        out.push_str(line);
        out.push('\n');
        prev_blank = blank;
    }
    while out.ends_with("\n\n") {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# exceptions, one table per entry

[[allow]]
rule = \"D1\"
path = \"crates/bench/src/timing.rs\"
reason = \"bench harness measures real elapsed time\"

[[allow]]
rule = \"L1\"
path = \"crates/core/src/network.rs\"
line = 12
reason = \"the sim adapter\"
";

    #[test]
    fn parses_spans_and_optional_line() {
        let allows = parse_allowlist(SAMPLE).unwrap();
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].rule, "D1");
        assert_eq!(allows[0].line, None);
        assert_eq!(allows[0].span, (3, 6));
        assert_eq!(allows[1].line, Some(12));
        assert_eq!(allows[1].span, (8, 12));
    }

    #[test]
    fn line_key_restricts_the_match() {
        let allows = parse_allowlist(SAMPLE).unwrap();
        let mut d = Diagnostic {
            rule: "L1",
            path: "crates/core/src/network.rs".to_string(),
            line: 12,
            col: 1,
            msg: String::new(),
        };
        assert!(allows[1].matches(&d));
        d.line = 13;
        assert!(!allows[1].matches(&d));
        // The file-level entry matches any line of its file.
        d.rule = "D1";
        d.path = "crates/bench/src/timing.rs".to_string();
        assert!(allows[0].matches(&d));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let src = "[[allow]]\nrule = \"D1\"\npath = \"x.rs\"\n";
        assert!(parse_allowlist(src).is_err());
    }

    #[test]
    fn prune_removes_only_stale_spans() {
        let allows = parse_allowlist(SAMPLE).unwrap();
        let pruned = prune_source(SAMPLE, &allows[1..]);
        let reparsed = parse_allowlist(&pruned).unwrap();
        assert_eq!(reparsed.len(), 1);
        assert_eq!(reparsed[0].rule, "D1");
        assert!(pruned.starts_with("# exceptions"));
        assert!(!pruned.contains("\n\n\n"), "no blank-line runs: {pruned:?}");
    }

    #[test]
    fn prune_everything_leaves_header_only() {
        let allows = parse_allowlist(SAMPLE).unwrap();
        let pruned = prune_source(SAMPLE, &allows);
        assert_eq!(parse_allowlist(&pruned).unwrap(), vec![]);
        assert!(pruned.contains("# exceptions"));
    }
}
