//! Rule H1: hermetic manifests — every dependency in every
//! `Cargo.toml` must be an in-tree `path` dep or a `workspace = true`
//! reference to one. Anything with a bare version requirement is a
//! registry dep and fails the build.

use crate::rules::Diagnostic;

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True if `tok` occurs in `line` with non-identifier characters (or
/// the line boundary) on both sides.
fn has_token(line: &str, tok: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(found) = line[start..].find(tok) {
        let i = start + found;
        let before_ok = i == 0 || !is_ident(bytes[i - 1]);
        let end = i + tok.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

/// Strips a `#` comment from a TOML line (quote-aware).
pub(crate) fn toml_strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_dep_section(section: &str) -> bool {
    for kind in ["dependencies", "dev-dependencies", "build-dependencies"] {
        if section == kind
            || section == format!("workspace.{kind}")
            || section.ends_with(&format!(".{kind}"))
        {
            return true;
        }
    }
    false
}

/// Splits `[dependencies.NAME]`-style headers into (dep section, name).
fn dep_entry_header(section: &str) -> Option<(&str, &str)> {
    for kind in ["dependencies", "dev-dependencies", "build-dependencies"] {
        let prefix = format!("{kind}.");
        if let Some(name) = section.strip_prefix(&prefix) {
            return Some((kind, name));
        }
    }
    None
}

fn dep_value_is_in_tree(value: &str) -> bool {
    has_token(value, "path") || value.replace(' ', "").contains("workspace=true")
}

fn registry_dep(path: &str, line: u32, name: &str) -> Diagnostic {
    Diagnostic {
        rule: "H1",
        path: path.to_string(),
        line,
        col: 1,
        msg: format!("registry dependency `{name}` (only in-tree path deps allowed)"),
    }
}

/// Checks one `Cargo.toml` for registry dependencies (rule H1),
/// covering normal, dev, build, workspace, and target-specific
/// dependency sections, both inline and `[dependencies.NAME]` tables.
pub fn check_manifest(path: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut section = String::new();
    // `[dependencies.NAME]` multi-line entry: (name, header line, seen
    // path/workspace key).
    let mut table_entry: Option<(String, u32, bool)> = None;

    let flush = |entry: &mut Option<(String, u32, bool)>, out: &mut Vec<Diagnostic>| {
        if let Some((name, line, ok)) = entry.take() {
            if !ok {
                out.push(registry_dep(path, line, &name));
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = toml_strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut table_entry, &mut out);
            section = line
                .trim_matches(|c| c == '[' || c == ']')
                .trim()
                .to_string();
            if let Some((_, name)) = dep_entry_header(&section) {
                table_entry = Some((name.to_string(), lineno, false));
            }
            continue;
        }
        if let Some(entry) = table_entry.as_mut() {
            let key = line.split('=').next().unwrap_or("").trim();
            if key == "path" || (key == "workspace" && line.replace(' ', "").ends_with("=true")) {
                entry.2 = true;
            }
            continue;
        }
        if is_dep_section(&section) {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            let (name, ok) = match key.split_once('.') {
                // `name.workspace = true` / `name.path = "…"`.
                Some((name, sub)) => (name, sub == "workspace" || sub == "path"),
                None => (key, dep_value_is_in_tree(value)),
            };
            if !ok {
                out.push(registry_dep(path, lineno, name));
            }
        }
    }
    flush(&mut table_entry, &mut out);
    out
}
