//! Lightweight item parser over the token stream.
//!
//! Extracts just enough structure for the lint rules: enum
//! definitions with their variants, `fn` items inside `impl` blocks
//! (with self type, optional trait name, and body token range),
//! `const KINDS` tables, and the token spans of `#[cfg(test)]` items.
//! It is not a general Rust parser — see DESIGN.md §9 for the
//! supported subset and limits.

use crate::lexer::Lexed;

/// One enum variant.
#[derive(Clone, Debug)]
pub struct Variant {
    pub name: String,
    pub line: u32,
}

/// An `enum` item.
#[derive(Clone, Debug)]
pub struct EnumDef {
    pub name: String,
    pub line: u32,
    pub variants: Vec<Variant>,
}

/// A `fn` inside an `impl` block.
#[derive(Clone, Debug)]
pub struct ImplFn {
    /// Last path segment of the implemented type (`PastryMsg` for
    /// `impl<P> Message for PastryMsg<P>`).
    pub self_ty: String,
    /// Last path segment of the trait, for trait impls.
    pub trait_name: Option<String>,
    pub name: String,
    pub line: u32,
    /// Token range of the body, excluding the braces: `[lo, hi)`.
    pub body: (usize, usize),
}

/// A `const KINDS: … = &[…]` table inside an `impl` block.
#[derive(Clone, Debug)]
pub struct KindsConst {
    pub self_ty: String,
    pub line: u32,
    /// Number of string literals in the initializer.
    pub strings: usize,
}

/// Everything the rules need to know about a file's items.
#[derive(Default)]
pub struct ItemMap {
    pub enums: Vec<EnumDef>,
    pub impl_fns: Vec<ImplFn>,
    pub kinds: Vec<KindsConst>,
    /// Token ranges (inclusive braces) of items guarded by
    /// `#[cfg(test)]`.
    pub test_spans: Vec<(usize, usize)>,
}

impl ItemMap {
    /// Whether token `i` lies inside a `#[cfg(test)]` item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(lo, hi)| i >= lo && i <= hi)
    }
}

/// Index just past the delimiter matching the opener at `open`
/// (`lx.text(open)` must equal `open_s`). Saturates at end of stream
/// on unbalanced input rather than failing.
fn skip_balanced(lx: &Lexed<'_>, open: usize, open_s: &str, close_s: &str) -> usize {
    debug_assert_eq!(lx.text(open), open_s);
    let mut depth = 0i64;
    let mut i = open;
    while i < lx.len() {
        let t = lx.text(i);
        if t == open_s {
            depth += 1;
        } else if t == close_s {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    lx.len()
}

/// Skip a generic-argument list starting at a `<`. Treats every `<`
/// and `>` as angle brackets, which is correct for the declaration
/// positions we parse (no comparison operators appear there).
fn skip_angles(lx: &Lexed<'_>, open: usize) -> usize {
    skip_balanced(lx, open, "<", ">")
}

fn is_cfg_test_attr(lx: &Lexed<'_>, i: usize) -> bool {
    lx.text(i) == "#"
        && lx.text(i + 1) == "["
        && lx.text(i + 2) == "cfg"
        && lx.text(i + 3) == "("
        && lx.text(i + 4) == "test"
        && lx.text(i + 5) == ")"
        && lx.text(i + 6) == "]"
}

fn line_of(lx: &Lexed<'_>, i: usize) -> u32 {
    lx.toks.get(i).map(|t| t.line).unwrap_or(0)
}

/// Parse an `enum` item whose `enum` keyword is at `i`; returns the
/// definition and the index just past its closing brace.
fn parse_enum(lx: &Lexed<'_>, i: usize) -> (EnumDef, usize) {
    let name = lx.text(i + 1).to_string();
    let line = line_of(lx, i + 1);
    let mut j = i + 2;
    if lx.text(j) == "<" {
        j = skip_angles(lx, j);
    }
    // Skip to the body (covers `where` clauses).
    while j < lx.len() && lx.text(j) != "{" {
        j += 1;
    }
    if j >= lx.len() {
        return (
            EnumDef {
                name,
                line,
                variants: Vec::new(),
            },
            lx.len(),
        );
    }
    let end = skip_balanced(lx, j, "{", "}");
    let mut variants = Vec::new();
    let mut k = j + 1;
    // Walk comma-separated variants, skipping attributes and payloads.
    while k < end - 1 {
        if lx.text(k) == "#" && lx.text(k + 1) == "[" {
            k = skip_balanced(lx, k + 1, "[", "]");
            continue;
        }
        if lx.kind(k).is_some_and(|kd| kd == crate::lexer::Tok::Ident) {
            variants.push(Variant {
                name: lx.text(k).to_string(),
                line: line_of(lx, k),
            });
            // Skip the payload / discriminant up to the next `,` at
            // this nesting depth.
            k += 1;
            while k < end - 1 {
                match lx.text(k) {
                    "," => {
                        k += 1;
                        break;
                    }
                    "{" => k = skip_balanced(lx, k, "{", "}"),
                    "(" => k = skip_balanced(lx, k, "(", ")"),
                    "[" => k = skip_balanced(lx, k, "[", "]"),
                    _ => k += 1,
                }
            }
        } else {
            k += 1;
        }
    }
    (
        EnumDef {
            name,
            line,
            variants,
        },
        end,
    )
}

/// Parse an `impl` item whose `impl` keyword is at `i`, recording its
/// fns and `KINDS` consts into `map`; returns the index just past the
/// closing brace.
fn parse_impl(lx: &Lexed<'_>, i: usize, map: &mut ItemMap) -> usize {
    let mut j = i + 1;
    if lx.text(j) == "<" {
        j = skip_angles(lx, j);
    }
    // Header: `TraitPath for TypePath` or just `TypePath`, ending at
    // `{` or `where` (both only occur at depth 0 in the header).
    let mut depth = 0i64;
    let mut last_ident_before_for: Option<String> = None;
    let mut last_ident: Option<String> = None;
    let mut saw_for = false;
    while j < lx.len() {
        let t = lx.text(j);
        match t {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            "where" if depth == 0 => break,
            "for" if depth == 0 => {
                saw_for = true;
                last_ident_before_for = last_ident.take();
            }
            _ => {
                if depth == 0 && lx.kind(j).is_some_and(|k| k == crate::lexer::Tok::Ident) {
                    last_ident = Some(t.to_string());
                }
            }
        }
        j += 1;
    }
    while j < lx.len() && lx.text(j) != "{" {
        j += 1;
    }
    if j >= lx.len() {
        return lx.len();
    }
    let self_ty = match last_ident {
        Some(ty) => ty,
        None => return skip_balanced(lx, j, "{", "}"),
    };
    let trait_name = if saw_for { last_ident_before_for } else { None };
    let end = skip_balanced(lx, j, "{", "}");
    let mut k = j + 1;
    while k < end - 1 {
        match lx.text(k) {
            "fn" => {
                let name = lx.text(k + 1).to_string();
                let line = line_of(lx, k + 1);
                let mut m = k + 2;
                if lx.text(m) == "<" {
                    m = skip_angles(lx, m);
                }
                // Signature (parens, return type, where clause)
                // contains no `{`; the first one opens the body.
                while m < end && lx.text(m) != "{" {
                    m += 1;
                }
                if m >= end {
                    k = m;
                    continue;
                }
                let bend = skip_balanced(lx, m, "{", "}");
                map.impl_fns.push(ImplFn {
                    self_ty: self_ty.clone(),
                    trait_name: trait_name.clone(),
                    name,
                    line,
                    body: (m + 1, bend.saturating_sub(1)),
                });
                k = bend;
            }
            "const" if lx.text(k + 1) == "KINDS" => {
                let line = line_of(lx, k + 1);
                // Find the terminating `;`, skipping bracketed spans
                // (array types like `[u8; 4]` contain semicolons).
                let mut m = k + 2;
                while m < end && lx.text(m) != ";" {
                    if lx.text(m) == "[" {
                        m = skip_balanced(lx, m, "[", "]");
                    } else {
                        m += 1;
                    }
                }
                let strings = (k + 2..m)
                    .filter(|&s| lx.kind(s) == Some(crate::lexer::Tok::Str))
                    .count();
                map.kinds.push(KindsConst {
                    self_ty: self_ty.clone(),
                    line,
                    strings,
                });
                k = m + 1;
            }
            "{" => k = skip_balanced(lx, k, "{", "}"),
            _ => k += 1,
        }
    }
    end
}

/// Build the item map for a lexed file.
pub fn parse(lx: &Lexed<'_>) -> ItemMap {
    let mut map = ItemMap::default();
    let n = lx.len();
    let mut i = 0;
    while i < n {
        if is_cfg_test_attr(lx, i) {
            // Find the guarded item's brace block (or trailing `;`),
            // skipping any further attributes.
            let mut j = i + 7;
            let mut opened = None;
            while j < n {
                let t = lx.text(j);
                if t == "#" && lx.text(j + 1) == "[" {
                    j = skip_balanced(lx, j + 1, "[", "]");
                    continue;
                }
                if t == ";" {
                    break;
                }
                if t == "{" {
                    opened = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(open) = opened {
                let end = skip_balanced(lx, open, "{", "}");
                map.test_spans.push((i, end.saturating_sub(1)));
                i = end;
            } else {
                i = j + 1;
            }
            continue;
        }
        let t = lx.text(i);
        let prev = if i == 0 { "" } else { lx.text(i - 1) };
        match t {
            // Item position only: after `pub`, a block boundary, an
            // attribute, or at file start. Rejects `-> impl Trait`,
            // `: impl Trait`, and `enum`-in-string (strings keep
            // their quotes so they never equal the bare keyword).
            "enum" if matches!(prev, "" | "{" | "}" | ";" | "]" | "pub" | ")") => {
                let (e, next) = parse_enum(lx, i);
                map.enums.push(e);
                i = next;
            }
            "impl" if matches!(prev, "" | "{" | "}" | ";" | "]") => {
                i = parse_impl(lx, i, &mut map);
            }
            _ => i += 1,
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let src = r#"
            /// Doc.
            #[derive(Clone)]
            pub enum Msg<P> {
                Route(Envelope<P>),
                Join { who: Handle, rows: Vec<Row> },
                #[allow(dead_code)]
                Probe,
                Ack = 3,
            }
        "#;
        let lx = lex(src);
        let map = parse(&lx);
        assert_eq!(map.enums.len(), 1);
        let e = &map.enums[0];
        assert_eq!(e.name, "Msg");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Route", "Join", "Probe", "Ack"]);
    }

    #[test]
    fn impl_fns_record_self_ty_and_trait() {
        let src = r#"
            impl<P: Clone> Message for Msg<P> {
                const KINDS: &'static [&'static str] = &["a", "b"];
                fn kind_id(&self) -> usize {
                    match self { Msg::A => 0, Msg::B => 1 }
                }
                fn wire_size(&self) -> u64 { 16 }
            }
            impl Other {
                fn helper(&self) {}
            }
        "#;
        let lx = lex(src);
        let map = parse(&lx);
        let fns: Vec<(&str, &str)> = map
            .impl_fns
            .iter()
            .map(|f| (f.self_ty.as_str(), f.name.as_str()))
            .collect();
        assert_eq!(
            fns,
            vec![
                ("Msg", "kind_id"),
                ("Msg", "wire_size"),
                ("Other", "helper")
            ]
        );
        assert_eq!(map.impl_fns[0].trait_name.as_deref(), Some("Message"));
        assert_eq!(map.impl_fns[2].trait_name, None);
        assert_eq!(map.kinds.len(), 1);
        assert_eq!(map.kinds[0].self_ty, "Msg");
        assert_eq!(map.kinds[0].strings, 2);
    }

    #[test]
    fn fn_body_token_range_covers_the_match() {
        let src = "impl T { fn f(&self) -> u8 { self.x + 1 } }";
        let lx = lex(src);
        let map = parse(&lx);
        let f = &map.impl_fns[0];
        let body: Vec<&str> = (f.body.0..f.body.1).map(|i| lx.text(i)).collect();
        assert_eq!(body, vec!["self", ".", "x", "+", "1"]);
    }

    #[test]
    fn cfg_test_spans_cover_mod_and_items_inside_are_not_parsed() {
        let src = r#"
            pub enum Live { A }
            #[cfg(test)]
            mod tests {
                enum TestOnly { X }
                fn helper() { panic!("fine in tests"); }
            }
        "#;
        let lx = lex(src);
        let map = parse(&lx);
        assert_eq!(map.enums.len(), 1);
        assert_eq!(map.enums[0].name, "Live");
        assert_eq!(map.test_spans.len(), 1);
        // A token well inside the mod is flagged as test.
        let (lo, hi) = map.test_spans[0];
        assert!(map.in_test(lo + 4) && hi > lo);
        // The Live enum tokens are not.
        assert!(!map.in_test(2));
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_item() {
        let src = r#"
            impl Registry {
                fn iter(&self) -> impl Iterator<Item = u8> + '_ {
                    self.v.iter().copied()
                }
            }
        "#;
        let lx = lex(src);
        let map = parse(&lx);
        let fns: Vec<&str> = map.impl_fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fns, vec!["iter"]);
        assert_eq!(map.impl_fns[0].self_ty, "Registry");
    }

    #[test]
    fn cfg_test_single_fn_guard() {
        let src = r#"
            fn live() {}
            #[cfg(test)]
            fn test_helper() { bad_token_here(); }
            fn live2() {}
        "#;
        let lx = lex(src);
        let map = parse(&lx);
        assert_eq!(map.test_spans.len(), 1);
        // Tokens of live2 are outside the span.
        let last = lx.len() - 1;
        assert!(!map.in_test(last));
    }
}
