//! Zero-dependency Rust lexer producing spanned tokens.
//!
//! The lint rules in [`crate::rules`] match against this token stream
//! instead of raw source lines. Comments and string/char literals become
//! opaque single tokens, so a rule pattern can never be fooled by a
//! mention inside a doc comment or an error message — including
//! multi-line block comments and raw strings, which a line-oriented
//! scanner cannot track. Every token carries byte offsets plus the
//! line/column of its first byte, so diagnostics are spanned.
//!
//! Supported subset (everything the workspace uses):
//! - line comments (`//`, `///`, `//!`) and *nested* block comments
//! - string, raw string (`r"…"`, `r#"…"#`, any hash depth), byte
//!   string, char, and byte-char literals, with escapes
//! - lifetime vs. char-literal disambiguation (`'a` vs `'a'`)
//! - numbers with underscores, radix prefixes, type suffixes, and
//!   float exponents (`1_000`, `0xFF`, `1e-9`, `2.5f64`)
//! - ASCII identifiers/keywords; punctuation is emitted one byte per
//!   token (`::` is two `:` tokens), which keeps matching simple
//!
//! Known limits (documented in DESIGN.md §9): raw identifiers
//! (`r#fn`) and C-string literals (`c"…"`) are not recognized, and
//! non-ASCII identifiers lex as punctuation. Nothing in-tree uses any
//! of these.

/// Token class. Rules mostly care about `Ident` and `Punct`; literal
/// classes exist so their *contents* never match identifier patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `HashMap`, `unsafe`, …).
    Ident,
    /// Lifetime such as `'a` or `'static` (without a closing quote).
    Lifetime,
    /// String / raw-string / byte-string literal, quotes included.
    Str,
    /// Char or byte-char literal, quotes included.
    Char,
    /// Numeric literal, suffix included.
    Num,
    /// A single punctuation byte (`:`, `.`, `{`, …).
    Punct,
}

/// One token with its span: byte range plus 1-based line/column of the
/// first byte.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: Tok,
    pub lo: usize,
    pub hi: usize,
    pub line: u32,
    pub col: u32,
}

/// A lexed file: the source plus its token stream.
pub struct Lexed<'a> {
    pub src: &'a str,
    pub toks: Vec<Token>,
}

impl<'a> Lexed<'a> {
    /// Source text of token `i` (empty for out-of-range, which lets
    /// pattern matchers probe past the end without bounds checks).
    pub fn text(&self, i: usize) -> &'a str {
        match self.toks.get(i) {
            Some(t) => &self.src[t.lo..t.hi],
            None => "",
        }
    }

    pub fn kind(&self, i: usize) -> Option<Tok> {
        self.toks.get(i).map(|t| t.kind)
    }

    pub fn len(&self) -> usize {
        self.toks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn eof(&self) -> bool {
        self.i >= self.b.len()
    }

    fn peek(&self) -> u8 {
        self.b.get(self.i).copied().unwrap_or(0)
    }

    fn peek_at(&self, ahead: usize) -> u8 {
        self.b.get(self.i + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) {
        if let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            if c == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Hash depth of a raw-string opener at the cursor (`r"`, `r#"`,
/// `br##"`, …), or `None` if the cursor is not at one.
fn raw_str_hashes(c: &Cursor<'_>) -> Option<usize> {
    let mut j = 1; // past the `r`
    let mut hashes = 0;
    while c.peek_at(j) == b'#' {
        hashes += 1;
        j += 1;
    }
    if c.peek_at(j) == b'"' {
        Some(hashes)
    } else {
        None
    }
}

/// Consume a `"…"` body (opening quote already consumed), honoring
/// backslash escapes; multi-line strings are fine because `bump`
/// tracks newlines.
fn eat_str_body(c: &mut Cursor<'_>) {
    while !c.eof() {
        match c.peek() {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                break;
            }
            _ => c.bump(),
        }
    }
}

/// Consume a raw-string body after the opening quote: runs until `"`
/// followed by `hashes` `#` bytes.
fn eat_raw_str_body(c: &mut Cursor<'_>, hashes: usize) {
    while !c.eof() {
        if c.peek() == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if c.peek_at(1 + k) != b'#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..=hashes {
                    c.bump();
                }
                return;
            }
        }
        c.bump();
    }
}

/// Lex `src` into a token stream. Never fails: unrecognized bytes
/// become `Punct` tokens (whole UTF-8 sequences, so slicing stays
/// valid).
pub fn lex(src: &str) -> Lexed<'_> {
    let mut c = Cursor {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while !c.eof() {
        let (lo, line, col) = (c.i, c.line, c.col);
        let ch = c.peek();
        let kind = match ch {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
                continue;
            }
            b'/' if c.peek_at(1) == b'/' => {
                while !c.eof() && c.peek() != b'\n' {
                    c.bump();
                }
                continue;
            }
            b'/' if c.peek_at(1) == b'*' => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while !c.eof() && depth > 0 {
                    if c.peek() == b'*' && c.peek_at(1) == b'/' {
                        c.bump();
                        c.bump();
                        depth -= 1;
                    } else if c.peek() == b'/' && c.peek_at(1) == b'*' {
                        c.bump();
                        c.bump();
                        depth += 1;
                    } else {
                        c.bump();
                    }
                }
                continue;
            }
            b'"' => {
                c.bump();
                eat_str_body(&mut c);
                Tok::Str
            }
            b'r' | b'b' => {
                // r"…" / r#"…"# / b"…" / br"…" / b'…' — else an ident.
                if let Some(h) = raw_str_hashes(&c) {
                    c.bump(); // r
                    for _ in 0..h {
                        c.bump();
                    }
                    c.bump(); // opening quote
                    eat_raw_str_body(&mut c, h);
                    Tok::Str
                } else if ch == b'b' && c.peek_at(1) == b'"' {
                    c.bump();
                    c.bump();
                    eat_str_body(&mut c);
                    Tok::Str
                } else if ch == b'b' && c.peek_at(1) == b'r' {
                    let mut probe = Cursor {
                        b: c.b,
                        i: c.i + 1,
                        line: c.line,
                        col: c.col,
                    };
                    if let Some(h) = raw_str_hashes(&probe) {
                        probe.bump(); // r
                        for _ in 0..h {
                            probe.bump();
                        }
                        probe.bump(); // quote
                        eat_raw_str_body(&mut probe, h);
                        c.i = probe.i;
                        c.line = probe.line;
                        c.col = probe.col;
                        Tok::Str
                    } else {
                        while is_ident_cont(c.peek()) {
                            c.bump();
                        }
                        Tok::Ident
                    }
                } else if ch == b'b' && c.peek_at(1) == b'\'' {
                    c.bump(); // b
                    c.bump(); // quote
                    if c.peek() == b'\\' {
                        c.bump();
                        c.bump();
                    }
                    while !c.eof() && c.peek() != b'\'' {
                        c.bump();
                    }
                    c.bump(); // closing quote
                    Tok::Char
                } else {
                    while is_ident_cont(c.peek()) {
                        c.bump();
                    }
                    Tok::Ident
                }
            }
            b'\'' => {
                // Lifetime (`'a`, not followed by a closing quote) or
                // char literal (`'a'`, `'\n'`, `'λ'`).
                if is_ident_start(c.peek_at(1)) && c.peek_at(2) != b'\'' {
                    c.bump(); // quote
                    while is_ident_cont(c.peek()) {
                        c.bump();
                    }
                    Tok::Lifetime
                } else {
                    c.bump(); // quote
                    if c.peek() == b'\\' {
                        c.bump();
                        c.bump();
                    }
                    while !c.eof() && c.peek() != b'\'' {
                        c.bump();
                    }
                    c.bump(); // closing quote
                    Tok::Char
                }
            }
            b'0'..=b'9' => {
                c.bump();
                loop {
                    let p = c.peek();
                    if is_ident_cont(p) {
                        let was_exp = p == b'e' || p == b'E';
                        c.bump();
                        // Exponent sign: `1e-9`, `2.5E+3`.
                        if was_exp
                            && (c.peek() == b'+' || c.peek() == b'-')
                            && c.peek_at(1).is_ascii_digit()
                        {
                            c.bump();
                        }
                    } else if p == b'.' && c.peek_at(1).is_ascii_digit() {
                        c.bump();
                    } else {
                        break;
                    }
                }
                Tok::Num
            }
            ch if is_ident_start(ch) => {
                while is_ident_cont(c.peek()) {
                    c.bump();
                }
                Tok::Ident
            }
            ch if ch >= 0x80 => {
                // Non-ASCII outside literals: consume the whole UTF-8
                // sequence so token slices stay on char boundaries.
                c.bump();
                while !c.eof() && (c.peek() & 0xC0) == 0x80 {
                    c.bump();
                }
                Tok::Punct
            }
            _ => {
                c.bump();
                Tok::Punct
            }
        };
        toks.push(Token {
            kind,
            lo,
            hi: c.i,
            line,
            col,
        });
    }
    Lexed { src, toks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        let lx = lex(src);
        (0..lx.len()).map(|i| lx.text(i).to_string()).collect()
    }

    #[test]
    fn idents_and_puncts_split() {
        assert_eq!(
            texts("std::time::X"),
            vec!["std", ":", ":", "time", ":", ":", "X"]
        );
    }

    #[test]
    fn strings_are_opaque() {
        let lx = lex(r#"let s = "HashMap.iter() // not code";"#);
        let kinds: Vec<Tok> = lx.toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![Tok::Ident, Tok::Ident, Tok::Punct, Tok::Str, Tok::Punct]
        );
        assert!(lx.text(3).starts_with('"'));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let lx = lex("let s = r##\"contains \"# quote\"##; done");
        let t: Vec<&str> = (0..lx.len()).map(|i| lx.text(i)).collect();
        assert_eq!(t[3], "r##\"contains \"# quote\"##");
        assert_eq!(t[5], "done");
    }

    #[test]
    fn nested_block_comments_skip_fully() {
        assert_eq!(texts("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn lifetime_vs_char() {
        let lx = lex("fn f<'a>(x: &'a u8) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = lx
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == Tok::Lifetime)
            .map(|(i, _)| lx.text(i))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<&str> = lx
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == Tok::Char)
            .map(|(i, _)| lx.text(i))
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
    }

    #[test]
    fn numbers_with_exponents_and_suffixes() {
        assert_eq!(
            texts("1_000 0xFF 1e-9 2.5f64 3."),
            vec!["1_000", "0xFF", "1e-9", "2.5f64", "3", "."]
        );
    }

    #[test]
    fn spans_track_lines_and_cols() {
        let lx = lex("a\n  bb\n\"s\ntr\" c");
        assert_eq!((lx.toks[0].line, lx.toks[0].col), (1, 1));
        assert_eq!((lx.toks[1].line, lx.toks[1].col), (2, 3));
        assert_eq!(lx.toks[2].kind, Tok::Str); // multi-line string
        assert_eq!((lx.toks[3].line, lx.toks[3].col), (4, 5));
    }

    #[test]
    fn multiline_chain_is_one_stream() {
        // The whole point vs. the old line scanner: a method chain
        // split over lines is contiguous in token space.
        assert_eq!(
            texts("self.map\n    .values()\n    .sum()"),
            vec!["self", ".", "map", ".", "values", "(", ")", ".", "sum", "(", ")"]
        );
    }

    #[test]
    fn byte_literals() {
        let lx = lex("b\"bytes\" b'x' br#\"raw\"#");
        assert_eq!(lx.toks[0].kind, Tok::Str);
        assert_eq!(lx.toks[1].kind, Tok::Char);
        assert_eq!(lx.toks[2].kind, Tok::Str);
        assert_eq!(lx.len(), 3);
    }
}
