//! The workspace's in-tree static-analysis pass (`cargo run -p xtask -- check`).
//!
//! v2: the rules run over a real token stream from an in-tree lexer
//! ([`lexer`]) plus a lightweight item parser ([`parse`]) — still
//! deliberately dependency-free (per rule H1, the analyzer must itself
//! be hermetic), but no longer fooled by multi-line constructs, and
//! able to reason across files (rule M1) and crate boundaries (rule
//! L1). Diagnostics are spanned (line *and* column) and can be
//! emitted as JSON for CI.
//!
//! | rule | scope                         | what it forbids |
//! |------|-------------------------------|-----------------|
//! | H1   | every `Cargo.toml`            | registry dependencies |
//! | D1   | every `.rs` file              | wall-clock reads (`std::time::Instant`, `SystemTime`) |
//! | D2   | every `.rs` file              | OS entropy (`thread_rng`, `OsRng`, `getrandom`, …) |
//! | D3   | decision-path crates          | `HashMap`/`HashSet` iteration (hash order steers decisions) |
//! | D4   | library crates                | determinism taint: hash iteration elsewhere, `partial_cmp` comparators, bare `Instant`/`SystemTime` |
//! | P1   | `pastry`/`core` non-test code | panics (`unwrap`, `expect`, `panic!`, …) |
//! | U1   | every `.rs` file              | `unsafe` |
//! | O1   | library crate code            | `println!`-family output |
//! | E1   | library crate code            | `let _ =` over a call (silently dropped `Result`s) |
//! | L1   | protocol crates (`core`, `pastry`) | reaching into `netsim::engine` internals |
//! | M1   | wire-message enums            | variants missing from `wire_size`/`kind_id`/`KINDS`/`op_id` coverage |
//!
//! The full catalog — rationale, scope, and suppression mechanics per
//! rule — lives in DESIGN.md §9. Justified exceptions go in
//! `crates/xtask/allow.toml` (see [`allowlist`]); a stale entry is
//! itself a check failure, and `--prune-allows` removes them.

pub mod allowlist;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod rules;

pub use allowlist::{parse_allowlist, prune_source, Allow};
pub use manifest::check_manifest;
pub use rules::{analyze_sources, AnalyzeOpts, Diagnostic};

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.msg
        )
    }
}

/// The outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned (`Cargo.toml` + `.rs`).
    pub files_scanned: usize,
    /// Diagnostics not covered by the allowlist.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics suppressed by the allowlist.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing. Stale suppressions are
    /// an error: the check fails until they are removed (or
    /// `--prune-allows` is run).
    pub stale_allows: Vec<Allow>,
}

impl Report {
    /// A clean check: nothing to fix, nothing stale.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }

    /// Serializes the report as a single JSON object (schema
    /// `xtask-check/v1`) for CI artifacts. Hand-rolled — the analyzer
    /// stays dependency-free.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"xtask-check/v1\"");
        s.push_str(&format!(",\"files_scanned\":{}", self.files_scanned));
        s.push_str(&format!(",\"suppressed\":{}", self.suppressed));
        s.push_str(",\"violations\":[");
        for (i, d) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"msg\":{}}}",
                json_str(d.rule),
                json_str(&d.path),
                d.line,
                d.col,
                json_str(&d.msg)
            ));
        }
        s.push_str("],\"stale_allows\":[");
        for (i, a) in self.stale_allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let line = match a.line {
                Some(l) => l.to_string(),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"reason\":{}}}",
                json_str(&a.rule),
                json_str(&a.path),
                line,
                json_str(&a.reason)
            ));
        }
        s.push_str("],\"ok\":");
        s.push_str(if self.ok() { "true" } else { "false" });
        s.push('}');
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursively collects `Cargo.toml` and `.rs` files under `root`,
/// skipping `target/`, hidden directories, and VCS metadata. Sorted
/// for deterministic output.
fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(p);
            } else if name == "Cargo.toml" || name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the full check over the workspace at `root`, applying the
/// allowlist at `crates/xtask/allow.toml` (absent file = empty list).
pub fn run_check(root: &Path) -> Result<Report, String> {
    let allow_path = root.join("crates/xtask/allow.toml");
    let allows = match fs::read_to_string(&allow_path) {
        Ok(s) => parse_allowlist(&s)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{}: {e}", allow_path.display())),
    };

    let files = collect_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut report = Report::default();
    let mut sources: Vec<(String, String)> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            fs::read_to_string(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        report.files_scanned += 1;
        if rel.ends_with("Cargo.toml") {
            diags.extend(check_manifest(&rel, &src));
        } else {
            sources.push((rel, src));
        }
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    diags.extend(analyze_sources(
        &refs,
        &AnalyzeOpts {
            require_enums: true,
        },
    ));
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });

    let mut used = vec![false; allows.len()];
    for d in diags {
        match allows.iter().position(|a| a.matches(&d)) {
            Some(i) => {
                used[i] = true;
                report.suppressed += 1;
            }
            None => report.violations.push(d),
        }
    }
    report.stale_allows = allows
        .into_iter()
        .zip(used)
        .filter_map(|(a, u)| if u { None } else { Some(a) })
        .collect();
    Ok(report)
}

/// Rewrites `crates/xtask/allow.toml` under `root` with the given
/// stale entries removed; returns how many were pruned.
pub fn prune_allow_file(root: &Path, stale: &[Allow]) -> Result<usize, String> {
    if stale.is_empty() {
        return Ok(0);
    }
    let allow_path = root.join("crates/xtask/allow.toml");
    let src =
        fs::read_to_string(&allow_path).map_err(|e| format!("{}: {e}", allow_path.display()))?;
    let pruned = prune_source(&src, stale);
    fs::write(&allow_path, pruned).map_err(|e| format!("{}: {e}", allow_path.display()))?;
    Ok(stale.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real workspace must pass its own gate: no violations, no
    /// stale allowlist entries. This is the check CI runs, executed
    /// as a unit test so `cargo test -p xtask` catches regressions
    /// without a separate invocation.
    #[test]
    fn current_tree_passes_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let report = run_check(root).expect("check runs");
        assert!(
            report.files_scanned > 80,
            "expected the whole workspace, scanned {}",
            report.files_scanned
        );
        assert!(
            report.violations.is_empty(),
            "violations in tree:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.stale_allows.is_empty(),
            "stale allowlist entries: {:?}",
            report.stale_allows
        );
    }

    #[test]
    fn report_json_is_stable_and_escaped() {
        let report = Report {
            files_scanned: 2,
            violations: vec![Diagnostic {
                rule: "O1",
                path: "crates/x/src/lib.rs".to_string(),
                line: 3,
                col: 5,
                msg: "a \"quoted\"\nmessage".to_string(),
            }],
            suppressed: 1,
            stale_allows: vec![Allow {
                rule: "D1".to_string(),
                path: "crates/y/src/lib.rs".to_string(),
                line: Some(9),
                reason: "why".to_string(),
                span: (1, 4),
            }],
        };
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"schema\":\"xtask-check/v1\",\"files_scanned\":2,\"suppressed\":1,\
             \"violations\":[{\"rule\":\"O1\",\"path\":\"crates/x/src/lib.rs\",\
             \"line\":3,\"col\":5,\"msg\":\"a \\\"quoted\\\"\\nmessage\"}],\
             \"stale_allows\":[{\"rule\":\"D1\",\"path\":\"crates/y/src/lib.rs\",\
             \"line\":9,\"reason\":\"why\"}],\"ok\":false}"
        );
    }

    #[test]
    fn clean_report_is_ok() {
        let r = Report::default();
        assert!(r.ok());
        assert!(r.to_json().ends_with("\"ok\":true}"));
    }
}
