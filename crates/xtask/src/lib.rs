//! The workspace's in-tree static-analysis pass (`cargo run -p xtask -- check`).
//!
//! A lightweight line/token scanner — deliberately not a real parser, and
//! deliberately dependency-free so the analyzer is itself hermetic — that
//! walks every `Cargo.toml` and `.rs` file in the workspace and enforces
//! the project invariants as deny-by-default rules:
//!
//! | rule | scope                         | what it forbids                                  |
//! |------|-------------------------------|--------------------------------------------------|
//! | H1   | every `Cargo.toml`            | registry dependencies (anything that is not an in-tree `path`/`workspace = true` dep) |
//! | D1   | every `.rs` file              | wall-clock reads: `std::time::Instant`, `std::time::SystemTime` |
//! | D2   | every `.rs` file              | OS entropy: `thread_rng`, `from_entropy`, `OsRng`, `getrandom`, `rand::random` |
//! | D3   | decision-path crates          | iteration over `HashMap`/`HashSet` (hash order leaks into protocol/simulation decisions) |
//! | P1   | `pastry`/`core` non-test code | `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | U1   | every `.rs` file              | `unsafe`                                         |
//! | O1   | library crate code            | `println!`/`eprintln!` (bins and tests exempt — emit trace events or return data instead) |
//!
//! Justified exceptions live in `crates/xtask/allow.toml`; every entry
//! carries a rule id, a path, and a one-line reason, and unused entries
//! are reported so the allowlist cannot rot.
//!
//! Known scanner limits (accepted for a ~zero-dependency pass): string
//! literals and comments are stripped per line, but *multi-line* string
//! literals are not tracked, and D3 tracks collection-typed names per
//! file, not per scope — avoid reusing one identifier for both a hash
//! collection and an ordered one in the same file.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose code makes protocol or simulation decisions: hash-order
/// iteration there can leak into routing or replica choice (rule D3).
const DECISION_CRATES: &[&str] = &[
    "crates/pastry/",
    "crates/core/",
    "crates/netsim/",
    "crates/sim/",
    "crates/baselines/",
    "crates/invariants/",
];

/// Crates under the panic policy (rule P1): protocol code must surface
/// errors as `Result`/`Option`, never abort the process.
const PANIC_POLICY_PATHS: &[&str] = &["crates/pastry/src/", "crates/core/src/"];

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`H1`, `D1`, `D2`, `D3`, `P1`, `U1`, `O1`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// One allowlist entry from `allow.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// Rule this entry suppresses.
    pub rule: String,
    /// Workspace-relative file the exception applies to.
    pub path: String,
    /// One-line justification (mandatory).
    pub reason: String,
}

/// The outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned (`Cargo.toml` + `.rs`).
    pub files_scanned: usize,
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Violations suppressed by the allowlist.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (stale).
    pub unused_allows: Vec<Allow>,
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True if `tok` occurs in `line` with non-identifier characters (or the
/// line boundary) on both sides.
fn has_token(line: &str, tok: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(found) = line[start..].find(tok) {
        let i = start + found;
        let before_ok = i == 0 || !is_ident(bytes[i - 1]);
        let end = i + tok.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

/// Strips comments and string-literal contents from one source line.
///
/// Keeps the enclosing quotes so token boundaries survive. `in_block`
/// tracks `/* … */` comments across lines. Multi-line string literals are
/// not tracked (see module docs).
fn sanitize(line: &str, in_block: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if *in_block {
            if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => break, // line comment
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                *in_block = true;
                i += 2;
            }
            b'"' => {
                // Skip the string body (escapes included) up to the close.
                out.push('"');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '"') or a lifetime ('a).
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    out.push_str("' '");
                    i += 3;
                    while i < b.len() && b[i - 1] != b'\'' {
                        i += 1;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.push_str("' '");
                    i += 3;
                } else {
                    out.push('\''); // lifetime
                    i += 1;
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// The identifier ending at the end of `s`, if any.
fn trailing_ident(s: &str) -> Option<&str> {
    let s = s.trim_end();
    let b = s.as_bytes();
    let mut start = b.len();
    while start > 0 && is_ident(b[start - 1]) {
        start -= 1;
    }
    if start == b.len() || b[start].is_ascii_digit() {
        None
    } else {
        Some(&s[start..])
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` values on this line
/// (let bindings, struct fields, struct-literal inits).
fn hash_decl_names(line: &str, names: &mut BTreeSet<String>) {
    for ty in ["HashMap", "HashSet"] {
        // `name: HashMap<…>` (field or annotated let).
        let mut start = 0;
        while let Some(found) = line[start..].find(ty) {
            let i = start + found;
            let before = line[..i].trim_end();
            if let Some(prefix) = before.strip_suffix(':') {
                if let Some(name) = trailing_ident(prefix) {
                    names.insert(name.to_string());
                }
            }
            start = i + ty.len();
        }
        // `name = [std::collections::]HashMap::new()` and friends.
        for ctor in ["::new", "::with_capacity", "::from", "::default"] {
            let pat = format!("{ty}{ctor}");
            if line.contains(&pat) {
                if let Some(eq) = line.find('=') {
                    if let Some(name) = trailing_ident(&line[..eq]) {
                        names.insert(name.to_string());
                    }
                }
            }
        }
    }
}

/// True if this line iterates over tracked hash-collection `name`.
fn iterates_hash(line: &str, name: &str) -> bool {
    for m in [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".retain(",
    ] {
        if has_token(line, &format!("{name}{m}")) {
            return true;
        }
    }
    for prefix in ["in ", "in &", "in &mut "] {
        for owner in ["", "self."] {
            if has_token(line, &format!("{prefix}{owner}{name}")) {
                return true;
            }
        }
    }
    false
}

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// True for files that are test-only as a whole (integration tests,
/// benches, examples): P1/D3/O1 do not apply there.
fn is_test_file(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.starts_with("tests/")
}

/// True for library code under rule O1: crate sources that are not
/// binary entry points. Bins own stdout; libraries must stay silent
/// (emit trace events or return data instead).
fn is_library_code(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.contains("/src/bin/")
        && !path.ends_with("/src/main.rs")
        && !is_test_file(path)
}

/// Scans one Rust source file. `path` is workspace-relative.
pub fn scan_rust(path: &str, src: &str) -> Vec<Violation> {
    let d1: &[&str] = &[
        "std::time::Instant",
        "std::time::SystemTime",
        "Instant::now",
        "SystemTime::now",
    ];
    let d2: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "rand::random",
    ];
    let p1: &[&str] = &[
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ];

    let decision = in_any(path, DECISION_CRATES) && !is_test_file(path);
    let panic_policy = in_any(path, PANIC_POLICY_PATHS) && !is_test_file(path);
    let library = is_library_code(path);

    let mut out = Vec::new();
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    let mut in_block_comment = false;
    let mut depth: i32 = 0;
    let mut cfg_test_pending = false;
    let mut test_mod_depth: Option<i32> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = sanitize(raw, &mut in_block_comment);
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            cfg_test_pending = true;
        }
        let opens = line.matches('{').count() as i32;
        if cfg_test_pending && has_token(&line, "mod") && opens > 0 {
            test_mod_depth = Some(depth);
            cfg_test_pending = false;
        }
        let in_test = test_mod_depth.is_some();

        for pat in d1 {
            if line.contains(pat) {
                out.push(Violation {
                    rule: "D1",
                    path: path.to_string(),
                    line: lineno,
                    msg: format!("wall-clock read `{pat}` (simulated time only; see DESIGN.md)"),
                });
                break;
            }
        }
        for pat in d2 {
            if has_token(&line, pat) || line.contains(pat) && pat.contains("::") {
                out.push(Violation {
                    rule: "D2",
                    path: path.to_string(),
                    line: lineno,
                    msg: format!("OS entropy source `{pat}` (use past_crypto::rng::Rng)"),
                });
                break;
            }
        }
        if has_token(&line, "unsafe") {
            out.push(Violation {
                rule: "U1",
                path: path.to_string(),
                line: lineno,
                msg: "`unsafe` is forbidden workspace-wide".to_string(),
            });
        }
        if decision && !in_test {
            hash_decl_names(&line, &mut hash_names);
            if let Some(name) = hash_names.iter().find(|n| iterates_hash(&line, n)) {
                out.push(Violation {
                    rule: "D3",
                    path: path.to_string(),
                    line: lineno,
                    msg: format!(
                        "iteration over hash collection `{name}` in a decision path \
                         (hash order is nondeterministic; use BTreeMap/BTreeSet or sort first)"
                    ),
                });
            }
        }
        if library && !in_test {
            for pat in ["println!", "eprintln!"] {
                if has_token(&line, pat) {
                    out.push(Violation {
                        rule: "O1",
                        path: path.to_string(),
                        line: lineno,
                        msg: format!(
                            "`{pat}` in library code (bins own stdout; \
                             emit trace events or return data instead)"
                        ),
                    });
                    break;
                }
            }
        }
        if panic_policy && !in_test {
            for pat in p1 {
                if line.contains(pat) {
                    out.push(Violation {
                        rule: "P1",
                        path: path.to_string(),
                        line: lineno,
                        msg: format!(
                            "`{pat}` in protocol code (return Result/Option, \
                             or allowlist with a justification)"
                        ),
                    });
                    break;
                }
            }
        }

        depth += opens - line.matches('}').count() as i32;
        if let Some(td) = test_mod_depth {
            if depth <= td {
                test_mod_depth = None;
            }
        }
    }
    out
}

/// Strips a `#` comment from a TOML line (quote-aware).
fn toml_strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_dep_section(section: &str) -> bool {
    for kind in ["dependencies", "dev-dependencies", "build-dependencies"] {
        if section == kind
            || section == format!("workspace.{kind}")
            || section.ends_with(&format!(".{kind}"))
        {
            return true;
        }
    }
    false
}

/// Splits `[dependencies.NAME]`-style headers into (dep section, name).
fn dep_entry_header(section: &str) -> Option<(&str, &str)> {
    for kind in ["dependencies", "dev-dependencies", "build-dependencies"] {
        let prefix = format!("{kind}.");
        if let Some(name) = section.strip_prefix(&prefix) {
            return Some((kind, name));
        }
    }
    None
}

fn dep_value_is_in_tree(value: &str) -> bool {
    has_token(value, "path") || value.replace(' ', "").contains("workspace=true")
}

/// Checks one `Cargo.toml` for registry dependencies (rule H1).
///
/// Every dependency — normal, dev, build, workspace, target-specific —
/// must be an in-tree `path` dep or a `workspace = true` reference to
/// one. Anything with a bare version requirement is a registry dep.
pub fn check_manifest(path: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut section = String::new();
    // `[dependencies.NAME]` multi-line entry: (name, header line, seen path/workspace).
    let mut table_entry: Option<(String, usize, bool)> = None;

    let flush = |entry: &mut Option<(String, usize, bool)>, out: &mut Vec<Violation>| {
        if let Some((name, line, ok)) = entry.take() {
            if !ok {
                out.push(Violation {
                    rule: "H1",
                    path: path.to_string(),
                    line,
                    msg: format!("registry dependency `{name}` (only in-tree path deps allowed)"),
                });
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = toml_strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut table_entry, &mut out);
            section = line
                .trim_matches(|c| c == '[' || c == ']')
                .trim()
                .to_string();
            if let Some((_, name)) = dep_entry_header(&section) {
                table_entry = Some((name.to_string(), lineno, false));
            }
            continue;
        }
        if let Some(entry) = table_entry.as_mut() {
            let key = line.split('=').next().unwrap_or("").trim();
            if key == "path" || (key == "workspace" && line.replace(' ', "").ends_with("=true")) {
                entry.2 = true;
            }
            continue;
        }
        if is_dep_section(&section) {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            let (name, ok) = match key.split_once('.') {
                // `name.workspace = true` / `name.path = "…"`.
                Some((name, sub)) => (name, sub == "workspace" || sub == "path"),
                None => (key, dep_value_is_in_tree(value)),
            };
            if !ok {
                out.push(Violation {
                    rule: "H1",
                    path: path.to_string(),
                    line: lineno,
                    msg: format!("registry dependency `{name}` (only in-tree path deps allowed)"),
                });
            }
        }
    }
    flush(&mut table_entry, &mut out);
    out
}

/// Parses `allow.toml`: a list of `[[allow]]` tables with mandatory
/// `rule`, `path`, and `reason` string keys.
pub fn parse_allowlist(src: &str) -> Result<Vec<Allow>, String> {
    let mut out: Vec<Allow> = Vec::new();
    let mut open = false;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = toml_strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            out.push(Allow {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
            });
            open = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("allow.toml:{lineno}: expected `key = \"value\"`"));
        };
        if !open {
            return Err(format!(
                "allow.toml:{lineno}: key outside an [[allow]] table"
            ));
        }
        let value = value.trim().trim_matches('"').to_string();
        let Some(entry) = out.last_mut() else {
            return Err(format!("allow.toml:{lineno}: key before first [[allow]]"));
        };
        match key.trim() {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "reason" => entry.reason = value,
            other => return Err(format!("allow.toml:{lineno}: unknown key `{other}`")),
        }
    }
    for (i, e) in out.iter().enumerate() {
        if e.rule.is_empty() || e.path.is_empty() || e.reason.is_empty() {
            return Err(format!(
                "allow.toml: entry #{} must set rule, path, and a non-empty reason",
                i + 1
            ));
        }
    }
    Ok(out)
}

/// Recursively collects `Cargo.toml` and `.rs` files under `root`,
/// skipping `target/`, hidden directories, and VCS metadata. Sorted for
/// deterministic output.
fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(p);
            } else if name == "Cargo.toml" || name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the full check over the workspace at `root`, applying the
/// allowlist at `crates/xtask/allow.toml` (absent file = empty list).
pub fn run_check(root: &Path) -> Result<Report, String> {
    let allow_path = root.join("crates/xtask/allow.toml");
    let allows = match fs::read_to_string(&allow_path) {
        Ok(s) => parse_allowlist(&s)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{}: {e}", allow_path.display())),
    };

    let files = collect_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut report = Report::default();
    let mut used = vec![false; allows.len()];
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            fs::read_to_string(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        report.files_scanned += 1;
        let violations = if rel.ends_with("Cargo.toml") {
            check_manifest(&rel, &src)
        } else {
            scan_rust(&rel, &src)
        };
        for v in violations {
            let hit = allows
                .iter()
                .position(|a| a.rule == v.rule && a.path == v.path);
            match hit {
                Some(i) => {
                    used[i] = true;
                    report.suppressed += 1;
                }
                None => report.violations.push(v),
            }
        }
    }
    report.unused_allows = allows
        .into_iter()
        .zip(used)
        .filter_map(|(a, u)| if u { None } else { Some(a) })
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fixture sources are assembled from escaped single-line strings so
    // the scanner's per-line string stripping never hides them from the
    // rules under test (and so this file does not flag itself).

    #[test]
    fn d1_flags_wall_clock() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let v = scan_rust("crates/netsim/src/x.rs", src);
        let d1: Vec<_> = v.iter().filter(|v| v.rule == "D1").collect();
        assert_eq!(d1.len(), 2);
        assert_eq!(d1[0].line, 1);
        assert_eq!(d1[1].line, 2);
    }

    #[test]
    fn d1_ignores_comments_and_strings() {
        let src = "// std::time::Instant is banned\nfn f() { let s = \"Instant::now\"; }\n";
        assert!(scan_rust("src/x.rs", src).is_empty());
    }

    #[test]
    fn d2_flags_entropy() {
        let src = "fn f() { let mut r = rand::thread_rng(); }\nfn g() { OsRng.fill(); }\n";
        let v = scan_rust("crates/sim/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "D2").count(), 2);
    }

    #[test]
    fn d3_flags_hash_iteration_in_decision_crates() {
        let src = concat!(
            "use std::collections::HashMap;\n",
            "struct S { entries: HashMap<u64, u64> }\n",
            "impl S {\n",
            "    fn f(&self) -> u64 { self.entries.values().sum() }\n",
            "}\n",
            "fn g() {\n",
            "    let mut seen = HashMap::new();\n",
            "    for (k, v) in &seen { let _ = (k, v); }\n",
            "}\n",
        );
        let v = scan_rust("crates/core/src/x.rs", src);
        let d3: Vec<_> = v.iter().filter(|v| v.rule == "D3").collect();
        assert_eq!(d3.len(), 2, "{d3:?}");
        assert_eq!(d3[0].line, 4);
        assert_eq!(d3[1].line, 8);
        // The same source outside a decision crate is fine.
        assert!(scan_rust("crates/workload/src/x.rs", src).is_empty());
    }

    #[test]
    fn d3_allows_membership_and_ordered_maps() {
        let src = concat!(
            "use std::collections::{BTreeMap, HashSet};\n",
            "fn f(s: HashSet<u64>, m: BTreeMap<u64, u64>) -> bool {\n",
            "    for (k, _) in &m { let _ = k; }\n",
            "    s.contains(&1)\n",
            "}\n",
        );
        assert!(scan_rust("crates/pastry/src/x.rs", src).is_empty());
    }

    #[test]
    fn p1_flags_panics_in_protocol_code_only() {
        let src = concat!(
            "fn f(x: Option<u64>) -> u64 { x.unwrap() }\n",
            "fn g(x: Option<u64>) -> u64 { x.expect(\"msg\") }\n",
            "fn h() { panic!(\"boom\") }\n",
            "fn ok(x: Option<u64>) -> u64 { x.unwrap_or(0) }\n",
        );
        let v = scan_rust("crates/pastry/src/x.rs", src);
        let p1: Vec<_> = v.iter().filter(|v| v.rule == "P1").collect();
        assert_eq!(p1.len(), 3, "{p1:?}");
        // Non-protocol crates may panic.
        assert!(scan_rust("crates/sim/src/x.rs", src).is_empty());
        // Integration tests of protocol crates may panic.
        assert!(scan_rust("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn p1_skips_cfg_test_modules() {
        let src = concat!(
            "fn f(x: Option<u64>) -> u64 { x.unwrap_or(1) }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { assert_eq!(super::f(None).checked_add(1).unwrap(), 2); }\n",
            "}\n",
            "fn after(x: Option<u64>) -> u64 { x.unwrap() }\n",
        );
        let v = scan_rust("crates/core/src/x.rs", src);
        let p1: Vec<_> = v.iter().filter(|v| v.rule == "P1").collect();
        assert_eq!(p1.len(), 1, "{p1:?}");
        assert_eq!(p1[0].line, 7);
    }

    #[test]
    fn o1_flags_prints_in_library_code_only() {
        let src = concat!(
            "pub fn f() { println!(\"hi\"); }\n",
            "pub fn g() { eprintln!(\"warn\"); }\n",
            "pub fn ok() { let s = \"println!\"; let _ = s; }\n",
        );
        let v = scan_rust("crates/core/src/x.rs", src);
        let o1: Vec<_> = v.iter().filter(|v| v.rule == "O1").collect();
        assert_eq!(o1.len(), 2, "{o1:?}");
        assert_eq!(o1[0].line, 1);
        assert_eq!(o1[1].line, 2);
        // Binary entry points own stdout.
        assert!(scan_rust("crates/core/src/bin/tool.rs", src).is_empty());
        assert!(scan_rust("crates/xtask/src/main.rs", src).is_empty());
        // Test and bench files are exempt.
        assert!(scan_rust("crates/core/tests/x.rs", src).is_empty());
        assert!(scan_rust("crates/bench/benches/x.rs", src).is_empty());
    }

    #[test]
    fn o1_skips_cfg_test_modules() {
        let src = concat!(
            "pub fn f() -> u64 { 1 }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { println!(\"debug: {}\", super::f()); }\n",
            "}\n",
        );
        assert!(scan_rust("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn u1_flags_unsafe_everywhere() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let v = scan_rust("crates/workload/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "U1").count(), 1);
        assert!(scan_rust("src/x.rs", "fn unsafe_sounding_name() {}\n").is_empty());
    }

    #[test]
    fn h1_flags_registry_deps() {
        let src = concat!(
            "[package]\n",
            "name = \"demo\"\n",
            "[dependencies]\n",
            "past-crypto.workspace = true\n",
            "past-core = { path = \"../core\" }\n",
            "rand = \"0.9\"\n",
            "[dev-dependencies]\n",
            "proptest = { version = \"1\", default-features = false }\n",
        );
        let v = check_manifest("crates/demo/Cargo.toml", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].rule, "H1");
        assert_eq!(v[0].line, 6);
        assert!(v[0].msg.contains("rand"));
        assert_eq!(v[1].line, 8);
        assert!(v[1].msg.contains("proptest"));
    }

    #[test]
    fn h1_checks_workspace_and_table_deps() {
        let src = concat!(
            "[workspace.dependencies]\n",
            "past-core = { path = \"crates/core\" }\n",
            "serde = \"1\"\n",
            "[dependencies.criterion]\n",
            "version = \"0.8\"\n",
            "[dependencies.past-sim]\n",
            "path = \"crates/sim\"\n",
        );
        let v = check_manifest("Cargo.toml", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.msg.contains("serde") && v.line == 3));
        assert!(v.iter().any(|v| v.msg.contains("criterion") && v.line == 4));
    }

    #[test]
    fn allowlist_parses_and_rejects_incomplete_entries() {
        let src = concat!(
            "# exceptions\n",
            "[[allow]]\n",
            "rule = \"D1\"\n",
            "path = \"crates/bench/src/timing.rs\"\n",
            "reason = \"wall-clock bench harness\"\n",
        );
        let allows = parse_allowlist(src).expect("parses");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "D1");
        assert_eq!(allows[0].path, "crates/bench/src/timing.rs");
        assert!(parse_allowlist("[[allow]]\nrule = \"D1\"\n").is_err());
        assert!(parse_allowlist("rule = \"D1\"\n").is_err());
        assert!(parse_allowlist("[[allow]]\nbogus = \"x\"\n").is_err());
    }

    #[test]
    fn sanitize_strips_strings_and_block_comments() {
        let mut blk = false;
        assert_eq!(
            sanitize("let x = \"a // b\"; // c", &mut blk),
            "let x = \"\"; "
        );
        assert_eq!(sanitize("a /* b", &mut blk), "a ");
        assert!(blk);
        assert_eq!(sanitize("still */ code", &mut blk), " code");
        assert!(!blk);
        assert_eq!(sanitize("let c = '\"'; x", &mut blk), "let c = ' '; x");
    }

    #[test]
    fn current_tree_passes_clean() {
        // CARGO_MANIFEST_DIR = crates/xtask; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let report = run_check(root).expect("check runs");
        assert!(report.files_scanned > 80, "walked the real tree");
        assert!(
            report.violations.is_empty(),
            "violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.unused_allows.is_empty(),
            "stale allowlist entries: {:?}",
            report.unused_allows
        );
    }
}
