//! Golden determinism tests.
//!
//! A seeded 512-node overlay is built (once by protocol joins, once by the
//! static builder, once statically with randomized routing) and 1 000 keys
//! are routed through it. The exact hop-count histogram, message/byte
//! counters and final simulated time are asserted against committed
//! values: any change to the engine, the routing decision, the modular
//! arithmetic or the topology code that alters simulation outcomes — even
//! by one message — fails here. Performance refactors must keep these
//! fingerprints bit-identical.
//!
//! If a deliberate semantic change (new message, different wire sizes,
//! different maintenance fan-out) moves the numbers, regenerate the
//! constants by running the tests and copying the reported fingerprints.
//! Byte counters were last regenerated when `wire_size()` switched from
//! hand-maintained estimates to the exact codec length (DESIGN.md §13):
//! the estimates overstated routed `()` frames at 80 bytes vs the real
//! 38, so `total_bytes` dropped ~52% with identical message counts.

use past_crypto::rng::Rng;
use past_netsim::{FaultConfig, Sphere, TraceConfig};
use past_pastry::{random_ids, static_build, Config, Id, NullApp, PastrySim};

const N: usize = 512;
const ROUTES: usize = 1_000;

/// Routes `ROUTES` seeded keys and folds everything observable into one
/// comparable fingerprint string.
fn fingerprint(sim: &mut PastrySim<NullApp, Sphere>, route_seed: u64) -> String {
    let build_msgs = sim.engine.stats.total_msgs;
    let build_bytes = sim.engine.stats.total_bytes;
    let mut rng = Rng::seed_from_u64(route_seed);
    let mut hist: Vec<u64> = Vec::new();
    let mut delivered = 0u64;
    for _ in 0..ROUTES {
        let key = Id(rng.random());
        let from = rng.random_range(0..N);
        sim.route(from, key, ());
        for rec in sim.drain_deliveries() {
            delivered += 1;
            let h = rec.hops as usize;
            if hist.len() <= h {
                hist.resize(h + 1, 0);
            }
            hist[h] += 1;
        }
    }
    format!(
        "build_msgs={build_msgs} build_bytes={build_bytes} delivered={delivered} \
         hist={hist:?} total_msgs={} total_bytes={} now_us={}",
        sim.engine.stats.total_msgs,
        sim.engine.stats.total_bytes,
        sim.engine.now().as_micros(),
    )
}

#[test]
fn golden_static_build() {
    let mut rng = Rng::seed_from_u64(2026);
    let ids = random_ids(N, &mut rng);
    let mut sim = static_build(
        Sphere::new(N, 2026),
        Config::default(),
        2026,
        &ids,
        |_| NullApp,
        3,
    );
    assert_eq!(
        fingerprint(&mut sim, 77),
        "build_msgs=0 build_bytes=0 delivered=1000 hist=[2, 78, 655, 265] \
         total_msgs=3183 total_bytes=120954 now_us=106351091"
    );
}

/// Installing an all-zero fault config must not perturb the golden run:
/// the fault layer draws no randomness unless a fault rate is non-zero.
#[test]
fn golden_static_build_with_zero_fault_config() {
    let mut rng = Rng::seed_from_u64(2026);
    let ids = random_ids(N, &mut rng);
    let mut sim = static_build(
        Sphere::new(N, 2026),
        Config::default(),
        2026,
        &ids,
        |_| NullApp,
        3,
    );
    sim.engine.set_faults(FaultConfig::default(), 0xdead_beef);
    assert_eq!(
        fingerprint(&mut sim, 77),
        "build_msgs=0 build_bytes=0 delivered=1000 hist=[2, 78, 655, 265] \
         total_msgs=3183 total_bytes=120954 now_us=106351091"
    );
}

/// Tracing is observation, not participation: with every trace class on,
/// the overlay fingerprint stays bit-identical to the untraced golden,
/// and the trace itself is deterministic — the same seed produces the
/// same record stream, pinned by a golden fingerprint of its own.
#[test]
fn golden_static_build_with_full_tracing() {
    let run = || {
        let mut rng = Rng::seed_from_u64(2026);
        let ids = random_ids(N, &mut rng);
        let mut sim = static_build(
            Sphere::new(N, 2026),
            Config::default(),
            2026,
            &ids,
            |_| NullApp,
            3,
        );
        sim.engine.set_tracing(TraceConfig::full());
        let overlay = fingerprint(&mut sim, 77);
        let trace = sim.engine.tracer().fingerprint();
        (overlay, trace)
    };
    let (overlay, trace) = run();
    assert_eq!(
        overlay,
        "build_msgs=0 build_bytes=0 delivered=1000 hist=[2, 78, 655, 265] \
         total_msgs=3183 total_bytes=120954 now_us=106351091",
        "tracing must not perturb the simulation"
    );
    let (overlay2, trace2) = run();
    assert_eq!(overlay, overlay2);
    assert_eq!(trace, trace2, "same seed must yield the same trace");
    assert_eq!(
        trace, 12498307569152895729,
        "golden trace fingerprint moved"
    );
}

#[test]
fn golden_static_build_randomized_routing() {
    let mut rng = Rng::seed_from_u64(4096);
    let ids = random_ids(N, &mut rng);
    let cfg = Config {
        route_randomization: 0.25,
        ..Config::default()
    };
    let mut sim = static_build(Sphere::new(N, 4096), cfg, 4096, &ids, |_| NullApp, 3);
    assert_eq!(
        fingerprint(&mut sim, 78),
        "build_msgs=0 build_bytes=0 delivered=1000 \
         hist=[5, 60, 466, 306, 126, 28, 5, 3, 1] \
         total_msgs=3613 total_bytes=137294 now_us=127710951"
    );
}

#[test]
fn golden_protocol_joins() {
    let mut rng = Rng::seed_from_u64(31337);
    let ids = random_ids(N, &mut rng);
    let mut sim = PastrySim::new(Sphere::new(N, 31337), Config::default(), 31337);
    sim.build_by_joins(&ids, |_| NullApp, 4);
    for a in 0..N {
        assert!(sim.engine.node(a).joined, "node {a} failed to join");
    }
    assert_eq!(
        fingerprint(&mut sim, 79),
        "build_msgs=20618 build_bytes=1717332 delivered=1000 \
         hist=[2, 68, 629, 301] \
         total_msgs=23847 total_bytes=1840034 now_us=256385578"
    );
}
