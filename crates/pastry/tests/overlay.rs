//! End-to-end overlay tests: protocol joins, routing correctness against
//! ground truth, failure recovery, and the static builder.

use past_crypto::rng::Rng;
use past_netsim::Sphere;
use past_pastry::{random_ids, static_build, Behavior, Config, Id, NullApp, PastrySim};

fn small_cfg() -> Config {
    Config {
        leaf_len: 8,
        neighborhood_len: 8,
        ..Config::default()
    }
}

fn build_network(n: usize, seed: u64, cfg: Config) -> PastrySim<NullApp, Sphere> {
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let topo = Sphere::new(n, seed);
    let mut sim = PastrySim::new(topo, cfg, seed);
    sim.build_by_joins(&ids, |_| NullApp, 8);
    sim
}

#[test]
fn joins_complete_and_fill_leaf_sets() {
    let n = 60;
    let sim = build_network(n, 11, small_cfg());
    for a in 0..n {
        let node = sim.engine.node(a);
        assert!(node.joined, "node {a} failed to join");
        assert_eq!(
            node.state.leaf.len(),
            small_cfg().leaf_len,
            "node {a} leaf set underfull"
        );
    }
}

#[test]
fn routes_reach_the_numerically_closest_node() {
    let n = 80;
    let mut sim = build_network(n, 13, small_cfg());
    let mut rng = Rng::seed_from_u64(99);
    let mut checked = 0;
    for _ in 0..200 {
        let key = Id(rng.random());
        let from = rng.random_range(0..n);
        sim.route(from, key, ());
        let recs = sim.drain_deliveries();
        assert_eq!(recs.len(), 1, "exactly one delivery per route");
        let rec = recs[0];
        let root = sim.true_root(&key).unwrap();
        assert_eq!(
            rec.delivered_at, root.addr,
            "key {key} delivered at {} but true root is {}",
            rec.delivered_at, root.addr
        );
        checked += 1;
    }
    assert_eq!(checked, 200);
}

#[test]
fn hop_count_is_logarithmic() {
    let n = 100;
    let mut sim = build_network(n, 17, small_cfg());
    let mut rng = Rng::seed_from_u64(5);
    let mut total_hops = 0u64;
    let trials = 150;
    for _ in 0..trials {
        let key = Id(rng.random());
        let from = rng.random_range(0..n);
        sim.route(from, key, ());
        let recs = sim.drain_deliveries();
        total_hops += recs[0].hops as u64;
    }
    let avg = total_hops as f64 / trials as f64;
    // ceil(log16(100)) = 2; the paper's bound is "less than ceil(log_2^b N)"
    // on average. Allow generous slack for the small network.
    assert!(avg <= 2.5, "average hops {avg} too high for n={n}");
    assert!(avg >= 0.5, "average hops {avg} suspiciously low");
}

#[test]
fn routing_survives_node_failures_after_stabilize() {
    let n = 60;
    let cfg = small_cfg();
    let mut sim = build_network(n, 19, cfg);
    // Kill 10% of nodes (but never node 0, our probe origin).
    let mut rng = Rng::seed_from_u64(7);
    let mut killed = std::collections::HashSet::new();
    while killed.len() < n / 10 {
        let v = rng.random_range(1..n);
        if killed.insert(v) {
            sim.engine.kill(v);
        }
    }
    // Repair through heartbeats.
    sim.stabilize();
    sim.stabilize();
    // All routes must still complete, at a live node.
    for _ in 0..100 {
        let key = Id(rng.random());
        sim.route(0, key, ());
        let recs = sim.drain_deliveries();
        assert_eq!(recs.len(), 1, "route lost after failures");
        assert!(
            sim.engine.is_alive(recs[0].delivered_at),
            "delivered at a dead node"
        );
        let root = sim.true_root(&key).unwrap();
        assert_eq!(recs[0].delivered_at, root.addr, "wrong root after repair");
    }
}

#[test]
fn in_flight_routes_are_rerouted_around_dead_nodes() {
    let n = 60;
    let mut sim = build_network(n, 23, small_cfg());
    let mut rng = Rng::seed_from_u64(3);
    // Kill nodes *without* stabilizing: messages must be re-routed via
    // the send-failure path.
    for _ in 0..6 {
        let v = rng.random_range(1..n);
        sim.engine.kill(v);
    }
    let mut delivered = 0;
    for _ in 0..60 {
        let key = Id(rng.random());
        sim.route(0, key, ());
        let recs = sim.drain_deliveries();
        if let Some(rec) = recs.first() {
            assert!(sim.engine.is_alive(rec.delivered_at));
            delivered += 1;
        }
    }
    assert_eq!(delivered, 60, "all routes should eventually deliver");
}

#[test]
fn static_build_routes_correctly() {
    let n = 500;
    let mut rng = Rng::seed_from_u64(31);
    let ids = random_ids(n, &mut rng);
    let topo = Sphere::new(n, 31);
    let mut sim = static_build(topo, Config::default(), 31, &ids, |_| NullApp, 4);
    for _ in 0..200 {
        let key = Id(rng.random());
        let from = rng.random_range(0..n);
        sim.route(from, key, ());
        let recs = sim.drain_deliveries();
        assert_eq!(recs.len(), 1);
        let root = sim.true_root(&key).unwrap();
        assert_eq!(recs[0].delivered_at, root.addr);
    }
}

#[test]
fn static_build_hops_scale_logarithmically() {
    let mut results = Vec::new();
    for (n, seed) in [(256usize, 41u64), (2048, 43)] {
        let mut rng = Rng::seed_from_u64(seed);
        let ids = random_ids(n, &mut rng);
        let topo = Sphere::new(n, seed);
        let mut sim = static_build(topo, Config::default(), seed, &ids, |_| NullApp, 2);
        let mut hops = 0u64;
        let trials = 300;
        for _ in 0..trials {
            let key = Id(rng.random());
            let from = rng.random_range(0..n);
            sim.route(from, key, ());
            hops += sim.drain_deliveries()[0].hops as u64;
        }
        results.push(hops as f64 / trials as f64);
    }
    let bound_256 = (256f64).log(16.0).ceil();
    let bound_2048 = (2048f64).log(16.0).ceil();
    assert!(
        results[0] <= bound_256,
        "avg hops {} exceeds paper bound {bound_256} at n=256",
        results[0]
    );
    assert!(
        results[1] <= bound_2048,
        "avg hops {} exceeds paper bound {bound_2048} at n=2048",
        results[1]
    );
    assert!(results[1] > results[0], "hops should grow with n");
}

#[test]
fn malicious_nodes_block_deterministic_routes_but_not_randomized() {
    let n = 120;
    let cfg = small_cfg();
    let mut sim = build_network(n, 47, cfg);
    let mut rng = Rng::seed_from_u64(8);

    // Pick a key whose deterministic route from node 0 has an intermediate
    // hop; make that hop malicious.
    let mut key = Id(rng.random());
    loop {
        sim.route(0, key, ());
        let recs = sim.drain_deliveries();
        if recs[0].hops >= 2 {
            break;
        }
        key = Id(rng.random());
    }
    // Find the first hop (the node 0 forwards to) by asking its state.
    let first_hop = {
        let state = &sim.engine.node(0).state;
        match past_pastry::next_hop(state, &key, &mut Rng::seed_from_u64(0)) {
            past_pastry::NextHop::Forward(h) => h.addr,
            _ => panic!("expected a forward"),
        }
    };
    sim.engine.node_mut(first_hop).behavior = Behavior::DropRoutes;

    // Deterministic retries keep taking the same bad path.
    let mut det_delivered = 0;
    for _ in 0..5 {
        sim.route(0, key, ());
        det_delivered += sim.drain_deliveries().len();
    }
    assert_eq!(
        det_delivered, 0,
        "deterministic routing cannot avoid the bad node"
    );

    // Randomized retries eventually get around it.
    for a in 0..n {
        sim.engine.node_mut(a).state.cfg.route_randomization = 0.5;
    }
    let mut rand_delivered = 0;
    for _ in 0..20 {
        sim.route(0, key, ());
        rand_delivered += sim.drain_deliveries().len();
    }
    assert!(
        rand_delivered > 0,
        "randomized routing should route around the malicious node"
    );
}

#[test]
fn deterministic_replay_of_whole_network() {
    let build_and_fingerprint = || {
        let mut sim = build_network(40, 53, small_cfg());
        let mut rng = Rng::seed_from_u64(1);
        let mut fp = 0u64;
        for _ in 0..50 {
            let key = Id(rng.random());
            sim.route(rng.random_range(0..40), key, ());
            for rec in sim.drain_deliveries() {
                fp = fp
                    .wrapping_mul(31)
                    .wrapping_add(rec.hops as u64)
                    .wrapping_add(rec.path_us);
            }
        }
        (fp, sim.engine.stats.total_msgs)
    };
    assert_eq!(build_and_fingerprint(), build_and_fingerprint());
}

#[test]
fn join_cost_scales_logarithmically() {
    // Count protocol messages consumed by a single join at two sizes.
    let mut msgs = Vec::new();
    for (n, seed) in [(64usize, 61u64), (512, 67)] {
        let mut rng = Rng::seed_from_u64(seed);
        let ids = random_ids(n + 1, &mut rng);
        let topo = Sphere::new(n + 1, seed);
        let mut sim = static_build(topo, small_cfg(), seed, &ids[..n], |_| NullApp, 2);
        sim.engine.stats.reset();
        sim.join_node_nearby(ids[n], NullApp, 8);
        msgs.push(sim.engine.stats.total_msgs);
    }
    // Join cost grows slowly (log-ish): 8x the nodes should cost far less
    // than 8x the messages.
    assert!(msgs[1] < msgs[0] * 4, "join cost grew too fast: {msgs:?}");
    assert!(msgs[0] > 0);
}

#[test]
fn recovered_nodes_rejoin_the_ring() {
    let n = 60;
    let mut sim = build_network(n, 71, small_cfg());
    let mut rng = Rng::seed_from_u64(4);
    // Fail a node, repair the ring around it.
    let victim = 17;
    sim.engine.kill(victim);
    sim.stabilize();
    sim.stabilize();
    // Recover: the node re-contacts its last-known leaf set.
    let contacted = sim.recover_node(victim);
    assert!(contacted > 0, "recovery must contact the old leaf set");
    sim.stabilize();
    // The recovered node is routable again: keys closest to its id land
    // on it.
    let vid = sim.handle(victim).id;
    for _ in 0..20 {
        let key = past_pastry::Id(vid.0.wrapping_add(rng.random_range(0..1024)));
        if sim.true_root(&key).unwrap().addr != victim {
            continue;
        }
        sim.route(0, key, ());
        let recs = sim.drain_deliveries();
        assert_eq!(
            recs[0].delivered_at, victim,
            "recovered node serves its keys"
        );
    }
    // And its leaf set is healthy again.
    assert_eq!(
        sim.engine.node(victim).state.leaf.len(),
        small_cfg().leaf_len
    );
}

#[test]
fn paper_typical_config_works() {
    // b=4, l=32, M=32 — the HotOS paper's "typical values".
    let n = 120;
    let cfg = Config::paper_typical();
    let mut rng = Rng::seed_from_u64(81);
    let ids = random_ids(n, &mut rng);
    let topo = Sphere::new(n, 81);
    let mut sim = PastrySim::new(topo, cfg, 81);
    sim.build_by_joins(&ids, |_| NullApp, 8);
    for _ in 0..100 {
        let key = Id(rng.random());
        let from = rng.random_range(0..n);
        sim.route(from, key, ());
        let recs = sim.drain_deliveries();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].delivered_at, sim.true_root(&key).unwrap().addr);
    }
    // With l=32, each node's leaf set holds 32 members.
    for a in 0..n {
        assert_eq!(sim.engine.node(a).state.leaf.len(), 32);
    }
}

#[test]
fn routing_works_on_all_topologies() {
    use past_netsim::{Plane, TransitStub, UniformRandom};
    let n = 100;
    let mut rng = Rng::seed_from_u64(91);
    let ids = random_ids(n, &mut rng);

    fn check<T: past_netsim::Topology>(topo: T, ids: &[past_pastry::Id], seed: u64) {
        let n = ids.len();
        let mut sim = PastrySim::new(
            topo,
            Config {
                leaf_len: 8,
                neighborhood_len: 8,
                ..Config::default()
            },
            seed,
        );
        sim.build_by_joins(ids, |_| NullApp, 8);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..60 {
            let key = Id(rng.random());
            let from = rng.random_range(0..n);
            sim.route(from, key, ());
            let recs = sim.drain_deliveries();
            assert_eq!(recs.len(), 1);
            assert_eq!(recs[0].delivered_at, sim.true_root(&key).unwrap().addr);
        }
    }
    check(Plane::new(n, 91, 60_000), &ids, 91);
    check(TransitStub::new(n, 92, 4, 4), &ids, 92);
    check(UniformRandom::new(n, 93, 500, 90_000), &ids, 93);
}

#[test]
fn b_one_and_b_eight_configurations_route() {
    // b is a free parameter; digit widths 1 and 8 exercise the extremes.
    for (b, seed) in [(1u8, 101u64), (8, 103)] {
        let n = 80;
        let cfg = Config {
            b,
            leaf_len: 8,
            neighborhood_len: 8,
            ..Config::default()
        };
        let mut rng = Rng::seed_from_u64(seed);
        let ids = random_ids(n, &mut rng);
        let mut sim = PastrySim::new(Sphere::new(n, seed), cfg, seed);
        sim.build_by_joins(&ids, |_| NullApp, 8);
        for _ in 0..50 {
            let key = Id(rng.random());
            let from = rng.random_range(0..n);
            sim.route(from, key, ());
            let recs = sim.drain_deliveries();
            assert_eq!(recs.len(), 1, "b={b}");
            assert_eq!(
                recs[0].delivered_at,
                sim.true_root(&key).unwrap().addr,
                "b={b}: wrong root"
            );
        }
    }
}

#[test]
fn leaf_and_table_invariants_hold_through_churn() {
    use past_invariants::{assert_clean, check_overlay};
    let n = 50;
    let mut sim = build_network(
        n,
        117,
        Config {
            leaf_len: 16,
            neighborhood_len: 8,
            ..Config::default()
        },
    );
    assert_clean("after bulk join", &check_overlay(&sim.snapshot_overlay()));

    // Fail 5 nodes and repair through heartbeats.
    for a in 30..35 {
        sim.engine.kill(a);
    }
    sim.stabilize();
    sim.stabilize();
    assert_clean("after failures", &check_overlay(&sim.snapshot_overlay()));

    // Two of them come back with their old state.
    sim.recover_node(30);
    sim.recover_node(31);
    sim.stabilize();
    assert_clean("after recovery", &check_overlay(&sim.snapshot_overlay()));
}

#[test]
fn recovery_reaches_neighbors_beyond_the_stale_leaf_set() {
    use past_invariants::{assert_clean, check_overlay};
    // Regression: a node that dies together with its nearest smaller-side
    // neighbor revives with a leaf set that never contained the node just
    // beyond that neighbor — yet after the buddy's death that node is a
    // true ring neighbor and must learn of the revival (I1 symmetry).
    let n = 60;
    let mut sim = build_network(n, 71, small_cfg());
    let victim = 17;
    let buddy = {
        let snap = sim.snapshot_overlay();
        let v = snap.nodes.iter().find(|nd| nd.addr == victim).unwrap();
        v.leaf_smaller[0].addr
    };
    sim.engine.kill(victim);
    sim.engine.kill(buddy);
    sim.stabilize();
    sim.stabilize();
    sim.recover_node(victim);
    sim.stabilize();
    assert_clean(
        "after masked recovery",
        &check_overlay(&sim.snapshot_overlay()),
    );
}
