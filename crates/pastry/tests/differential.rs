//! Differential equivalence tests.
//!
//! Two families:
//!
//! 1. Heap vs wheel: the hierarchical timer wheel replaced the binary
//!    heap as the sequential engine's default event queue; the heap
//!    survives as a reference backend
//!    (`Engine::use_reference_heap_queue`). A seeded 512-node
//!    lossy-churn run must be bit-identical under both.
//! 2. 1 shard vs N shards: the sharded engine's determinism claim is
//!    shard-count independence. The same 512-node lossy-churn overlay
//!    run — protocol joins, faulty routes, churn, stabilization — must
//!    produce identical overlay snapshots, NetStats, trace
//!    fingerprints, engine fingerprints, deliveries, and clocks at 1
//!    shard and at 4 shards.

use past_crypto::rng::Rng;
use past_netsim::{FaultConfig, SeriesConfig, ShardConfig, Sphere, TraceConfig};
use past_pastry::{
    random_ids, static_build, static_build_sharded, Config, Id, NullApp, PastrySim,
    ShardedPastrySim,
};

const N: usize = 512;

fn lossy_churn_run(reference_heap: bool) -> String {
    let mut rng = Rng::seed_from_u64(9090);
    let ids = random_ids(N, &mut rng);
    let mut sim: PastrySim<NullApp, Sphere> =
        PastrySim::new(Sphere::new(N, 9090), Config::default(), 9090);
    if reference_heap {
        // Must happen before anything is scheduled; the backends share
        // the seq counter so tie keys stay aligned from event zero.
        sim.engine.use_reference_heap_queue();
    }
    sim.engine.set_tracing(TraceConfig::full());
    sim.build_by_joins(&ids, |_| NullApp, 4);

    // Lossy phase: faults on, routed traffic, then churn + stabilize.
    sim.engine.set_faults(
        FaultConfig {
            loss: 0.05,
            duplicate: 0.01,
            jitter_us: 20_000,
        },
        0xd1ff,
    );
    let mut key_rng = Rng::seed_from_u64(4242);
    let mut deliveries = String::new();
    let mut route = |sim: &mut PastrySim<NullApp, Sphere>, out: &mut String, routes: usize| {
        for _ in 0..routes {
            let key = Id(key_rng.random());
            let from = key_rng.random_range(0..N);
            sim.route(from, key, ());
            for rec in sim.drain_deliveries() {
                out.push_str(&format!(
                    "{}@{}+{};",
                    rec.delivered_at,
                    rec.at.as_micros(),
                    rec.hops
                ));
            }
        }
    };
    route(&mut sim, &mut deliveries, 300);
    for i in 0..24 {
        sim.engine.kill((i * 21 + 5) % N);
    }
    sim.stabilize();
    route(&mut sim, &mut deliveries, 200);

    let alive: Vec<usize> = (0..N).filter(|&a| sim.engine.is_alive(a)).collect();
    format!(
        "trace_fp={} total_msgs={} total_bytes={} dropped={} duplicated={} \
         failed_sends={} now_us={} alive={} deliveries={}",
        sim.engine.tracer().fingerprint(),
        sim.engine.stats.total_msgs,
        sim.engine.stats.total_bytes,
        sim.engine.stats.dropped,
        sim.engine.stats.duplicated,
        sim.engine.stats.failed_sends,
        sim.engine.now().as_micros(),
        alive.len(),
        deliveries,
    )
}

#[test]
fn heap_and_wheel_lossy_churn_runs_are_bit_identical() {
    let wheel = lossy_churn_run(false);
    let heap = lossy_churn_run(true);
    assert!(
        wheel.contains("dropped=") && !wheel.contains("dropped=0 "),
        "the fault layer must actually drop messages for this test to bite"
    );
    assert_eq!(wheel, heap, "heap and wheel runs diverged");
}

/// The sharded engine needs a delay floor at least as wide as its
/// window (sealed-batch safety); 2 ms on a [`Sphere`] leaves the
/// proximity structure intact (points don't move, short links clamp).
const FLOOR_US: u64 = 2_000;

/// Runs the 512-node lossy-churn workload at `shards` workers and
/// returns the engine/overlay summary string plus the flight-recorder
/// series in its canonical (shard-diagnostic-free) serialization.
fn sharded_lossy_churn_run(shards: usize) -> (String, String) {
    let mut rng = Rng::seed_from_u64(9090);
    let ids = random_ids(N, &mut rng);
    let mut sim: ShardedPastrySim<NullApp, Sphere> = ShardedPastrySim::new_sharded(
        Sphere::with_delay_floor(N, 9090, FLOOR_US),
        Config::default(),
        9090,
        ShardConfig {
            shards,
            window_us: FLOOR_US,
        },
    )
    .expect("window == delay floor is safe");
    sim.engine.set_tracing(TraceConfig::full());
    sim.engine.set_series(SeriesConfig::new(1_000_000));
    sim.build_by_joins(&ids, |_| NullApp, 4);

    sim.engine.set_faults(
        FaultConfig {
            loss: 0.05,
            duplicate: 0.01,
            jitter_us: 20_000,
        },
        0xd1ff,
    );
    let mut key_rng = Rng::seed_from_u64(4242);
    let mut deliveries = String::new();
    let mut route =
        |sim: &mut ShardedPastrySim<NullApp, Sphere>, out: &mut String, routes: usize| {
            for _ in 0..routes {
                let key = Id(key_rng.random());
                let from = key_rng.random_range(0..N);
                sim.route(from, key, ());
                for rec in sim.drain_deliveries() {
                    out.push_str(&format!(
                        "{}@{}+{};",
                        rec.delivered_at,
                        rec.at.as_micros(),
                        rec.hops
                    ));
                }
            }
        };
    route(&mut sim, &mut deliveries, 300);
    for i in 0..24 {
        sim.engine.kill((i * 21 + 5) % N);
    }
    sim.stabilize();
    route(&mut sim, &mut deliveries, 200);

    let alive: Vec<usize> = (0..N).filter(|&a| sim.engine.is_alive(a)).collect();
    // The overlay snapshot Debug dump covers every leaf set and routing
    // table; hash it so assertion output stays readable on divergence.
    let snap_hash = past_trace::fnv1a(format!("{:?}", sim.snapshot_overlay()).as_bytes());
    let (total_msgs, total_bytes, dropped, duplicated, failed_sends) = {
        let st = sim.engine.stats();
        (
            st.total_msgs,
            st.total_bytes,
            st.dropped,
            st.duplicated,
            st.failed_sends,
        )
    };
    let tracer = sim.engine.take_tracer();
    let series = tracer.series().expect("series sampling was enabled");
    let summary = format!(
        "trace_fp={} series_fp={} engine_fp={} snapshot={} total_msgs={} total_bytes={} \
         dropped={} duplicated={} failed_sends={} now_us={} alive={} deliveries={}",
        tracer.fingerprint(),
        series.fingerprint(),
        sim.engine.fingerprint(),
        snap_hash,
        total_msgs,
        total_bytes,
        dropped,
        duplicated,
        failed_sends,
        sim.engine.now().as_micros(),
        alive.len(),
        deliveries,
    );
    (summary, series.canonical_lines())
}

#[test]
fn one_shard_and_four_shard_lossy_churn_runs_are_bit_identical() {
    let (one, one_series) = sharded_lossy_churn_run(1);
    assert!(
        !one.contains("dropped=0 "),
        "the fault layer must actually drop messages for this test to bite"
    );
    assert!(
        one.contains("deliveries=") && one.ends_with(';'),
        "routes must actually deliver"
    );
    let (four, four_series) = sharded_lossy_churn_run(4);
    assert_eq!(one, four, "1-shard and 4-shard overlay runs diverged");
    // The flight-recorder series must also be bit-identical window by
    // window: counters land at event times, engine gauges are sampled
    // at the global window minimum, so shard count must not leak into
    // a single canonical line (per-shard diagnostics are excluded by
    // construction).
    assert!(
        one_series.lines().count() > 10,
        "series must actually cover the run, got:\n{one_series}"
    );
    assert_eq!(
        one_series, four_series,
        "1-shard and 4-shard flight-recorder series diverged"
    );
}

/// The static builders are harness-side and draw the same RNG sequence
/// on both backends, so the *constructed* overlay state (before any
/// events run) must match across the sequential and sharded engines.
#[test]
fn static_build_state_is_backend_independent() {
    let n = 256;
    let mut rng = Rng::seed_from_u64(2026);
    let ids = random_ids(n, &mut rng);
    let seq: PastrySim<NullApp, Sphere> = static_build(
        Sphere::with_delay_floor(n, 7, FLOOR_US),
        Config::default(),
        2026,
        &ids,
        |_| NullApp,
        3,
    );
    let sharded: ShardedPastrySim<NullApp, Sphere> = static_build_sharded(
        Sphere::with_delay_floor(n, 7, FLOOR_US),
        Config::default(),
        2026,
        &ids,
        |_| NullApp,
        3,
        ShardConfig {
            shards: 4,
            window_us: FLOOR_US,
        },
    )
    .expect("window == delay floor is safe");
    assert_eq!(
        format!("{:?}", seq.snapshot_overlay()),
        format!("{:?}", sharded.snapshot_overlay()),
        "built overlay state diverged across backends"
    );
    // Addresses are stable and dense across the build on both backends.
    for a in 0..n {
        assert_eq!(seq.handle(a).addr, a);
        assert_eq!(sharded.handle(a).addr, a);
    }
}
