//! Differential heap-vs-wheel event-queue test.
//!
//! The hierarchical timer wheel replaced the binary heap as the
//! engine's default event queue; the heap survives as a reference
//! backend (`Engine::use_reference_heap_queue`). This test drives two
//! identical seeded 512-node lossy-churn runs — one per backend — and
//! asserts the complete observable outcome is bit-identical: the trace
//! fingerprint (which hashes every recorded event in order), message /
//! byte / fault counters, every delivery record, per-node liveness,
//! and the final simulated time. Any tie-order divergence between the
//! two queue implementations shows up here as a differing fingerprint.

use past_crypto::rng::Rng;
use past_netsim::{FaultConfig, Sphere, TraceConfig};
use past_pastry::{random_ids, Config, Id, NullApp, PastrySim};

const N: usize = 512;

fn lossy_churn_run(reference_heap: bool) -> String {
    let mut rng = Rng::seed_from_u64(9090);
    let ids = random_ids(N, &mut rng);
    let mut sim: PastrySim<NullApp, Sphere> =
        PastrySim::new(Sphere::new(N, 9090), Config::default(), 9090);
    if reference_heap {
        // Must happen before anything is scheduled; the backends share
        // the seq counter so tie keys stay aligned from event zero.
        sim.engine.use_reference_heap_queue();
    }
    sim.engine.set_tracing(TraceConfig::full());
    sim.build_by_joins(&ids, |_| NullApp, 4);

    // Lossy phase: faults on, routed traffic, then churn + stabilize.
    sim.engine.set_faults(
        FaultConfig {
            loss: 0.05,
            duplicate: 0.01,
            jitter_us: 20_000,
        },
        0xd1ff,
    );
    let mut key_rng = Rng::seed_from_u64(4242);
    let mut deliveries = String::new();
    let mut route = |sim: &mut PastrySim<NullApp, Sphere>, out: &mut String, routes: usize| {
        for _ in 0..routes {
            let key = Id(key_rng.random());
            let from = key_rng.random_range(0..N);
            sim.route(from, key, ());
            for rec in sim.drain_deliveries() {
                out.push_str(&format!(
                    "{}@{}+{};",
                    rec.delivered_at,
                    rec.at.as_micros(),
                    rec.hops
                ));
            }
        }
    };
    route(&mut sim, &mut deliveries, 300);
    for i in 0..24 {
        sim.engine.kill((i * 21 + 5) % N);
    }
    sim.stabilize();
    route(&mut sim, &mut deliveries, 200);

    let alive: Vec<usize> = (0..N).filter(|&a| sim.engine.is_alive(a)).collect();
    format!(
        "trace_fp={} total_msgs={} total_bytes={} dropped={} duplicated={} \
         failed_sends={} now_us={} alive={} deliveries={}",
        sim.engine.tracer().fingerprint(),
        sim.engine.stats.total_msgs,
        sim.engine.stats.total_bytes,
        sim.engine.stats.dropped,
        sim.engine.stats.duplicated,
        sim.engine.stats.failed_sends,
        sim.engine.now().as_micros(),
        alive.len(),
        deliveries,
    )
}

#[test]
fn heap_and_wheel_lossy_churn_runs_are_bit_identical() {
    let wheel = lossy_churn_run(false);
    let heap = lossy_churn_run(true);
    assert!(
        wheel.contains("dropped=") && !wheel.contains("dropped=0 "),
        "the fault layer must actually drop messages for this test to bite"
    );
    assert_eq!(wheel, heap, "heap and wheel runs diverged");
}
