//! Engine-free protocol stepping.
//!
//! The sans-io refactor's point, demonstrated: a `PastryNode` is driven
//! by [`PastryNode::step`] with a [`StepIo`] effect collector — no
//! simulator, no event queue, no topology. The same transition
//! functions run under the engine via the `NodeLogic` adapter in
//! `sim.rs`; here they run against a plain vector.

use past_crypto::rng::Rng;
use past_pastry::{
    Config, Effect, Id, Input, NodeHandle, NullApp, PastryMsg, PastryNode, PastryOut, StepIo,
};
use past_trace::Tracer;

type Msg = PastryMsg<()>;
type Out = PastryOut<()>;

fn node(addr: usize, id: u128) -> PastryNode<NullApp> {
    PastryNode::new(Config::default(), NodeHandle { id: Id(id), addr }, NullApp)
}

/// Steps `node` with one input and returns the effects it produced.
fn step(node: &mut PastryNode<NullApp>, input: Input<Msg>) -> Vec<Effect<Msg, Out>> {
    let mut rng = Rng::seed_from_u64(7);
    let mut tracer = Tracer::default();
    let mut effects = Vec::new();
    let prox = |_a: usize, _b: usize| 1_000u64;
    let mut io = StepIo {
        now_us: 1_000_000,
        me: node.state.me.addr,
        rng: &mut rng,
        tracer: &mut tracer,
        proximity: &prox,
        effects: &mut effects,
    };
    node.step(input, &mut io);
    effects
}

#[test]
fn heartbeat_is_answered_without_an_engine() {
    let mut n = node(1, 0x1111);
    let effects = step(
        &mut n,
        Input::Message {
            from: 9,
            msg: PastryMsg::Heartbeat,
        },
    );
    assert_eq!(effects.len(), 1);
    assert!(
        matches!(
            &effects[0],
            Effect::Send {
                to: 9,
                msg: PastryMsg::HeartbeatAck,
                ..
            }
        ),
        "expected a HeartbeatAck back to the prober, got {effects:?}"
    );
}

#[test]
fn row_request_returns_known_entries() {
    let mut n = node(1, 0x1111);
    // Teach the node a peer, then ask for the row that peer lands in.
    let peer = NodeHandle {
        id: Id(0x9999),
        addr: 4,
    };
    let learned = step(
        &mut n,
        Input::Message {
            from: 4,
            msg: PastryMsg::Announce { from: peer },
        },
    );
    assert!(
        learned.is_empty(),
        "announce should only update state, got {learned:?}"
    );
    let row = n.state.me.id.prefix_len(&peer.id, n.state.cfg.b);
    let effects = step(
        &mut n,
        Input::Message {
            from: 7,
            msg: PastryMsg::RowRequest { row },
        },
    );
    match &effects[..] {
        [Effect::Send {
            to: 7,
            msg: PastryMsg::RowReply { entries },
            ..
        }] => {
            assert!(
                entries.iter().any(|h| h.addr == peer.addr),
                "learned peer missing from row reply: {entries:?}"
            );
        }
        other => panic!("expected one RowReply send, got {other:?}"),
    }
}

/// The sim adapter and the pure step agree: effects are the protocol's
/// only output channel, so a timer input that schedules heartbeats
/// shows up identically as `Effect::Send`s here.
#[test]
fn send_failed_input_is_accepted() {
    let mut n = node(1, 0x1111);
    let effects = step(
        &mut n,
        Input::SendFailed {
            to: 9,
            msg: PastryMsg::Heartbeat,
        },
    );
    // A failed heartbeat against an unknown peer produces no effects —
    // but the input is consumed without an engine or a panic.
    assert!(effects.is_empty(), "got {effects:?}");
}
