//! Loss-recovery tests: heartbeat ack tracking, missed-ack suspicion,
//! and bounded join retry on lossy links.

use past_crypto::rng::Rng;
use past_netsim::{FaultConfig, Sphere};
use past_pastry::{
    random_ids, Config, Id, NullApp, PastryMsg, PastryOut, PastrySim, RecoveryConfig,
};

fn small_cfg() -> Config {
    Config {
        leaf_len: 8,
        neighborhood_len: 8,
        ..Config::default()
    }
}

fn build_recovering_network(n: usize, seed: u64) -> PastrySim<NullApp, Sphere> {
    build_with_slots(n, n, seed)
}

/// Builds an `n`-node network with room in the topology for
/// `slots - n` later joiners.
fn build_with_slots(n: usize, slots: usize, seed: u64) -> PastrySim<NullApp, Sphere> {
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let topo = Sphere::new(slots, seed);
    let mut sim = PastrySim::new(topo, small_cfg(), seed);
    sim.set_recovery(RecoveryConfig::default());
    sim.build_by_joins(&ids, |_| NullApp, 8);
    sim
}

#[test]
fn heartbeat_acks_keep_live_peers_unsuspected() {
    let n = 20;
    let mut sim = build_recovering_network(n, 31);
    // Lossless: every round's acks arrive, nobody accumulates misses.
    for _ in 0..5 {
        sim.stabilize();
    }
    for a in 0..n {
        for b in 0..n {
            assert!(
                !sim.engine.node(a).suspects(b),
                "node {a} wrongly suspects live node {b}"
            );
        }
    }
}

#[test]
fn silent_peers_are_suspected_after_missed_ack_limit() {
    let mut sim = build_recovering_network(2, 33);
    // Total loss: heartbeats (and everything else) vanish silently, so
    // the only failure signal is the ack deadline.
    sim.engine.set_faults(
        FaultConfig {
            loss: 1.0,
            ..FaultConfig::default()
        },
        7,
    );
    let limit = RecoveryConfig::default().missed_ack_limit;
    for round in 0..limit {
        assert!(
            !sim.engine.node(0).suspects(1),
            "suspected too early, round {round}"
        );
        sim.stabilize();
    }
    assert!(sim.engine.node(0).suspects(1), "0 never suspected silent 1");
    assert!(sim.engine.node(1).suspects(0), "1 never suspected silent 0");
}

#[test]
fn proof_of_life_clears_suspicion() {
    let mut sim = build_recovering_network(2, 33);
    sim.engine.set_faults(
        FaultConfig {
            loss: 1.0,
            ..FaultConfig::default()
        },
        7,
    );
    for _ in 0..RecoveryConfig::default().missed_ack_limit {
        sim.stabilize();
    }
    assert!(sim.engine.node(0).suspects(1));
    // Link heals; any message from the suspect is proof of life (in a
    // larger ring, repair gossip supplies this traffic — with only two
    // nodes both purged their leaf sets, so inject it directly).
    sim.engine.set_faults(FaultConfig::default(), 7);
    sim.engine.inject(
        1,
        0,
        PastryMsg::<()>::Announce {
            from: sim.engine.node(1).state.me,
        },
        0,
    );
    sim.engine.run_until_quiet(1_000_000);
    assert!(!sim.engine.node(0).suspects(1), "suspicion not cleared");
}

#[test]
fn joins_retry_through_loss_and_complete() {
    let n = 24;
    let mut sim = build_with_slots(n, n + 4, 41);
    sim.engine.set_faults(
        FaultConfig {
            loss: 0.10,
            duplicate: 0.02,
            jitter_us: 10_000,
        },
        91,
    );
    let mut rng = Rng::seed_from_u64(77);
    for i in 0..4 {
        let id = Id(rng.random());
        let contact = rng.random_range(0..n);
        let addr = sim.join_node_via(id, NullApp, contact);
        assert!(
            sim.engine.node(addr).joined,
            "join {i} did not survive 10% loss"
        );
    }
}

#[test]
fn join_gives_up_with_explicit_failure_when_all_requests_vanish() {
    let n = 8;
    let mut sim = build_with_slots(n, n + 1, 47);
    sim.engine.drain_outputs();
    sim.engine.set_faults(
        FaultConfig {
            loss: 1.0,
            ..FaultConfig::default()
        },
        5,
    );
    let addr = sim.join_node_via(Id(0x00aa_bbcc_dd11_2233), NullApp, 0);
    assert!(!sim.engine.node(addr).joined);
    let attempts = RecoveryConfig::default().join_attempts;
    let failed: Vec<u32> = sim
        .engine
        .drain_outputs()
        .into_iter()
        .filter_map(|(_, at, out)| match out {
            PastryOut::JoinFailed { attempts } if at == addr => Some(attempts),
            _ => None,
        })
        .collect();
    assert_eq!(failed, vec![attempts], "expected one explicit JoinFailed");
}

#[test]
fn lossy_runs_replay_bit_identically() {
    let fingerprint = |seed: u64| {
        let n = 16;
        let mut sim = build_recovering_network(n, 53);
        sim.engine.set_faults(
            FaultConfig {
                loss: 0.05,
                duplicate: 0.01,
                jitter_us: 20_000,
            },
            seed,
        );
        for _ in 0..3 {
            sim.stabilize();
        }
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..50 {
            let key = Id(rng.random());
            let from = rng.random_range(0..n);
            sim.route(from, key, ());
        }
        let recs = sim.drain_deliveries();
        let stats = &sim.engine.stats;
        format!(
            "delivered={} dropped={} duplicated={} total={} now={}",
            recs.len(),
            stats.dropped,
            stats.duplicated,
            stats.total_msgs,
            sim.engine.now().as_micros()
        )
    };
    let a = fingerprint(100);
    let b = fingerprint(100);
    let c = fingerprint(101);
    assert_eq!(a, b, "same seed must replay identically");
    assert_ne!(a, c, "different fault seed should perturb the run");
}
