//! Harness binding Pastry nodes into the network-simulator engine.
//!
//! Provides protocol-accurate sequential joins (the way the companion
//! Pastry paper built its simulated networks), a fast static builder for
//! very large hop-count experiments, routing helpers, and maintenance
//! rounds (heartbeats, routing-table improvement).

use crate::app::{App, PastryOut};
use crate::handle::NodeHandle;
use crate::id::{Config, Id};
use crate::leafset::Side;
use crate::msg::{PastryMsg, RouteEnvelope};
use crate::node::{PastryNode, RecoveryConfig, TIMER_HEARTBEAT, TIMER_JOIN_RETRY};
use past_crypto::rng::Rng;
use past_netsim::{
    Addr, Ctx, Engine, NodeLogic, ShardConfig, ShardedEngine, SimBackend, SimTime, Topology,
    WindowTooWide,
};
use past_wire::Input;
use std::cell::RefCell;
use std::marker::PhantomData;

/// Default cap on events per quiet-run (guards against runaway loops).
const QUIET_BUDGET: u64 = 50_000_000;

/// The engine-side adapter for the sans-io node logic: every engine
/// callback becomes a [`past_wire::Input`] applied through
/// [`PastryNode::step`], with the engine's `Ctx` (an
/// [`past_wire::Io`] implementor) as the effect sink. This impl —
/// not the node — is what couples Pastry to the simulator, which is
/// why it lives in the sanctioned adapter module.
impl<A: App> NodeLogic for PastryNode<A> {
    type Msg = PastryMsg<A::Payload>;
    type Out = PastryOut<A::Out>;

    fn on_message(&mut self, from: Addr, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg, Self::Out>) {
        self.step(Input::Message { from, msg }, ctx);
    }

    fn on_send_failed(
        &mut self,
        to: Addr,
        msg: Self::Msg,
        ctx: &mut Ctx<'_, Self::Msg, Self::Out>,
    ) {
        self.step(Input::SendFailed { to, msg }, ctx);
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, Self::Msg, Self::Out>) {
        self.step(Input::Timer { kind }, ctx);
    }
}

/// A record of one completed route, as observed by the harness.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryRecord {
    /// Key that was routed.
    pub key: Id,
    /// Node that originated the route.
    pub origin: Addr,
    /// Node where it was delivered.
    pub delivered_at: Addr,
    /// Overlay hops.
    pub hops: u32,
    /// Total path delay, microseconds.
    pub path_us: u64,
    /// Simulated completion time.
    pub at: SimTime,
}

/// Frozen routing state of one node, captured at a quiesce point for
/// protocol-invariant checking (leaf-set symmetry/correctness, routing
/// prefix validity — the Zave-style mechanical invariants).
#[derive(Clone, Debug)]
pub struct NodeSnapshot {
    /// The node's address.
    pub addr: Addr,
    /// The node's ring id.
    pub id: Id,
    /// True if the node was alive when the snapshot was taken.
    pub live: bool,
    /// True once the join protocol completed.
    pub joined: bool,
    /// Digit width `b` in force.
    pub b: u8,
    /// Per-half leaf-set capacity (`l/2`).
    pub leaf_half: usize,
    /// Smaller-side leaf members, nearest first.
    pub leaf_smaller: Vec<NodeHandle>,
    /// Larger-side leaf members, nearest first.
    pub leaf_larger: Vec<NodeHandle>,
    /// Populated routing-table slots as `(row, col, entry)`.
    pub table_slots: Vec<(usize, usize, NodeHandle)>,
}

/// A whole-overlay snapshot: every node's routing state plus liveness.
#[derive(Clone, Debug, Default)]
pub struct OverlaySnapshot {
    /// One snapshot per node, indexed by address.
    pub nodes: Vec<NodeSnapshot>,
}

impl OverlaySnapshot {
    /// Snapshots of live, joined nodes (the ones protocol invariants
    /// quantify over).
    pub fn live_joined(&self) -> impl Iterator<Item = &NodeSnapshot> {
        self.nodes.iter().filter(|n| n.live && n.joined)
    }
}

/// A Pastry overlay running inside the discrete-event engine.
///
/// Generic over the simulation backend `B`: the default is the
/// sequential [`Engine`]; [`ShardedPastrySim`] runs the same adapter on
/// the multi-core [`ShardedEngine`]. The two backends draw RNGs in
/// different orders (shared streams vs per-node streams), so their runs
/// differ; the guarantee the differential tests pin is that a sharded
/// run is bit-identical under any shard count.
pub struct PastrySim<A: App, T: Topology, B = Engine<PastryNode<A>, T>> {
    /// The underlying engine (exposed for kill/revive, stats, outputs).
    pub engine: B,
    /// The shared protocol configuration.
    pub cfg: Config,
    /// Loss-recovery parameters applied to every node; `None` (default)
    /// keeps the crash-only maintenance protocol.
    recovery: Option<RecoveryConfig>,
    /// Live handles sorted by id, rebuilt lazily whenever the engine's
    /// membership epoch moves; `true_root` answers from this index with a
    /// binary search instead of scanning every node per query.
    root_index: RefCell<(u64, Vec<NodeHandle>)>,
    /// `A` and `T` only name the backend's node/topology types.
    marker: PhantomData<(fn() -> A, fn() -> T)>,
}

/// A Pastry overlay on the sharded multi-core engine.
pub type ShardedPastrySim<A, T> = PastrySim<A, T, ShardedEngine<PastryNode<A>, T>>;

/// Epoch sentinel forcing the first `true_root` call to build the index
/// (engine epochs count up from zero and never reach it).
const STALE_EPOCH: u64 = u64::MAX;

impl<A: App, T: Topology> PastrySim<A, T> {
    /// Creates an empty overlay on `topo`, on the sequential engine.
    pub fn new(topo: T, cfg: Config, seed: u64) -> PastrySim<A, T> {
        cfg.validate();
        PastrySim {
            engine: Engine::new(topo, Vec::new(), seed),
            cfg,
            recovery: None,
            root_index: RefCell::new((STALE_EPOCH, Vec::new())),
            marker: PhantomData,
        }
    }
}

impl<A, T> ShardedPastrySim<A, T>
where
    A: App,
    T: Topology + Clone + Send,
    PastryNode<A>: Send,
    <PastryNode<A> as NodeLogic>::Msg: Send,
    <PastryNode<A> as NodeLogic>::Out: Send,
{
    /// Creates an empty overlay on `topo`, on the sharded engine.
    ///
    /// Rejects a shard window wider than the topology's minimum
    /// inter-node delay (the sealed-batch safety condition).
    pub fn new_sharded(
        topo: T,
        cfg: Config,
        seed: u64,
        shard_cfg: ShardConfig,
    ) -> Result<ShardedPastrySim<A, T>, WindowTooWide> {
        cfg.validate();
        Ok(PastrySim {
            engine: ShardedEngine::try_new(topo, seed, shard_cfg)?,
            cfg,
            recovery: None,
            root_index: RefCell::new((STALE_EPOCH, Vec::new())),
            marker: PhantomData,
        })
    }
}

impl<A, T, B> PastrySim<A, T, B>
where
    A: App,
    T: Topology,
    B: SimBackend<PastryNode<A>, Topo = T>,
{
    /// Installs loss-recovery parameters on every current and future node
    /// (ack-tracked heartbeats, anti-entropy rounds, join retries).
    pub fn set_recovery(&mut self, rc: RecoveryConfig) {
        self.recovery = Some(rc);
        for a in 0..self.engine.len() {
            self.engine.node_mut(a).recovery = Some(rc);
        }
    }

    /// The loss-recovery parameters in force.
    pub fn recovery(&self) -> Option<RecoveryConfig> {
        self.recovery
    }

    /// Adds the first node of the network (no join needed).
    pub fn bootstrap_node(&mut self, id: Id, app: A) -> Addr {
        let addr = self.engine.push_node(PastryNode::new(
            self.cfg,
            NodeHandle::new(id, self.engine.len()),
            app,
        ));
        self.engine.node_mut(addr).joined = true;
        self.engine.node_mut(addr).recovery = self.recovery;
        addr
    }

    /// Adds a node and runs the full join protocol through `contact`.
    ///
    /// Runs the engine until quiet, so joins are sequential as in the
    /// paper's evaluation. Returns the new node's address.
    pub fn join_node_via(&mut self, id: Id, app: A, contact: Addr) -> Addr {
        // The next address is the current node count; construct the node
        // once with its real handle instead of rebuilding state afterwards.
        let joiner = NodeHandle::new(id, self.engine.len());
        let addr = self
            .engine
            .push_node(PastryNode::new(self.cfg, joiner, app));
        debug_assert_eq!(addr, joiner.addr);
        if self.recovery.is_some() {
            // Loss-recovery mode: the node drives its own join from a
            // timer so lost requests/replies are retried with a deadline.
            self.engine.node_mut(addr).recovery = self.recovery;
            self.engine.node_mut(addr).begin_join(contact);
            self.engine.arm_timer(addr, 0, TIMER_JOIN_RETRY);
            self.engine.run_until_quiet(QUIET_BUDGET);
        } else {
            let now = self.engine.now().as_micros();
            self.engine.tracer_mut().join_phase(now, addr, "start");
            self.engine
                .inject(addr, contact, PastryMsg::NeighborhoodRequest, 0);
            self.engine.inject(
                addr,
                contact,
                PastryMsg::JoinRequest {
                    joiner,
                    rows: Vec::new(),
                    rows_done: 0,
                    hops: 0,
                },
                0,
            );
            self.engine.run_until_quiet(QUIET_BUDGET);
            debug_assert!(self.engine.node(addr).joined, "join did not complete");
        }
        addr
    }

    /// Adds a node, choosing a *nearby* contact as the paper prescribes
    /// ("an arriving node ... can initialize its state by contacting a
    /// nearby node A"): samples `sample` live nodes and picks the
    /// proximity-nearest, modeling an expanding-ring search.
    pub fn join_node_nearby(&mut self, id: Id, app: A, sample: usize) -> Addr {
        let live = self.engine.live_addrs();
        assert!(!live.is_empty(), "need a bootstrap node first");
        let next_addr = self.engine.len();
        let mut contact = live[self.engine.rng().random_range(0..live.len())];
        let mut best_d = self.engine.topology().delay_us(next_addr, contact);
        for _ in 1..sample.max(1) {
            let cand = live[self.engine.rng().random_range(0..live.len())];
            let d = self.engine.topology().delay_us(next_addr, cand);
            if d < best_d {
                best_d = d;
                contact = cand;
            }
        }
        self.join_node_via(id, app, contact)
    }

    /// Builds an `n`-node network by sequential protocol joins.
    ///
    /// `ids` must be distinct; `mk_app` constructs each node's application.
    pub fn build_by_joins<F: FnMut(usize) -> A>(
        &mut self,
        ids: &[Id],
        mut mk_app: F,
        contact_sample: usize,
    ) {
        assert!(!ids.is_empty());
        self.engine.reserve_nodes(ids.len());
        self.bootstrap_node(ids[0], mk_app(0));
        for (i, &id) in ids.iter().enumerate().skip(1) {
            self.join_node_nearby(id, mk_app(i), contact_sample);
        }
    }

    /// Starts routing `payload` toward `key` from node `from`.
    ///
    /// The caller runs the engine and inspects [`Self::drain_deliveries`].
    pub fn route(&mut self, from: Addr, key: Id, payload: A::Payload)
    where
        A::Payload: Clone,
    {
        self.engine.inject(
            from,
            from,
            PastryMsg::Route(RouteEnvelope {
                key,
                payload,
                origin: from,
                hops: 0,
                path_us: 0,
            }),
            0,
        );
    }

    /// Runs the engine until quiet and returns route-delivery records.
    pub fn drain_deliveries(&mut self) -> Vec<DeliveryRecord> {
        self.engine.run_until_quiet(QUIET_BUDGET);
        self.engine
            .drain_outputs()
            .into_iter()
            .filter_map(|(at, addr, out)| match out {
                PastryOut::Delivered {
                    key,
                    origin,
                    hops,
                    path_us,
                } => Some(DeliveryRecord {
                    key,
                    origin,
                    delivered_at: addr,
                    hops,
                    path_us,
                    at,
                }),
                _ => None,
            })
            .collect()
    }

    /// Drains application-level observations.
    pub fn drain_app_outputs(&mut self) -> Vec<(SimTime, Addr, A::Out)> {
        self.engine
            .drain_outputs()
            .into_iter()
            .filter_map(|(at, addr, out)| match out {
                PastryOut::App(o) => Some((at, addr, o)),
                _ => None,
            })
            .collect()
    }

    /// Recovers a previously failed node (the paper: "a recovering node
    /// contacts the nodes in its last known leaf set, obtains their
    /// current leaf sets, updates its own leaf set and then notifies the
    /// members of its presence").
    ///
    /// Runs the engine to quiescence. Returns the peers contacted.
    pub fn recover_node(&mut self, addr: Addr) -> usize {
        self.engine.revive(addr);
        let me = self.engine.node(addr).state.me;
        let last_leaf: Vec<Addr> = self
            .engine
            .node(addr)
            .state
            .leaf
            .members()
            .map(|h| h.addr)
            .collect();
        for &peer in &last_leaf {
            self.engine.inject(addr, peer, PastryMsg::LeafRequest, 0);
            self.engine
                .inject(addr, peer, PastryMsg::Announce { from: me }, 0);
        }
        self.engine.run_until_quiet(QUIET_BUDGET);
        // The pre-death leaf set can miss true ring neighbors: a slot may
        // have been held by a peer that died at the same time, hiding the
        // node beyond it. Announce once more to the *refreshed* leaf set
        // so every current neighbor learns of the revival (leaf-set
        // symmetry, invariant I1).
        let current_leaf: Vec<Addr> = self
            .engine
            .node(addr)
            .state
            .leaf
            .members()
            .map(|h| h.addr)
            .collect();
        for &peer in &current_leaf {
            if !last_leaf.contains(&peer) {
                self.engine
                    .inject(addr, peer, PastryMsg::Announce { from: me }, 0);
            }
        }
        self.engine.run_until_quiet(QUIET_BUDGET);
        last_leaf.len()
    }

    /// Triggers one leaf-set heartbeat round on every live node and runs
    /// to quiescence (failure detection + repair).
    pub fn stabilize(&mut self) {
        for addr in self.engine.live_addrs() {
            self.engine.arm_timer(addr, 0, TIMER_HEARTBEAT);
        }
        self.engine.run_until_quiet(QUIET_BUDGET);
        // Flight-recorder overlay gauge: live membership after the
        // round, stamped with the (shard-count invariant) quiesced
        // clock. Suspicions and repair traffic are already counted by
        // the tracer hooks.
        if self.engine.tracer().series_enabled() {
            let live = self.engine.live_addrs().len() as u64;
            let t = self.engine.now().as_micros();
            if let Some(s) = self.engine.tracer_mut().series_mut() {
                s.gauge(t, "live_nodes", live);
            }
        }
    }

    /// One routing-table improvement round: every node asks one random
    /// peer per populated row for that row's entries (the Pastry paper's
    /// locality-improvement maintenance).
    pub fn improve_tables(&mut self) {
        let addrs = self.engine.live_addrs();
        for addr in addrs {
            let rows: Vec<(usize, Vec<NodeHandle>)> = {
                let st = &self.engine.node(addr).state;
                (0..st.cfg.digits())
                    .map(|r| (r, st.table.row_entries(r)))
                    .filter(|(_, e)| !e.is_empty())
                    .collect()
            };
            for (row, entries) in rows {
                let peer = {
                    let idx = self.engine.rng().random_range(0..entries.len());
                    entries[idx]
                };
                self.engine
                    .inject(addr, peer.addr, PastryMsg::RowRequest { row }, 0);
            }
        }
        self.engine.run_until_quiet(QUIET_BUDGET);
    }

    /// Captures every node's routing state for invariant checking.
    ///
    /// Meant to be called at a quiesce point (after
    /// [`Self::drain_deliveries`], [`Self::stabilize`], or a completed
    /// join), when no repair traffic is in flight.
    pub fn snapshot_overlay(&self) -> OverlaySnapshot {
        let nodes = (0..self.engine.len())
            .map(|addr| {
                let node = self.engine.node(addr);
                let st = &node.state;
                NodeSnapshot {
                    addr,
                    id: st.me.id,
                    live: self.engine.is_alive(addr),
                    joined: node.joined,
                    b: st.cfg.b,
                    leaf_half: st.leaf.half(),
                    leaf_smaller: st.leaf.side_members(Side::Smaller).to_vec(),
                    leaf_larger: st.leaf.side_members(Side::Larger).to_vec(),
                    table_slots: st.table.slots().collect(),
                }
            })
            .collect();
        OverlaySnapshot { nodes }
    }

    /// The handle of node `addr`.
    pub fn handle(&self, addr: Addr) -> NodeHandle {
        self.engine.node(addr).state.me
    }

    /// Handles of all live nodes.
    pub fn live_handles(&self) -> Vec<NodeHandle> {
        self.engine
            .live_addrs()
            .into_iter()
            .map(|a| self.handle(a))
            .collect()
    }

    /// The live node whose id is numerically closest to `key`
    /// (ground truth for delivery-correctness checks).
    ///
    /// Answered from a sorted index of live handles, invalidated by the
    /// engine's membership epoch: the closest node on the ring is always
    /// one of the key's two sorted-order neighbors (any other node is
    /// strictly farther in both directions), so one binary search plus a
    /// two-way compare reproduces the former full scan exactly.
    pub fn true_root(&self, key: &Id) -> Option<NodeHandle> {
        let epoch = self.engine.epoch();
        let mut cache = self.root_index.borrow_mut();
        if cache.0 != epoch {
            let mut handles = self.live_handles();
            handles.sort_unstable_by_key(|h| h.id.0);
            *cache = (epoch, handles);
        }
        let ring = &cache.1;
        if ring.is_empty() {
            return None;
        }
        let i = ring.partition_point(|h| h.id.0 < key.0);
        let succ = ring[i % ring.len()];
        let pred = ring[(i + ring.len() - 1) % ring.len()];
        let kp = (pred.id.ring_dist(key), pred.id.0);
        let ks = (succ.id.ring_dist(key), succ.id.0);
        Some(if kp <= ks { pred } else { succ })
    }
}

/// Builds a large network *statically*: every node's leaf set and routing
/// table are constructed from global knowledge instead of protocol joins.
///
/// Used for the biggest hop-count/state-size experiments (the companion
/// paper simulates up to 100 000 nodes). Table entries pick the
/// proximity-nearest of `locality_samples` random candidates with the
/// required prefix, approximating the join protocol's locality.
pub fn static_build<A, T, F>(
    topo: T,
    cfg: Config,
    seed: u64,
    ids: &[Id],
    mk_app: F,
    locality_samples: usize,
) -> PastrySim<A, T>
where
    A: App,
    T: Topology,
    F: FnMut(usize) -> A,
{
    cfg.validate();
    assert!(locality_samples >= 1);
    let mut sim: PastrySim<A, T> = PastrySim::new(topo, cfg, seed);
    populate_static(&mut sim, ids, mk_app, locality_samples);
    sim
}

/// [`static_build`] on the sharded multi-core engine.
///
/// The build itself is harness-side and sequential either way; what the
/// sharded backend buys is the *run* that follows (routes, churn,
/// stabilization) executing on multiple cores. Both builders draw the
/// same harness RNG sequence, so the constructed overlay state is
/// identical across backends.
#[allow(clippy::too_many_arguments)]
pub fn static_build_sharded<A, T, F>(
    topo: T,
    cfg: Config,
    seed: u64,
    ids: &[Id],
    mk_app: F,
    locality_samples: usize,
    shard_cfg: ShardConfig,
) -> Result<ShardedPastrySim<A, T>, WindowTooWide>
where
    A: App,
    T: Topology + Clone + Send,
    PastryNode<A>: Send,
    <PastryNode<A> as NodeLogic>::Msg: Send,
    <PastryNode<A> as NodeLogic>::Out: Send,
    F: FnMut(usize) -> A,
{
    cfg.validate();
    assert!(locality_samples >= 1);
    let mut sim = ShardedPastrySim::new_sharded(topo, cfg, seed, shard_cfg)?;
    populate_static(&mut sim, ids, mk_app, locality_samples);
    Ok(sim)
}

/// The backend-generic body of the static builders.
fn populate_static<A, T, B, F>(
    sim: &mut PastrySim<A, T, B>,
    ids: &[Id],
    mut mk_app: F,
    locality_samples: usize,
) where
    A: App,
    T: Topology,
    B: SimBackend<PastryNode<A>, Topo = T>,
    F: FnMut(usize) -> A,
{
    let cfg = sim.cfg;
    let n = ids.len();
    // One allocation per struct-of-arrays column up front: at 100k+
    // nodes the incremental doubling during the push loop is measurable.
    sim.engine.reserve_nodes(n);
    for (addr, &id) in ids.iter().enumerate() {
        let a = sim.engine.push_node(PastryNode::new(
            cfg,
            NodeHandle::new(id, addr),
            mk_app(addr),
        ));
        sim.engine.node_mut(a).joined = true;
    }

    // Ring order.
    let mut sorted: Vec<NodeHandle> = ids
        .iter()
        .enumerate()
        .map(|(addr, &id)| NodeHandle::new(id, addr))
        .collect();
    sorted.sort_by_key(|h| h.id.0);
    let sorted_ids: Vec<u128> = sorted.iter().map(|h| h.id.0).collect();

    let half = cfg.leaf_len / 2;
    let digits = cfg.digits();
    let b = cfg.b;

    for pos in 0..n {
        let me = sorted[pos];
        let addr = me.addr;

        // Leaf set: l/2 ring successors and predecessors.
        let mut leaf_changes = Vec::new();
        for step in 1..=half.min(n.saturating_sub(1)) {
            leaf_changes.push(sorted[(pos + step) % n]);
            leaf_changes.push(sorted[(pos + n - step) % n]);
        }
        for h in leaf_changes {
            let prox = sim.engine.topology().delay_us(addr, h.addr);
            sim.engine.node_mut(addr).state.add_node(h, prox);
        }

        // Routing table, row by row, using binary search over the sorted
        // ring for each prefix range.
        for row in 0..digits {
            // Range of ids sharing `row` digits with me.
            let shift = 128 - (row + 1) * b as usize;
            let prefix_mask: u128 = if row == 0 {
                0
            } else {
                (!0u128) << (128 - row * b as usize)
            };
            let own_base = me.id.0 & prefix_mask;
            let own_digit = me.id.digit(row, b) as usize;
            // If nobody else shares our first `row` digits, stop.
            let span_lo = sorted_ids.partition_point(|&x| x < own_base);
            let span_hi = if row == 0 {
                n
            } else {
                let top = own_base | !prefix_mask;
                sorted_ids.partition_point(|&x| x <= top)
            };
            if span_hi - span_lo <= 1 {
                break;
            }
            for col in 0..cfg.cols() {
                if col == own_digit {
                    continue;
                }
                let base = own_base | ((col as u128) << shift);
                let top = base | ((1u128 << shift) - 1);
                let lo = sorted_ids.partition_point(|&x| x < base);
                let hi = sorted_ids.partition_point(|&x| x <= top);
                if lo >= hi {
                    continue;
                }
                // Pick the proximity-nearest of a few random candidates.
                let mut best: Option<(u64, NodeHandle)> = None;
                for _ in 0..locality_samples {
                    let idx = {
                        let rng = sim.engine.rng();
                        rng.random_range(lo..hi)
                    };
                    let cand = sorted[idx];
                    let d = sim.engine.topology().delay_us(addr, cand.addr);
                    if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                        best = Some((d, cand));
                    }
                }
                if let Some((d, cand)) = best {
                    sim.engine.node_mut(addr).state.table.consider(cand, d);
                }
            }
        }

        // Neighborhood set: nearest of a modest random sample.
        let sample = (cfg.neighborhood_len * 2).min(n.saturating_sub(1));
        for _ in 0..sample {
            let other = {
                let rng = sim.engine.rng();
                rng.random_range(0..n)
            };
            if other == addr {
                continue;
            }
            let h = NodeHandle::new(ids[other], other);
            let d = sim.engine.topology().delay_us(addr, other);
            sim.engine.node_mut(addr).state.neighborhood.consider(h, d);
        }
    }
}

/// Generates `n` distinct pseudo-random ids from a seed.
pub fn random_ids(n: usize, rng: &mut Rng) -> Vec<Id> {
    let mut set = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = Id(rng.random());
        if set.insert(id.0) {
            out.push(id);
        }
    }
    out
}
