//! The Pastry neighborhood set.
//!
//! The set of `M` nodes closest to the present node according to the
//! proximity metric. It is not used for routing, but seeds locality during
//! node joins ("X then obtains ... the neighborhood set from A").

use crate::handle::NodeHandle;
use past_netsim::Addr;

/// The proximity-nearest set of one node.
#[derive(Clone, Debug)]
pub struct NeighborhoodSet {
    cap: usize,
    /// Entries sorted by proximity, nearest first.
    entries: Vec<(NodeHandle, u64)>,
}

impl NeighborhoodSet {
    /// Creates an empty set holding up to `cap` nodes.
    pub fn new(cap: usize) -> NeighborhoodSet {
        NeighborhoodSet {
            cap,
            entries: Vec::new(),
        }
    }

    /// Offers a node at measured proximity; keeps the `cap` nearest.
    /// Returns true if the set changed.
    pub fn consider(&mut self, h: NodeHandle, proximity_us: u64) -> bool {
        if self.entries.iter().any(|(m, _)| m.addr == h.addr) {
            return false;
        }
        let pos = self
            .entries
            .iter()
            .position(|(_, p)| *p > proximity_us)
            .unwrap_or(self.entries.len());
        if pos >= self.cap {
            return false;
        }
        self.entries.insert(pos, (h, proximity_us));
        self.entries.truncate(self.cap);
        true
    }

    /// Removes the member at `addr`.
    pub fn remove_addr(&mut self, addr: Addr) -> Option<NodeHandle> {
        if let Some(pos) = self.entries.iter().position(|(m, _)| m.addr == addr) {
            return Some(self.entries.remove(pos).0);
        }
        None
    }

    /// Members, nearest first.
    pub fn members(&self) -> impl Iterator<Item = &NodeHandle> {
        self.entries.iter().map(|(m, _)| m)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    fn h(addr: Addr) -> NodeHandle {
        NodeHandle::new(Id(addr as u128), addr)
    }

    #[test]
    fn keeps_nearest() {
        let mut ns = NeighborhoodSet::new(2);
        assert!(ns.consider(h(1), 100));
        assert!(ns.consider(h(2), 50));
        assert!(ns.consider(h(3), 10));
        let order: Vec<Addr> = ns.members().map(|m| m.addr).collect();
        assert_eq!(order, vec![3, 2]);
        assert!(!ns.consider(h(4), 500));
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn rejects_duplicates() {
        let mut ns = NeighborhoodSet::new(4);
        assert!(ns.consider(h(1), 100));
        assert!(!ns.consider(h(1), 5));
        assert_eq!(ns.len(), 1);
    }

    #[test]
    fn remove() {
        let mut ns = NeighborhoodSet::new(4);
        ns.consider(h(1), 100);
        assert_eq!(ns.remove_addr(1).unwrap().addr, 1);
        assert!(ns.remove_addr(1).is_none());
        assert!(ns.is_empty());
    }
}
