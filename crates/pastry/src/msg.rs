//! Pastry wire messages.

use crate::handle::NodeHandle;
use crate::id::Id;
use past_netsim::{Addr, Message, OpId};
use past_wire::Wire;

/// A routed application message in flight.
#[derive(Clone, Debug)]
pub struct RouteEnvelope<P> {
    /// Destination key (a fileId's 128 most-significant bits, or a nodeId).
    pub key: Id,
    /// Application payload.
    pub payload: P,
    /// Address of the node that originated the route.
    pub origin: Addr,
    /// Overlay hops taken so far (incremented on each forward).
    pub hops: u32,
    /// Accumulated network delay along the path, microseconds.
    pub path_us: u64,
}

/// The Pastry protocol message set, generic over the application payload.
#[derive(Clone, Debug)]
pub enum PastryMsg<P> {
    /// A routed application message.
    Route(RouteEnvelope<P>),
    /// A join request being routed toward the joiner's id, accumulating
    /// routing-table rows along the path.
    JoinRequest {
        /// The joining node.
        joiner: NodeHandle,
        /// Routing-table entries collected along the path ("the i-th row
        /// of the routing table from the i-th node encountered").
        rows: Vec<NodeHandle>,
        /// Highest row index already contributed.
        rows_done: usize,
        /// Hops taken so far.
        hops: u32,
    },
    /// Z's answer to the joiner: collected rows plus Z's leaf set.
    JoinReply {
        /// The numerically closest existing node.
        z: NodeHandle,
        /// Entries collected along the join route.
        rows: Vec<NodeHandle>,
        /// Z's leaf set (plus Z itself).
        leaf: Vec<NodeHandle>,
        /// Join route length.
        hops: u32,
    },
    /// Ask a nearby node for its neighborhood set.
    NeighborhoodRequest,
    /// The neighborhood set (plus the replying node).
    NeighborhoodReply {
        /// Members of the replier's neighborhood set.
        members: Vec<NodeHandle>,
    },
    /// A newly joined node announcing itself so that "interested nodes
    /// that need to know of its arrival" update their state.
    Announce {
        /// The announcing node.
        from: NodeHandle,
    },
    /// Ask for the receiver's leaf set (leaf-set repair).
    LeafRequest,
    /// The receiver's leaf set (plus itself).
    LeafReply {
        /// Members of the replier's leaf set.
        members: Vec<NodeHandle>,
    },
    /// Ask for the receiver's routing-table row (table improvement).
    RowRequest {
        /// Row index requested.
        row: usize,
    },
    /// Entries of the requested row.
    RowReply {
        /// Populated entries of the row.
        entries: Vec<NodeHandle>,
    },
    /// Ask for a replacement routing-table entry (lazy repair).
    RepairRequest {
        /// Row of the vacated slot.
        row: usize,
        /// Column of the vacated slot.
        col: usize,
    },
    /// A replacement entry, if the replier has one.
    RepairReply {
        /// The replier's entry for that slot.
        entry: Option<NodeHandle>,
    },
    /// Leaf-set liveness probe.
    Heartbeat,
    /// Probe acknowledgment.
    HeartbeatAck,
    /// A direct (non-routed) application message.
    AppDirect {
        /// Application payload.
        payload: P,
    },
}

impl<P: Clone + PayloadSize> Message for PastryMsg<P> {
    const KINDS: &'static [&'static str] = &[
        "route",
        "join_request",
        "join_reply",
        "neighborhood_request",
        "neighborhood_reply",
        "announce",
        "leaf_request",
        "leaf_reply",
        "row_request",
        "row_reply",
        "repair_request",
        "repair_reply",
        "heartbeat",
        "heartbeat_ack",
        "app_direct",
    ];

    fn kind_id(&self) -> usize {
        match self {
            PastryMsg::Route(_) => 0,
            PastryMsg::JoinRequest { .. } => 1,
            PastryMsg::JoinReply { .. } => 2,
            PastryMsg::NeighborhoodRequest => 3,
            PastryMsg::NeighborhoodReply { .. } => 4,
            PastryMsg::Announce { .. } => 5,
            PastryMsg::LeafRequest => 6,
            PastryMsg::LeafReply { .. } => 7,
            PastryMsg::RowRequest { .. } => 8,
            PastryMsg::RowReply { .. } => 9,
            PastryMsg::RepairRequest { .. } => 10,
            PastryMsg::RepairReply { .. } => 11,
            PastryMsg::Heartbeat => 12,
            PastryMsg::HeartbeatAck => 13,
            PastryMsg::AppDirect { .. } => 14,
        }
    }

    fn wire_size(&self) -> u64 {
        // Not an estimate: the exact length `Wire::encode` produces.
        // The per-variant arithmetic lives in `encoded_len`
        // (crate::wire), which the codec round-trip tests pin against
        // `encode().len()` for every variant.
        self.encoded_len()
    }

    fn op_id(&self) -> OpId {
        // Only application traffic can belong to a client operation;
        // overlay maintenance never does. Every maintenance variant is
        // named (rule M1): a new variant must decide its attribution
        // here explicitly instead of falling into a wildcard.
        match self {
            PastryMsg::Route(env) => env.payload.op_id(),
            PastryMsg::AppDirect { payload } => payload.op_id(),
            PastryMsg::JoinRequest { .. }
            | PastryMsg::JoinReply { .. }
            | PastryMsg::NeighborhoodRequest
            | PastryMsg::NeighborhoodReply { .. }
            | PastryMsg::Announce { .. }
            | PastryMsg::LeafRequest
            | PastryMsg::LeafReply { .. }
            | PastryMsg::RowRequest { .. }
            | PastryMsg::RowReply { .. }
            | PastryMsg::RepairRequest { .. }
            | PastryMsg::RepairReply { .. }
            | PastryMsg::Heartbeat
            | PastryMsg::HeartbeatAck => OpId::NONE,
        }
    }
}

/// Application payload contract: a byte codec plus trace attribution.
///
/// `Wire` is a supertrait so that a `PastryMsg<P>` frame (and with it
/// the engine's bandwidth accounting) always has an exact encoded
/// length; `payload_size` is that length, kept as a named method for
/// harness code that reasons about payloads without framing.
pub trait PayloadSize: Wire {
    /// Exact encoded size in bytes.
    fn payload_size(&self) -> u64 {
        self.encoded_len()
    }

    /// The client operation this payload belongs to, for causal trace
    /// attribution (default: none). Carried up into
    /// [`Message::op_id`] by both routed and direct Pastry frames.
    fn op_id(&self) -> OpId {
        OpId::NONE
    }
}

impl PayloadSize for () {}
impl PayloadSize for u32 {}
impl PayloadSize for u64 {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_for_accounting() {
        let msgs: Vec<PastryMsg<u32>> = vec![
            PastryMsg::Route(RouteEnvelope {
                key: Id(1),
                payload: 7,
                origin: 0,
                hops: 0,
                path_us: 0,
            }),
            PastryMsg::NeighborhoodRequest,
            PastryMsg::LeafRequest,
            PastryMsg::Heartbeat,
            PastryMsg::HeartbeatAck,
            PastryMsg::AppDirect { payload: 7 },
        ];
        let kinds: std::collections::HashSet<&str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), msgs.len());
    }

    /// One constructed sample of every variant. The `match` below is
    /// intentionally exhaustive *without* a `_` arm: adding a variant to
    /// `PastryMsg` fails compilation here until a sample (and therefore a
    /// kind id and a `KINDS` label) is provided for it.
    fn all_variants() -> Vec<PastryMsg<u32>> {
        let h = NodeHandle::new(Id(1), 0);
        let samples: Vec<PastryMsg<u32>> = vec![
            PastryMsg::Route(RouteEnvelope {
                key: Id(1),
                payload: 7,
                origin: 0,
                hops: 0,
                path_us: 0,
            }),
            PastryMsg::JoinRequest {
                joiner: h,
                rows: vec![],
                rows_done: 0,
                hops: 0,
            },
            PastryMsg::JoinReply {
                z: h,
                rows: vec![],
                leaf: vec![],
                hops: 0,
            },
            PastryMsg::NeighborhoodRequest,
            PastryMsg::NeighborhoodReply { members: vec![] },
            PastryMsg::Announce { from: h },
            PastryMsg::LeafRequest,
            PastryMsg::LeafReply { members: vec![] },
            PastryMsg::RowRequest { row: 0 },
            PastryMsg::RowReply { entries: vec![] },
            PastryMsg::RepairRequest { row: 0, col: 0 },
            PastryMsg::RepairReply { entry: None },
            PastryMsg::Heartbeat,
            PastryMsg::HeartbeatAck,
            PastryMsg::AppDirect { payload: 7 },
        ];
        for m in &samples {
            match m {
                PastryMsg::Route(_)
                | PastryMsg::JoinRequest { .. }
                | PastryMsg::JoinReply { .. }
                | PastryMsg::NeighborhoodRequest
                | PastryMsg::NeighborhoodReply { .. }
                | PastryMsg::Announce { .. }
                | PastryMsg::LeafRequest
                | PastryMsg::LeafReply { .. }
                | PastryMsg::RowRequest { .. }
                | PastryMsg::RowReply { .. }
                | PastryMsg::RepairRequest { .. }
                | PastryMsg::RepairReply { .. }
                | PastryMsg::Heartbeat
                | PastryMsg::HeartbeatAck
                | PastryMsg::AppDirect { .. } => {}
            }
        }
        samples
    }

    /// Every variant must map to a distinct, in-range kind id, and the
    /// `KINDS` table must cover exactly those ids: a new message kind
    /// added without extending the table (or vice versa) fails here.
    #[test]
    fn kind_ids_are_a_permutation_of_the_kinds_table() {
        let samples = all_variants();
        assert_eq!(samples.len(), PastryMsg::<u32>::KINDS.len());
        let mut seen = vec![false; PastryMsg::<u32>::KINDS.len()];
        for m in &samples {
            let id = m.kind_id();
            assert!(id < seen.len(), "kind_id {id} out of KINDS range");
            assert!(!seen[id], "kind_id {id} assigned twice");
            seen[id] = true;
            assert_eq!(m.kind(), PastryMsg::<u32>::KINDS[id]);
        }
        assert!(
            seen.iter().all(|&s| s),
            "every KINDS entry must be reachable"
        );
    }

    #[test]
    fn only_app_traffic_carries_an_op_id() {
        for m in all_variants() {
            assert_eq!(m.op_id(), OpId::NONE, "u32 payloads carry no op id");
        }
    }

    #[test]
    fn wire_size_grows_with_contents() {
        let small: PastryMsg<u32> = PastryMsg::LeafReply { members: vec![] };
        let big: PastryMsg<u32> = PastryMsg::LeafReply {
            members: vec![NodeHandle::new(Id(0), 0); 16],
        };
        assert!(big.wire_size() > small.wire_size());
    }
}
