//! Pastry wire messages.

use crate::handle::NodeHandle;
use crate::id::Id;
use past_netsim::{Addr, Message};

/// A routed application message in flight.
#[derive(Clone, Debug)]
pub struct RouteEnvelope<P> {
    /// Destination key (a fileId's 128 most-significant bits, or a nodeId).
    pub key: Id,
    /// Application payload.
    pub payload: P,
    /// Address of the node that originated the route.
    pub origin: Addr,
    /// Overlay hops taken so far (incremented on each forward).
    pub hops: u32,
    /// Accumulated network delay along the path, microseconds.
    pub path_us: u64,
}

/// The Pastry protocol message set, generic over the application payload.
#[derive(Clone, Debug)]
pub enum PastryMsg<P> {
    /// A routed application message.
    Route(RouteEnvelope<P>),
    /// A join request being routed toward the joiner's id, accumulating
    /// routing-table rows along the path.
    JoinRequest {
        /// The joining node.
        joiner: NodeHandle,
        /// Routing-table entries collected along the path ("the i-th row
        /// of the routing table from the i-th node encountered").
        rows: Vec<NodeHandle>,
        /// Highest row index already contributed.
        rows_done: usize,
        /// Hops taken so far.
        hops: u32,
    },
    /// Z's answer to the joiner: collected rows plus Z's leaf set.
    JoinReply {
        /// The numerically closest existing node.
        z: NodeHandle,
        /// Entries collected along the join route.
        rows: Vec<NodeHandle>,
        /// Z's leaf set (plus Z itself).
        leaf: Vec<NodeHandle>,
        /// Join route length.
        hops: u32,
    },
    /// Ask a nearby node for its neighborhood set.
    NeighborhoodRequest,
    /// The neighborhood set (plus the replying node).
    NeighborhoodReply {
        /// Members of the replier's neighborhood set.
        members: Vec<NodeHandle>,
    },
    /// A newly joined node announcing itself so that "interested nodes
    /// that need to know of its arrival" update their state.
    Announce {
        /// The announcing node.
        from: NodeHandle,
    },
    /// Ask for the receiver's leaf set (leaf-set repair).
    LeafRequest,
    /// The receiver's leaf set (plus itself).
    LeafReply {
        /// Members of the replier's leaf set.
        members: Vec<NodeHandle>,
    },
    /// Ask for the receiver's routing-table row (table improvement).
    RowRequest {
        /// Row index requested.
        row: usize,
    },
    /// Entries of the requested row.
    RowReply {
        /// Populated entries of the row.
        entries: Vec<NodeHandle>,
    },
    /// Ask for a replacement routing-table entry (lazy repair).
    RepairRequest {
        /// Row of the vacated slot.
        row: usize,
        /// Column of the vacated slot.
        col: usize,
    },
    /// A replacement entry, if the replier has one.
    RepairReply {
        /// The replier's entry for that slot.
        entry: Option<NodeHandle>,
    },
    /// Leaf-set liveness probe.
    Heartbeat,
    /// Probe acknowledgment.
    HeartbeatAck,
    /// A direct (non-routed) application message.
    AppDirect {
        /// Application payload.
        payload: P,
    },
}

const HANDLE_BYTES: u64 = 24; // 16-byte id + address

impl<P: Clone + PayloadSize> Message for PastryMsg<P> {
    const KINDS: &'static [&'static str] = &[
        "route",
        "join_request",
        "join_reply",
        "neighborhood_request",
        "neighborhood_reply",
        "announce",
        "leaf_request",
        "leaf_reply",
        "row_request",
        "row_reply",
        "repair_request",
        "repair_reply",
        "heartbeat",
        "heartbeat_ack",
        "app_direct",
    ];

    fn kind_id(&self) -> usize {
        match self {
            PastryMsg::Route(_) => 0,
            PastryMsg::JoinRequest { .. } => 1,
            PastryMsg::JoinReply { .. } => 2,
            PastryMsg::NeighborhoodRequest => 3,
            PastryMsg::NeighborhoodReply { .. } => 4,
            PastryMsg::Announce { .. } => 5,
            PastryMsg::LeafRequest => 6,
            PastryMsg::LeafReply { .. } => 7,
            PastryMsg::RowRequest { .. } => 8,
            PastryMsg::RowReply { .. } => 9,
            PastryMsg::RepairRequest { .. } => 10,
            PastryMsg::RepairReply { .. } => 11,
            PastryMsg::Heartbeat => 12,
            PastryMsg::HeartbeatAck => 13,
            PastryMsg::AppDirect { .. } => 14,
        }
    }

    fn wire_size(&self) -> u64 {
        match self {
            PastryMsg::Route(env) => 48 + env.payload.payload_size(),
            PastryMsg::JoinRequest { rows, .. } => 48 + HANDLE_BYTES * rows.len() as u64,
            PastryMsg::JoinReply { rows, leaf, .. } => {
                48 + HANDLE_BYTES * (rows.len() + leaf.len()) as u64
            }
            PastryMsg::NeighborhoodReply { members } | PastryMsg::LeafReply { members } => {
                16 + HANDLE_BYTES * members.len() as u64
            }
            PastryMsg::RowReply { entries } => 16 + HANDLE_BYTES * entries.len() as u64,
            PastryMsg::AppDirect { payload } => 16 + payload.payload_size(),
            PastryMsg::Announce { .. } => 16 + HANDLE_BYTES,
            PastryMsg::RepairReply { entry } => 16 + HANDLE_BYTES * entry.is_some() as u64,
            // Row/slot coordinates ride in the header.
            PastryMsg::RowRequest { .. } | PastryMsg::RepairRequest { .. } => 24,
            // Bare request/probe frames: header only.
            PastryMsg::NeighborhoodRequest
            | PastryMsg::LeafRequest
            | PastryMsg::Heartbeat
            | PastryMsg::HeartbeatAck => 16,
        }
    }
}

/// Wire-size estimation for application payloads.
pub trait PayloadSize {
    /// Approximate encoded size in bytes.
    fn payload_size(&self) -> u64 {
        32
    }
}

impl PayloadSize for () {}
impl PayloadSize for u32 {}
impl PayloadSize for u64 {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_for_accounting() {
        let msgs: Vec<PastryMsg<u32>> = vec![
            PastryMsg::Route(RouteEnvelope {
                key: Id(1),
                payload: 7,
                origin: 0,
                hops: 0,
                path_us: 0,
            }),
            PastryMsg::NeighborhoodRequest,
            PastryMsg::LeafRequest,
            PastryMsg::Heartbeat,
            PastryMsg::HeartbeatAck,
            PastryMsg::AppDirect { payload: 7 },
        ];
        let kinds: std::collections::HashSet<&str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), msgs.len());
    }

    #[test]
    fn wire_size_grows_with_contents() {
        let small: PastryMsg<u32> = PastryMsg::LeafReply { members: vec![] };
        let big: PastryMsg<u32> = PastryMsg::LeafReply {
            members: vec![NodeHandle::new(Id(0), 0); 16],
        };
        assert!(big.wire_size() > small.wire_size());
    }
}
