//! The complete routing state of one Pastry node.

use crate::handle::NodeHandle;
use crate::id::Config;
use crate::leafset::{LeafSet, Side};
use crate::neighborhood::NeighborhoodSet;
use crate::table::RoutingTable;
use past_netsim::Addr;

/// The three routing structures of a node: routing table, leaf set and
/// neighborhood set.
#[derive(Clone, Debug)]
pub struct PastryState {
    /// Protocol parameters.
    pub cfg: Config,
    /// This node's own handle.
    pub me: NodeHandle,
    /// The prefix-routing table.
    pub table: RoutingTable,
    /// The leaf set (ring neighbors).
    pub leaf: LeafSet,
    /// The proximity-nearest set.
    pub neighborhood: NeighborhoodSet,
}

/// What changed when a node was removed from the state.
#[derive(Debug, Default)]
pub struct Removal {
    /// If the node was a leaf member, the side it occupied.
    pub leaf_side: Option<Side>,
    /// The removed leaf handle, if any.
    pub leaf_handle: Option<NodeHandle>,
    /// Routing-table slots vacated.
    pub table_slots: Vec<(usize, usize)>,
}

impl PastryState {
    /// Creates empty state for node `me`.
    pub fn new(cfg: Config, me: NodeHandle) -> PastryState {
        cfg.validate();
        PastryState {
            cfg,
            me,
            table: RoutingTable::new(me.id, &cfg),
            leaf: LeafSet::new(me.id, cfg.leaf_len),
            neighborhood: NeighborhoodSet::new(cfg.neighborhood_len),
        }
    }

    /// Learns about a node: offers it to all three structures.
    ///
    /// Returns true if the *leaf set* changed (the signal the application
    /// layer cares about for replica management).
    pub fn add_node(&mut self, h: NodeHandle, proximity_us: u64) -> bool {
        if h.addr == self.me.addr || h.id == self.me.id {
            return false;
        }
        self.table.consider(h, proximity_us);
        self.neighborhood.consider(h, proximity_us);
        let outcome = self.leaf.insert(h);
        if let Some(evicted) = outcome.evicted {
            // The displaced member is still a live ring neighbor: demote
            // it to the routing table rather than forgetting it. Its
            // proximity is unknown here, so it only fills an empty slot
            // (any measured candidate will replace it later).
            self.table.consider(evicted, u64::MAX);
        }
        outcome.changed
    }

    /// Forgets a (presumed failed) node everywhere.
    pub fn remove_addr(&mut self, addr: Addr) -> Removal {
        let mut removal = Removal {
            table_slots: self.table.remove_addr(addr),
            ..Removal::default()
        };
        if let Some(h) = self.leaf.remove_addr(addr) {
            removal.leaf_side = Some(self.leaf.side_of(&h.id));
            removal.leaf_handle = Some(h);
        }
        self.neighborhood.remove_addr(addr);
        removal
    }

    /// Iterates every node this one currently knows, in leaf-set, then
    /// routing-table, then neighborhood order, *without* deduplication —
    /// an address present in several structures appears once per
    /// occurrence (always as the same handle). Routing walks this
    /// directly to avoid materializing a candidate list per step.
    pub fn known_nodes_iter(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        self.leaf
            .members()
            .copied()
            .chain(self.table.entries())
            .chain(self.neighborhood.members().copied())
    }

    /// Every node this one currently knows (deduplicated by address,
    /// first occurrence wins).
    pub fn known_nodes(&self) -> Vec<NodeHandle> {
        // The state holds tens of entries, so a linear-scan dedup beats a
        // hash set and keeps the exact first-occurrence order.
        let mut out: Vec<NodeHandle> = Vec::with_capacity(self.state_size());
        for h in self.known_nodes_iter() {
            if !out.iter().any(|s| s.addr == h.addr) {
                out.push(h);
            }
        }
        out
    }

    /// Total populated entries across the three structures (the paper's
    /// state-size bound is `(2^b − 1)·⌈log_2^b N⌉ + 2l`).
    pub fn state_size(&self) -> usize {
        self.table.populated() + self.leaf.len() + self.neighborhood.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;

    fn st() -> PastryState {
        PastryState::new(
            Config {
                leaf_len: 4,
                neighborhood_len: 4,
                ..Config::default()
            },
            NodeHandle::new(Id(1 << 100), 0),
        )
    }

    fn h(id: u128, addr: Addr) -> NodeHandle {
        NodeHandle::new(Id(id), addr)
    }

    #[test]
    fn add_feeds_all_structures() {
        let mut s = st();
        let other = h(2 << 100, 1);
        assert!(s.add_node(other, 50));
        assert_eq!(s.leaf.len(), 1);
        assert_eq!(s.neighborhood.len(), 1);
        assert_eq!(s.table.populated(), 1);
        assert_eq!(s.state_size(), 3);
    }

    #[test]
    fn add_rejects_self() {
        let mut s = st();
        assert!(!s.add_node(h(1 << 100, 0), 0));
        assert_eq!(s.state_size(), 0);
    }

    #[test]
    fn remove_reports_leaf_side() {
        let mut s = st();
        let other = h((1 << 100) + 5, 1);
        s.add_node(other, 50);
        let r = s.remove_addr(1);
        assert_eq!(r.leaf_side, Some(Side::Larger));
        assert_eq!(r.leaf_handle.unwrap().addr, 1);
        assert!(!r.table_slots.is_empty());
        assert_eq!(s.state_size(), 0);
    }

    #[test]
    fn evicted_leaf_member_is_demoted_to_the_table() {
        // Regression: a nearer node displacing a full leaf-set half used
        // to drop the displaced member on the floor; it must be offered
        // back to the routing table.
        let mut s = st(); // leaf half = 2
        let far = h((1 << 100) + 20, 2);
        s.add_node(h((1 << 100) + 10, 1), 50);
        s.add_node(far, 50);
        // Vacate the far node's table slot so only the demotion path can
        // re-install it.
        let (row, col) = s.table.slot_for(&far.id).expect("far has a slot");
        s.table.remove_addr(2);
        assert!(s.table.get(row, col).is_none());
        // A nearer node evicts `far` from the full larger half.
        s.add_node(h((1 << 100) + 5, 3), 50);
        assert!(
            !s.leaf.contains_addr(2),
            "far was evicted from the leaf set"
        );
        assert_eq!(
            s.table.get(row, col).map(|e| e.addr),
            Some(2),
            "evicted member demoted into its routing-table slot"
        );
    }

    #[test]
    fn known_nodes_dedup() {
        let mut s = st();
        s.add_node(h(2 << 100, 1), 50);
        s.add_node(h(3 << 100, 2), 60);
        let known = s.known_nodes();
        assert_eq!(known.len(), 2);
    }
}
