//! Pastry: scalable, self-organizing location and routing for PAST.
//!
//! Implements the overlay described in §2.2 of the PAST paper (and in the
//! companion Middleware 2001 Pastry paper): prefix routing over a 128-bit
//! circular id space with
//!
//! - a routing table of `⌈log_2^b N⌉` rows × `2^b − 1` proximity-chosen
//!   entries ([`table`]),
//! - a leaf set of the `l` numerically closest nodes ([`leafset`]),
//! - a neighborhood set of the `M` proximity-closest nodes
//!   ([`neighborhood`]),
//! - the routing rule with its leaf-set, table, and rare-case branches,
//!   plus the randomized fault-tolerant variant ([`route`]),
//! - the message-level join, failure-detection and repair protocols
//!   ([`node`], [`msg`]), and
//! - an application interface that PAST plugs into ([`app`]).
//!
//! The [`sim`] module binds nodes into the deterministic network simulator
//! and offers both protocol-accurate sequential joins and a fast static
//! builder for 10⁵-node experiments.

pub mod app;
pub mod handle;
pub mod id;
pub mod leafset;
pub mod msg;
pub mod neighborhood;
pub mod node;
pub mod route;
pub mod sim;
pub mod state;
pub mod table;
pub mod wire;

pub use app::{App, AppCtx, NullApp, PastryOut, RouteInfo};
pub use handle::NodeHandle;
pub use id::{Config, Id};
pub use leafset::{LeafInsert, LeafSet, Side};
pub use msg::{PastryMsg, PayloadSize, RouteEnvelope};
pub use node::{Behavior, PastryNode, RecoveryConfig, APP_TIMER_BASE};
pub use route::{next_hop, NextHop};
pub use sim::{
    random_ids, static_build, static_build_sharded, DeliveryRecord, NodeSnapshot, OverlaySnapshot,
    PastrySim, ShardedPastrySim,
};
pub use state::PastryState;
// The codec and sans-io vocabulary node logic is written against, so
// dependents name one crate for the protocol surface.
pub use past_wire::{DecodeError, Effect, Input, Io, Proximity, StepIo, Wire, WIRE_VERSION};
