//! The application interface ("common API") exposed by a Pastry node.
//!
//! PAST registers as a Pastry application: the overlay calls
//! [`App::deliver`] when a routed message reaches the node responsible for
//! its key, [`App::forward`] at every intermediate hop (letting PAST answer
//! lookups from caches along the route), and
//! [`App::on_leafset_changed`] when ring neighbors come and go (driving
//! replica maintenance).

use crate::handle::NodeHandle;
use crate::id::Id;
use crate::msg::{PastryMsg, PayloadSize, RouteEnvelope};
use crate::state::PastryState;
use past_wire::{Addr, Io, Rng, Tracer};

/// Observations surfaced by the overlay (and the app) to the experiment
/// harness.
#[derive(Clone, Debug)]
pub enum PastryOut<O> {
    /// A routed message was delivered at this node.
    Delivered {
        /// The routed key.
        key: Id,
        /// Originating node address.
        origin: Addr,
        /// Overlay hops traversed.
        hops: u32,
        /// Total network delay along the route, microseconds.
        path_us: u64,
    },
    /// This node completed its join protocol.
    JoinComplete {
        /// Hops the join request took.
        hops: u32,
    },
    /// This node's join retries were exhausted without a reply (loss
    /// recovery mode only; crash-only joins cannot fail).
    JoinFailed {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A routed message exceeded the hop TTL (routing cycle caused by
    /// inconsistent state after overlapping failures) and was dropped.
    RouteDropped {
        /// The routed key.
        key: Id,
        /// Originating node address.
        origin: Addr,
    },
    /// An application-level observation.
    App(O),
}

/// Metadata about a delivered route.
#[derive(Clone, Copy, Debug)]
pub struct RouteInfo {
    /// Originating node address.
    pub origin: Addr,
    /// Overlay hops traversed.
    pub hops: u32,
    /// Total network delay along the route, microseconds.
    pub path_us: u64,
}

/// The effect context handed to application callbacks.
///
/// Wraps the node's sans-io effect sink ([`Io`]), translating
/// application actions into Pastry messages. Because it holds the sink
/// and not the engine, application logic is as engine-free as the node
/// logic it rides on.
pub struct AppCtx<'a, 'b, P: Clone + PayloadSize, O> {
    pub(crate) io: &'a mut (dyn Io<PastryMsg<P>, PastryOut<O>> + 'b),
}

impl<P: Clone + PayloadSize, O> AppCtx<'_, '_, P, O> {
    /// This node's address.
    pub fn me(&self) -> Addr {
        self.io.me()
    }

    /// Current simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.io.now_us()
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut Rng {
        self.io.rng()
    }

    /// The trace sink (operation lifecycle records).
    pub fn tracer(&mut self) -> &mut Tracer {
        self.io.tracer()
    }

    /// Proximity (one-way delay) to another node.
    pub fn delay_to(&self, other: Addr) -> u64 {
        self.io.delay_to(other)
    }

    /// Starts routing `payload` toward `key` from this node.
    ///
    /// The message is handed to the local routing logic on the next event,
    /// so delivery/forward hooks run uniformly even if this node is itself
    /// the key's root.
    pub fn route(&mut self, key: Id, payload: P) {
        let me = self.io.me();
        self.io.send(
            me,
            PastryMsg::Route(RouteEnvelope {
                key,
                payload,
                origin: me,
                hops: 0,
                path_us: 0,
            }),
        );
    }

    /// Sends `payload` directly to a specific node, bypassing routing.
    pub fn send_direct(&mut self, to: Addr, payload: P) {
        self.io.send(to, PastryMsg::AppDirect { payload });
    }

    /// Sends `payload` directly with additional local processing delay.
    pub fn send_direct_after(&mut self, to: Addr, payload: P, extra_us: u64) {
        self.io
            .send_after(to, PastryMsg::AppDirect { payload }, extra_us);
    }

    /// Arms an application timer (delivered via [`App::on_timer`]).
    pub fn set_app_timer(&mut self, delay_us: u64, kind: u64) {
        self.io
            .set_timer(delay_us, crate::node::APP_TIMER_BASE + kind);
    }

    /// Emits an application observation to the harness.
    pub fn emit(&mut self, out: O) {
        self.io.emit(PastryOut::App(out));
    }
}

/// A Pastry application: per-node state plus the overlay callbacks.
#[allow(unused_variables)]
pub trait App: Sized {
    /// The application payload carried in routed and direct messages.
    type Payload: Clone + PayloadSize;
    /// Application observations for the experiment harness.
    type Out;

    /// A routed message reached the node responsible for `key`.
    fn deliver(
        &mut self,
        state: &PastryState,
        key: Id,
        payload: Self::Payload,
        info: RouteInfo,
        cx: &mut AppCtx<'_, '_, Self::Payload, Self::Out>,
    );

    /// A routed message is about to be forwarded to `next`.
    ///
    /// Return `false` to consume the message (e.g. a cache hit answered
    /// locally); return `true` to let it continue. The payload may be
    /// mutated in place.
    fn forward(
        &mut self,
        state: &PastryState,
        env: &mut RouteEnvelope<Self::Payload>,
        next: NodeHandle,
        cx: &mut AppCtx<'_, '_, Self::Payload, Self::Out>,
    ) -> bool {
        true
    }

    /// A direct (non-routed) application message arrived.
    fn on_direct(
        &mut self,
        state: &PastryState,
        from: Addr,
        payload: Self::Payload,
        cx: &mut AppCtx<'_, '_, Self::Payload, Self::Out>,
    ) {
    }

    /// A direct application message could not be delivered (dead peer).
    fn on_direct_failed(
        &mut self,
        state: &PastryState,
        to: Addr,
        payload: Self::Payload,
        cx: &mut AppCtx<'_, '_, Self::Payload, Self::Out>,
    ) {
    }

    /// The node's leaf set changed (members added and/or removed).
    fn on_leafset_changed(
        &mut self,
        state: &PastryState,
        added: &[NodeHandle],
        removed: &[NodeHandle],
        cx: &mut AppCtx<'_, '_, Self::Payload, Self::Out>,
    ) {
    }

    /// An application timer armed with [`AppCtx::set_app_timer`] fired.
    fn on_timer(
        &mut self,
        state: &PastryState,
        kind: u64,
        cx: &mut AppCtx<'_, '_, Self::Payload, Self::Out>,
    ) {
    }
}

/// The trivial application: does nothing on delivery.
///
/// Used by routing-only experiments (hop counts, locality, fault
/// tolerance) where only the overlay's own `Delivered` records matter.
#[derive(Default, Clone, Debug)]
pub struct NullApp;

impl App for NullApp {
    type Payload = ();
    type Out = ();

    fn deliver(
        &mut self,
        _state: &PastryState,
        _key: Id,
        _payload: (),
        _info: RouteInfo,
        _cx: &mut AppCtx<'_, '_, (), ()>,
    ) {
    }
}
